//! DAG-compiled execution backend.
//!
//! [`DagBackend`] routes the Equation-1 pattern and `alpha * X^T y`
//! evaluations through the operator-DAG fusion compiler
//! ([`fusedml_core::fusion`]) instead of calling the hand-fused kernels
//! directly: each evaluation is expressed as a [`Dag`], the compiler
//! enumerates and prices candidate fusion plans, and the selected plan is
//! memoized in the plan cache under the DAG's structural fingerprint. For
//! the Equation-1 chain the selected plan drives the exact same fused
//! kernels as [`FusedBackend`](crate::ops::FusedBackend), so solvers are
//! numerically identical across the two backends; what changes is *who
//! decides* the kernel grouping — a cost model over the DAG rather than a
//! hard-coded pattern match.

use crate::ops::{BackendStats, DeviceMatrix};
use fusedml_blas::{level1, GpuCsr, GpuDense, SpmvStyle};
use fusedml_core::{Dag, DagExecutor, DagInputs, DagMatrix, PatternInstance, PatternSpec};
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, PoolStats};
use fusedml_matrix::{CsrMatrix, DenseMatrix};

use crate::ops::Backend;

/// Pattern and transpose-MV evaluations through the DAG fusion compiler;
/// BLAS-1 stays operator-level (the `ours-end2end` shape with a compiler
/// in the loop).
pub struct DagBackend<'g> {
    gpu: &'g Gpu,
    matrix: DeviceMatrix,
    exec: DagExecutor<'g>,
    scalar: GpuBuffer,
    stats: BackendStats,
    /// Pool snapshot at construction / last reset (see `FusedBackend`).
    pool_base: PoolStats,
}

impl<'g> DagBackend<'g> {
    /// Upload and wrap a sparse matrix, reporting device faults.
    pub fn try_new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Sparse(GpuCsr::try_upload(gpu, "X", x)?))
    }

    /// Upload and wrap a dense matrix, reporting device faults.
    pub fn try_new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Dense(GpuDense::try_upload(gpu, "X", x)?))
    }

    pub fn try_from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Result<Self, DeviceError> {
        Ok(DagBackend {
            gpu,
            matrix,
            exec: DagExecutor::try_new(gpu)?,
            scalar: gpu.try_alloc_f64("dagbackend.scalar", 1)?,
            stats: BackendStats::default(),
            pool_base: gpu.pool_stats(),
        })
    }

    pub fn new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Self {
        Self::try_new_sparse(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Self {
        Self::try_new_dense(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Self {
        Self::try_from_matrix(gpu, matrix).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn matrix(&self) -> &DeviceMatrix {
        &self.matrix
    }

    /// Hit/miss accounting for the DAG fusion-plan cache alone (the
    /// `stats().plan` field merges it with the launch-plan sides).
    pub fn dag_plan_stats(&self) -> fusedml_core::PlanCacheStats {
        self.exec.dag_plan_stats()
    }

    fn absorb_exec(&mut self) {
        self.stats.sim_ms += self.exec.total_sim_ms();
        self.stats.launches += self.exec.launch_count();
        self.stats.counters.merge(&self.exec.counters_total());
        for l in self.exec.launches() {
            self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
        }
        self.exec.reset();
    }

    fn charge(&mut self, s: fusedml_gpu_sim::LaunchStats) {
        self.stats.sim_ms += s.sim_ms();
        self.stats.launches += 1;
        self.stats.counters.merge(&s.counters);
        self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
    }
}

impl<'g> Backend for DagBackend<'g> {
    type Vector = GpuBuffer;

    fn rows(&self) -> usize {
        self.matrix.rows()
    }

    fn cols(&self) -> usize {
        self.matrix.cols()
    }

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_upload_f64(name, data)
    }

    fn try_zeros(&mut self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_alloc_f64(name, len)
    }

    fn to_host(&self, v: &GpuBuffer) -> Vec<f64> {
        v.to_vec_f64()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        assert_eq!(
            spec.with_v,
            v.is_some(),
            "spec.with_v disagrees with the v operand"
        );
        assert_eq!(
            spec.with_z,
            z.is_some(),
            "spec.with_z disagrees with the z operand"
        );
        let dag = Dag::equation1(spec);
        let mut inputs = DagInputs::new().vector("y", y);
        if let Some(v) = v {
            inputs = inputs.vector("v", v);
        }
        if let Some(z) = z {
            inputs = inputs.vector("z", z);
        }
        let matrix = match &self.matrix {
            DeviceMatrix::Sparse(x) => DagMatrix::Sparse(x),
            DeviceMatrix::Dense(x) => DagMatrix::Dense(x),
        };
        let res = self.exec.try_run(&dag, &matrix, &inputs, w);
        // Launches performed before a fault still cost simulated time.
        self.absorb_exec();
        res?;
        self.stats.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &GpuBuffer, out: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = match &self.matrix {
            DeviceMatrix::Sparse(x) => fusedml_blas::try_csrmv(
                self.gpu,
                x,
                y,
                out,
                SpmvStyle::Vector {
                    vs: fusedml_blas::vector_size_for_mean_nnz(x.mean_nnz_per_row()),
                },
            )?,
            DeviceMatrix::Dense(x) => fusedml_blas::try_gemv(self.gpu, x, y, out)?,
        };
        self.charge(s);
        Ok(())
    }

    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let dag = Dag::xt_y(alpha);
        let inputs = DagInputs::new().vector("y", u);
        let matrix = match &self.matrix {
            DeviceMatrix::Sparse(x) => DagMatrix::Sparse(x),
            DeviceMatrix::Dense(x) => DagMatrix::Dense(x),
        };
        let res = self.exec.try_run(&dag, &matrix, &inputs, out);
        self.absorb_exec();
        res?;
        self.stats.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_axpy(self.gpu, a, x, y)?;
        self.charge(s);
        Ok(())
    }

    fn try_scal(&mut self, a: f64, x: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_scal(self.gpu, a, x)?;
        self.charge(s);
        Ok(())
    }

    fn try_copy(&mut self, src: &GpuBuffer, dst: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_copy(self.gpu, src, dst)?;
        self.charge(s);
        Ok(())
    }

    fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = level1::try_ewmul(self.gpu, x, y, out)?;
        self.charge(s);
        Ok(())
    }

    fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_dot(self.gpu, x, y, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_nrm2_sq(self.gpu, x, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_map2(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        let s = crate::ops::try_device_map2(self.gpu, x, y, out, f)?;
        self.charge(s);
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats.clone();
        s.plan = self.exec.plan_stats();
        s.pool = self.gpu.pool_stats().delta_since(&self.pool_base);
        s
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.exec.reset_plan_stats();
        self.pool_base = self.gpu.pool_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr_cg::{try_lr_cg, LrCgOptions};
    use crate::ops::FusedBackend;
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn lr_cg_through_the_dag_compiler_matches_the_hand_fused_backend() {
        let x = uniform_sparse(1_500, 128, 0.03, 21);
        let y = random_vector(1_500, 22);
        let opts = LrCgOptions {
            max_iterations: 8,
            ..Default::default()
        };

        let g1 = gpu();
        let mut fused = FusedBackend::new_sparse(&g1, &x);
        let r_fused = try_lr_cg(&mut fused, &y, opts).unwrap();

        let g2 = gpu();
        let mut dag = DagBackend::new_sparse(&g2, &x);
        let r_dag = try_lr_cg(&mut dag, &y, opts).unwrap();

        // The compiler selects the hand-fused kernels, so the solve is
        // numerically identical, launch for launch.
        assert_eq!(r_dag.weights, r_fused.weights);
        assert_eq!(r_dag.iterations, r_fused.iterations);
        assert_eq!(
            dag.stats().launches,
            fused.stats().launches,
            "same kernels, same launch count"
        );
    }

    #[test]
    fn solver_iterations_share_one_memoized_plan() {
        let g = gpu();
        let x = uniform_sparse(800, 96, 0.04, 23);
        let y = random_vector(800, 24);
        let iters = 6;
        let mut dag = DagBackend::new_sparse(&g, &x);
        try_lr_cg(
            &mut dag,
            &y,
            LrCgOptions {
                max_iterations: iters,
                tolerance: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let s = dag.dag_plan_stats();
        // One plan for the init X^T y DAG, one for the iteration DAG.
        assert_eq!(s.misses, 2, "dag stats: {s:?}");
        assert_eq!(s.hits as usize, iters - 1, "dag stats: {s:?}");
    }

    #[test]
    fn dense_tmv_goes_through_the_dag_path() {
        let g = gpu();
        let xh = fusedml_matrix::gen::dense_random(300, 40, 31);
        let mut dag = DagBackend::new_dense(&g, &xh);
        let u = dag.from_host("u", &random_vector(300, 32));
        let mut out = dag.zeros("out", 40);
        dag.try_tmv(2.5, &u, &mut out).unwrap();
        let expect = {
            let mut t = fusedml_matrix::reference::dense_tmv(&xh, &u.to_vec_f64());
            fusedml_matrix::reference::scal(2.5, &mut t);
            t
        };
        assert!(
            fusedml_matrix::reference::rel_l2_error(&out.to_vec_f64(), &expect) < 1e-12,
            "dense alpha*X^T u through the DAG compiler"
        );
        assert!(dag.dag_plan_stats().misses >= 1);
    }
}
