//! The large-`n` variant of the sparse fused kernel (§3.1's extension):
//! when `w` cannot fit in shared memory (n beyond ~6K columns on a 48KB
//! device — e.g. the KDD 2010 matrix with ~30M columns), the inter-vector
//! aggregation moves from shared memory to global memory. The final
//! inter-block flush disappears, occupancy rises (no shared footprint), and
//! the atomic pressure on any single `w` element stays low because
//! ultra-sparse data rarely collides on a column.

use crate::pattern::PatternSpec;
use crate::sparse_fused::{beta_z_init, fused_row_step, row_for_lane};
use crate::tuner::SparsePlan;
use fusedml_blas::GpuCsr;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

/// Algorithm 2 with global-memory aggregation. Requires
/// `!plan.use_shared_w`. `w` must be zeroed by the caller.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel signature
pub fn try_fused_pattern_global(
    gpu: &Gpu,
    plan: &SparsePlan,
    spec: PatternSpec,
    x: &GpuCsr,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert!(
        !plan.use_shared_w,
        "plan is for the shared-memory variant; use fused_pattern_shared"
    );
    assert_eq!(spec.with_v, v.is_some(), "v presence mismatch");
    assert_eq!(spec.with_z, z.is_some(), "z presence mismatch");
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let (m, n) = (x.rows, x.cols);
    let (vs, c) = (plan.vs, plan.c);
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(plan.regs)
        .with_shared_bytes(plan.shared_bytes);
    let alpha = spec.alpha;
    let beta = spec.beta;

    gpu.try_launch("fused_sparse_global", cfg, |blk| {
        if let Some(z) = z {
            beta_z_init(blk, w, z, beta, n);
        }
        let block_id = blk.block_id();
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for ci in 0..c {
                let row_of = move |lane: usize| {
                    row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                };
                if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                    break;
                }
                fused_row_step(wc, x, y, v, vs, &row_of, |wc, idx, cols, contrib| {
                    // Inter-vector aggregation straight to global memory.
                    wc.atomic_add_f64(w, |lane| {
                        idx[lane].map(|_| (cols[lane] as usize, alpha * contrib[lane]))
                    });
                    wc.flops(idx.iter().flatten().count() as u64);
                });
            }
        });
    })
}

/// Infallible [`try_fused_pattern_global`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn fused_pattern_global(
    gpu: &Gpu,
    plan: &SparsePlan,
    spec: PatternSpec,
    x: &GpuCsr,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> LaunchStats {
    try_fused_pattern_global(gpu, plan, spec, x, v, y, z, w).unwrap_or_else(|e| panic!("{e}"))
}

/// Algorithm 1 with global-memory aggregation: `w += alpha * X^T p` for
/// matrices whose column count exceeds the shared-memory limit.
/// `w` must be zeroed by the caller.
pub fn try_fused_xt_p_global(
    gpu: &Gpu,
    plan: &SparsePlan,
    alpha: f64,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert!(!plan.use_shared_w, "plan is for the shared-memory variant");
    assert_eq!(p.len(), x.rows, "p length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let m = x.rows;
    let (vs, c) = (plan.vs, plan.c);
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(32)
        .with_shared_bytes(plan.shared_bytes);

    gpu.try_launch("fused_xt_p_global", cfg, |blk| {
        let block_id = blk.block_id();
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for ci in 0..c {
                let row_of = move |lane: usize| {
                    row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                };
                if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                    break;
                }
                let start = wc.load_u32(&x.row_off, &row_of);
                let end = wc.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                let pr = wc.load_f64_tex(p, &row_of);

                let mut iter = 0usize;
                let mut idx = [None; WARP_LANES];
                loop {
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        idx[lane] = row_of(lane).and_then(|_| {
                            let i = start[lane] as usize + (lane % vs) + iter * vs;
                            (i < end[lane] as usize).then_some(i)
                        });
                        active += idx[lane].is_some() as u64;
                    }
                    if active == 0 {
                        break;
                    }
                    let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
                    let vals = wc.load_f64(&x.values, |l| idx[l]);
                    wc.flops(3 * active);
                    wc.atomic_add_f64(w, |lane| {
                        idx[lane].map(|_| (cols[lane] as usize, alpha * vals[lane] * pr[lane]))
                    });
                    iter += 1;
                }
            }
        });
    })
}

/// Infallible [`try_fused_xt_p_global`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn fused_xt_p_global(
    gpu: &Gpu,
    plan: &SparsePlan,
    alpha: f64,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> LaunchStats {
    try_fused_xt_p_global(gpu, plan, alpha, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{plan_sparse, plan_sparse_with_vs};
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{powerlaw_sparse, random_vector};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    /// A matrix wide enough to force the global variant on a tiny device
    /// is huge; instead, force the plan with `use_shared_w = false`.
    fn global_plan(g: &Gpu, m: usize, n: usize, vs: usize) -> SparsePlan {
        let mut p = plan_sparse_with_vs(g.spec(), m, n, vs);
        if p.use_shared_w {
            p.use_shared_w = false;
            p.shared_bytes = (p.bs / p.vs) * 8;
        }
        p
    }

    #[test]
    fn global_pattern_matches_reference() {
        let g = gpu();
        let x = powerlaw_sparse(500, 300, 6.0, 0.8, 61);
        let y = random_vector(300, 1);
        let v = random_vector(500, 2);
        let z = random_vector(300, 3);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", 300);
        let plan = global_plan(&g, 500, 300, 4);
        let spec = PatternSpec::full(0.75, 2.0);
        fused_pattern_global(&g, &plan, spec, &xd, Some(&vd), &yd, Some(&zd), &wd);
        let expect = reference::pattern_csr(0.75, &x, Some(&v), &y, 2.0, Some(&z));
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn global_xt_p_matches_reference() {
        let g = gpu();
        let x = powerlaw_sparse(400, 250, 5.0, 0.8, 62);
        let p = random_vector(400, 4);
        let xd = GpuCsr::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 250);
        let plan = global_plan(&g, 400, 250, 4);
        fused_xt_p_global(&g, &plan, -1.5, &xd, &pd, &wd);
        let mut expect = reference::csr_tmv(&x, &p);
        reference::scal(-1.5, &mut expect);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn wide_matrix_auto_plans_global_variant() {
        let g = gpu();
        // 50k columns cannot fit in 48KB shared memory.
        let plan = plan_sparse(g.spec(), 1000, 50_000, 8.0);
        assert!(!plan.use_shared_w);
        let x = powerlaw_sparse(1000, 50_000, 8.0, 0.8, 63);
        let y = random_vector(50_000, 5);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 50_000);
        fused_pattern_global(&g, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-11);
    }

    #[test]
    fn global_variant_atomics_scale_with_nnz() {
        let g = gpu();
        let x = powerlaw_sparse(300, 10_000, 4.0, 0.8, 64);
        let y = random_vector(10_000, 6);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 10_000);
        let plan = global_plan(&g, 300, 10_000, 4);
        let stats = fused_pattern_global(&g, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        // One global atomic per non-zero (no shared pre-aggregation).
        assert_eq!(stats.counters.global_atomics, x.nnz() as u64);
        assert_eq!(stats.counters.shared_atomics, 0);
    }
}
