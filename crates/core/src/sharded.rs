//! Row-sharded multi-device execution of the fused pattern.
//!
//! The matrix is partitioned row-wise into contiguous shards, one per
//! alive device of a [`DeviceGroup`]; each device runs a variant of the
//! fused kernel over its shard and the partial `w` results are reduced in
//! the kernel *epilogue* (modelled as one interconnect transfer per
//! non-root device — no separate allreduce launch).
//!
//! ## Reproducible reduction (bit-identity across shard counts)
//!
//! The per-row scalar `p_r = v_r * (X[r,:] . y)` is computed on the device
//! with the vector size `VS` fixed from the *full* matrix's mean nnz/row,
//! so the register-level reduction order inside a row never depends on how
//! rows are sharded. Each shard kernel stores `p_r` to a per-shard `u`
//! buffer; the final reduction `w[c] (+)= alpha * u[r] * X[r,c]` is then
//! applied in ascending *global* row order, which is invariant under any
//! contiguous row partition. The result of a 1-device sharded run, an
//! N-device run, and an N-device run that lost a device mid-solve and
//! resharded is therefore **bit-identical**. (The per-shard scatter into a
//! partial `w` still happens on-device so the simulated cost of the
//! epilogue aggregation is charged faithfully; its numeric value is only
//! used by the performance model, never by the solver.)
//!
//! ## Stragglers
//!
//! Each multi-shard operation races its shards against a modelled-time
//! deadline (`straggler_factor` x the median shard time). A shard that
//! misses the deadline is speculatively re-executed — a fresh launch with
//! fresh fault draws — and the faster of the two attempts defines the
//! step's critical path. Numerics are unaffected: the simulator's
//! straggler fault class scales time only.

use crate::pattern::PatternSpec;
use crate::plancache::{PlanCache, PlanCacheStats};
use crate::sparse_fused::{flush_shared, row_for_lane, try_fused_xt_p_shared, zero_shared};
use crate::sparse_large::try_fused_xt_p_global;
use crate::tuner::{try_plan_sparse_with_vs, SparsePlan};
use fusedml_blas::{level1, try_csrmv, vector_size_for_mean_nnz, GpuCsr, SpmvStyle};
use fusedml_gpu_sim::{
    Counters, DeviceError, DeviceGroup, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WarpCtx,
    WARP_LANES,
};
use fusedml_matrix::CsrMatrix;
use std::cell::{Cell, RefCell};

/// Contiguous, balanced row ranges for `n` shards: the first `rows % n`
/// shards get one extra row. Ranges may be empty when `rows < n` (the
/// corresponding device simply idles).
pub fn shard_rows(rows: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n > 0, "cannot shard across zero devices");
    let base = rows / n;
    let extra = rows % n;
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// One coarsening step of the shard kernel: identical to the fused
/// pattern's row step, plus one global store of `p_r` per row (from the
/// first lane of each vector) into the shard's `u` buffer — the value the
/// epilogue reduction consumes.
#[allow(clippy::too_many_arguments)]
fn shard_row_step<S>(
    wc: &mut WarpCtx,
    x: &GpuCsr,
    y: &GpuBuffer,
    v: Option<&GpuBuffer>,
    u: &GpuBuffer,
    vs: usize,
    row_of: &dyn Fn(usize) -> Option<usize>,
    mut scatter: S,
) where
    S: FnMut(&mut WarpCtx, &[Option<usize>; WARP_LANES], &[u32; WARP_LANES], &[f64; WARP_LANES]),
{
    let start = wc.load_u32(&x.row_off, row_of);
    let end = wc.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));

    // ---- pass 1: p[r] = X[r,:] . y, reduced in registers ----
    let mut sum = [0.0f64; WARP_LANES];
    let mut iter = 0usize;
    let mut idx = [None; WARP_LANES];
    loop {
        let mut active = 0u64;
        for lane in 0..WARP_LANES {
            idx[lane] = row_of(lane).and_then(|_| {
                let i = start[lane] as usize + (lane % vs) + iter * vs;
                (i < end[lane] as usize).then_some(i)
            });
            active += idx[lane].is_some() as u64;
        }
        if active == 0 {
            break;
        }
        let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
        let vals = wc.load_f64(&x.values, |l| idx[l]);
        let ys = wc.load_f64_tex(y, |l| idx[l].map(|_| cols[l] as usize));
        for lane in 0..WARP_LANES {
            if idx[lane].is_some() {
                sum[lane] += vals[lane] * ys[lane];
            }
        }
        wc.flops(2 * active);
        iter += 1;
    }
    wc.shuffle_reduce_sum(&mut sum, vs);

    // ---- v[row] scaling ----
    let p_r = if let Some(v) = v {
        let vr = wc.load_f64_tex(v, row_of);
        let mut p = [0.0f64; WARP_LANES];
        for lane in 0..WARP_LANES {
            p[lane] = sum[lane] * vr[lane];
        }
        wc.flops(WARP_LANES as u64 / vs as u64);
        p
    } else {
        sum
    };

    // ---- the shard twist: persist p_r (one store per row) ----
    wc.store_f64(u, |lane| {
        row_of(lane)
            .filter(|_| lane % vs == 0)
            .map(|r| (r, p_r[lane]))
    });

    // ---- pass 2: scatter X[r,:]^T * p[r]; row now cache-resident ----
    let mut iter = 0usize;
    loop {
        let mut active = 0u64;
        for lane in 0..WARP_LANES {
            idx[lane] = row_of(lane).and_then(|_| {
                let i = start[lane] as usize + (lane % vs) + iter * vs;
                (i < end[lane] as usize).then_some(i)
            });
            active += idx[lane].is_some() as u64;
        }
        if active == 0 {
            break;
        }
        let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
        let vals = wc.load_f64(&x.values, |l| idx[l]);
        let mut contrib = [0.0f64; WARP_LANES];
        for lane in 0..WARP_LANES {
            if idx[lane].is_some() {
                contrib[lane] = vals[lane] * p_r[lane];
            }
        }
        wc.flops(2 * active);
        scatter(wc, &idx, &cols, &contrib);
        iter += 1;
    }
}

/// The per-shard fused pattern kernel (`fused_sparse_shard`): evaluates
/// `p = v (.) (X y)` for the shard's rows, stores `p` to `u` (the value
/// the fused epilogue reduction consumes), and scatters
/// `alpha * X^T p` into the shard's partial `w` so the epilogue
/// aggregation cost is modelled. `beta * z` is folded in at the
/// (host-canonical) combine, never here. `w_partial` must be zeroed by
/// the caller.
#[allow(clippy::too_many_arguments)]
pub fn try_fused_pattern_shard(
    gpu: &Gpu,
    plan: &SparsePlan,
    x: &GpuCsr,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    u: &GpuBuffer,
    w_partial: &GpuBuffer,
    alpha: f64,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(u.len(), x.rows, "u length mismatch");
    assert_eq!(w_partial.len(), x.cols, "w length mismatch");
    let (m, n) = (x.rows, x.cols);
    let (vs, c) = (plan.vs, plan.c);
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(plan.regs)
        .with_shared_bytes(plan.shared_bytes);

    if plan.use_shared_w {
        gpu.try_launch("fused_sparse_shard", cfg, |blk| {
            let sd = blk.shared_f64(n);
            zero_shared(blk, sd, n);
            blk.sync();

            let block_id = blk.block_id();
            blk.each_warp(|wc| {
                let tid0 = wc.tid(0);
                for ci in 0..c {
                    let row_of = move |lane: usize| {
                        row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                    };
                    if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                        break;
                    }
                    shard_row_step(wc, x, y, v, u, vs, &row_of, |wc, idx, cols, contrib| {
                        wc.shared_atomic_add(sd, |lane| {
                            idx[lane].map(|_| (cols[lane] as usize, contrib[lane]))
                        });
                    });
                }
            });

            blk.sync();
            flush_shared(blk, sd, w_partial, alpha, n);
        })
    } else {
        gpu.try_launch("fused_sparse_shard", cfg, |blk| {
            let block_id = blk.block_id();
            blk.each_warp(|wc| {
                let tid0 = wc.tid(0);
                for ci in 0..c {
                    let row_of = move |lane: usize| {
                        row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                    };
                    if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                        break;
                    }
                    shard_row_step(wc, x, y, v, u, vs, &row_of, |wc, idx, cols, contrib| {
                        wc.atomic_add_f64(w_partial, |lane| {
                            idx[lane].map(|_| (cols[lane] as usize, alpha * contrib[lane]))
                        });
                    });
                }
            });
        })
    }
}

/// One device's slice of the sharded matrix plus its working buffers.
struct Shard {
    /// Device index within the group.
    ordinal: usize,
    /// Global row range `[start, end)`.
    start: usize,
    end: usize,
    /// Host copy of the slice — the canonical combine walks it.
    host: CsrMatrix,
    /// Device copy the shard kernels run over.
    dev: GpuCsr,
    /// Per-row `p_r` values written by the shard kernel (length `rows`).
    u: GpuBuffer,
    /// Device replica of the column-dimension input vector (length n).
    y_rep: GpuBuffer,
    /// Device replica of the shard's slice of `v` / `u` inputs (length
    /// `rows`).
    v_rep: GpuBuffer,
    /// Row-dimension output / input scratch (length `rows`).
    p: GpuBuffer,
    /// Shard-local partial `w` the epilogue scatter targets (length n).
    w_partial: GpuBuffer,
}

impl Shard {
    fn rows(&self) -> usize {
        self.end - self.start
    }
}

/// Row-sharded fused-pattern engine over the alive devices of a
/// [`DeviceGroup`]. Operations take host slices and produce host results;
/// the canonical epilogue reduction makes them bit-identical for any
/// shard count (see the module docs).
pub struct ShardedExecutor<'g> {
    group: &'g DeviceGroup,
    rows: usize,
    cols: usize,
    /// `VS` from the *full* matrix's mean nnz/row, held fixed for every
    /// shard so sharding never changes the intra-row reduction order.
    base_vs: usize,
    shards: Vec<Shard>,
    /// Every launch since the last [`ShardedExecutor::reset`] (all shards;
    /// straggler re-executions included).
    pub launches: Vec<LaunchStats>,
    /// Modelled elapsed milliseconds since the last reset: per step the
    /// *maximum* across shards (they run concurrently) plus interconnect
    /// time — not the sum of launches.
    wall_ms: f64,
    straggler_factor: f64,
    speculation: bool,
    stragglers_detected: usize,
    speculative_reexecs: usize,
    plan_cache: RefCell<PlanCache>,
    plan_cache_on: Cell<bool>,
}

impl<'g> ShardedExecutor<'g> {
    /// Shard `x` row-wise across the group's alive devices and upload each
    /// slice. Fails with a typed error when no device is alive or the
    /// matrix is empty (the runtime ladder degrades instead of aborting).
    pub fn try_new(group: &'g DeviceGroup, x: &CsrMatrix) -> Result<Self, DeviceError> {
        let alive = group.alive_ordinals();
        Self::try_new_on(group, x, &alive)
    }

    /// Like [`Self::try_new`] but sharding only across the given device
    /// ordinals (already-lost ordinals are skipped) — the runtime's
    /// single-device fallback tier pins the job to one survivor this way
    /// while keeping the canonical sharded numerics.
    pub fn try_new_on(
        group: &'g DeviceGroup,
        x: &CsrMatrix,
        ordinals: &[usize],
    ) -> Result<Self, DeviceError> {
        let alive: Vec<usize> = ordinals
            .iter()
            .copied()
            .filter(|&o| group.alive(o))
            .collect();
        if alive.is_empty() {
            // Constructing on a fully-dead group: surface the loss of the
            // last device so the ladder sees a device-loss, not a crash.
            return Err(DeviceError::DeviceLost {
                device: group.len().saturating_sub(1),
                fault_index: 0,
            });
        }
        let base_vs = vector_size_for_mean_nnz(x.mean_nnz_per_row());
        let ranges = shard_rows(x.rows(), alive.len());
        let mut shards = Vec::new();
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start == end {
                continue; // fewer rows than devices: this device idles
            }
            let ordinal = alive[i];
            let gpu = group.device(ordinal);
            let host = x.slice_rows(start, end);
            let rows = end - start;
            let n = x.cols();
            let dev = GpuCsr::try_upload(gpu, &format!("shard{ordinal}.X"), &host)?;
            shards.push(Shard {
                ordinal,
                start,
                end,
                host,
                dev,
                u: gpu.try_alloc_f64(&format!("shard{ordinal}.u"), rows)?,
                y_rep: gpu.try_alloc_f64(&format!("shard{ordinal}.y"), n)?,
                v_rep: gpu.try_alloc_f64(&format!("shard{ordinal}.v"), rows)?,
                p: gpu.try_alloc_f64(&format!("shard{ordinal}.p"), rows)?,
                w_partial: gpu.try_alloc_f64(&format!("shard{ordinal}.w"), n)?,
            });
        }
        Ok(ShardedExecutor {
            group,
            rows: x.rows(),
            cols: x.cols(),
            base_vs,
            shards,
            launches: Vec::new(),
            wall_ms: 0.0,
            straggler_factor: 3.0,
            speculation: true,
            stragglers_detected: 0,
            speculative_reexecs: 0,
            plan_cache: RefCell::new(PlanCache::new()),
            plan_cache_on: Cell::new(crate::plancache::plan_cache_enabled()),
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The fixed vector size every shard plans with.
    pub fn base_vs(&self) -> usize {
        self.base_vs
    }

    /// Number of non-empty shards (devices doing work).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Global row range of each non-empty shard, ascending.
    pub fn shard_ranges(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Override the straggler deadline (multiple of the median shard time;
    /// must be > 1). `speculation: false` disables re-execution, keeping
    /// detection counters only.
    pub fn with_straggler_policy(mut self, factor: f64, speculation: bool) -> Self {
        assert!(factor > 1.0, "straggler deadline factor must exceed 1");
        self.straggler_factor = factor;
        self.speculation = speculation;
        self
    }

    /// Shards whose first attempt missed the modelled-time deadline.
    pub fn stragglers_detected(&self) -> usize {
        self.stragglers_detected
    }

    /// Speculative re-executions launched for straggling shards.
    pub fn speculative_reexecs(&self) -> usize {
        self.speculative_reexecs
    }

    /// Modelled elapsed milliseconds since the last reset (max across
    /// concurrent shards per step, plus interconnect transfers).
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Hardware counters merged across every launch since the last reset.
    pub fn counters_total(&self) -> Counters {
        let mut total = Counters::new();
        for l in &self.launches {
            total.merge(&l.counters);
        }
        total
    }

    pub fn reset(&mut self) {
        self.launches.clear();
        self.wall_ms = 0.0;
    }

    /// Enable or disable plan memoization.
    pub fn set_plan_cache(&self, enabled: bool) {
        self.plan_cache_on.set(enabled);
    }

    /// Cumulative plan-cache traffic, independent of [`Self::reset`].
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan_cache.borrow().stats()
    }

    /// Zero the plan-cache counters (cached plans stay valid).
    pub fn reset_plan_stats(&self) {
        self.plan_cache.borrow_mut().reset_stats();
    }

    /// The shard's launch plan: tuned for the shard's row count but with
    /// the group-wide `VS`, memoized under a key that includes the shard
    /// count so resharded groups never reuse stale plans.
    fn shard_plan(&self, shard: &Shard) -> Result<SparsePlan, DeviceError> {
        let spec = self.group.device(shard.ordinal).spec();
        let (m, n, vs) = (shard.rows(), self.cols, self.base_vs);
        let shards = self.shards.len();
        let (plan, _cached) = self
            .plan_cache
            .borrow_mut()
            .sparse_plan_sharded(self.plan_cache_on.get(), spec, m, n, vs, shards, || {
                try_plan_sparse_with_vs(spec, m, n, vs)
            })
            .map_err(DeviceError::from)?;
        Ok(plan)
    }

    /// Run `f` once per shard, apply the straggler policy, and account the
    /// step: wall time is the max effective shard time, every launch's
    /// stats (including failed-speculation survivors) are kept for the
    /// counters. The first error aborts the step — launches performed
    /// before the fault still cost simulated time.
    fn run_shards(
        &mut self,
        f: impl Fn(&Shard, &Gpu, &SparsePlan) -> Result<Vec<LaunchStats>, DeviceError>,
    ) -> Result<(), DeviceError> {
        let mut times = Vec::with_capacity(self.shards.len());
        let mut step_launches: Vec<LaunchStats> = Vec::new();
        for i in 0..self.shards.len() {
            let plan = self.shard_plan(&self.shards[i])?;
            let shard = &self.shards[i];
            let gpu = self.group.device(shard.ordinal);
            match f(shard, gpu, &plan) {
                Ok(stats) => {
                    times.push(stats.iter().map(|s| s.sim_ms()).sum::<f64>());
                    step_launches.extend(stats);
                }
                Err(e) => {
                    self.launches.extend(step_launches);
                    return Err(e);
                }
            }
        }

        // Straggler detection against the modelled-time deadline: median
        // of the (deterministic) shard times, scaled by the policy factor.
        if times.len() >= 2 {
            let mut sorted = times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = sorted[sorted.len() / 2];
            let deadline = self.straggler_factor * median;
            for i in 0..self.shards.len() {
                if times[i] <= deadline {
                    continue;
                }
                self.stragglers_detected += 1;
                let shard = &self.shards[i];
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "shard",
                        "shard.straggler",
                        "host",
                        &[
                            ("device", shard.ordinal.into()),
                            ("shard_ms", times[i].into()),
                            ("deadline_ms", deadline.into()),
                            ("speculate", self.speculation.into()),
                        ],
                    );
                }
                if !self.speculation {
                    continue;
                }
                // Speculative re-execution: fresh launch, fresh fault
                // draws; numerics are deterministic so the faster attempt
                // is interchangeable with the slow one.
                let plan = self.shard_plan(shard)?;
                let shard = &self.shards[i];
                let gpu = self.group.device(shard.ordinal);
                match f(shard, gpu, &plan) {
                    Ok(stats) => {
                        self.speculative_reexecs += 1;
                        let retry_ms = stats.iter().map(|s| s.sim_ms()).sum::<f64>();
                        times[i] = times[i].min(retry_ms);
                        step_launches.extend(stats);
                    }
                    Err(e) => {
                        self.launches.extend(step_launches);
                        return Err(e);
                    }
                }
            }
        }

        self.wall_ms += times.iter().fold(0.0f64, |a, &b| a.max(b));
        self.launches.extend(step_launches);
        Ok(())
    }

    /// Charge the broadcast of a column-dimension vector (n doubles) to
    /// every non-root shard device.
    fn charge_broadcast_cols(&mut self) {
        for _ in 1..self.shards.len() {
            self.wall_ms += self.group.charge_transfer((self.cols * 8) as u64);
        }
    }

    /// Charge the fused-epilogue reduction: each non-root device ships its
    /// partial `w` (n doubles) over the fabric; no separate kernel launch.
    fn charge_epilogue_reduction(&mut self) {
        for _ in 1..self.shards.len() {
            self.wall_ms += self.group.charge_transfer((self.cols * 8) as u64);
        }
    }

    /// Charge moving each non-root shard's row-dimension slice.
    fn charge_row_slices(&mut self) {
        for shard in self.shards.iter().skip(1) {
            self.wall_ms += self.group.charge_transfer((shard.rows() * 8) as u64);
        }
    }

    /// `w = alpha * X^T (v (.) (X y)) + beta * z` over all shards.
    /// Host-slice API; see the module docs for the bit-identity contract.
    pub fn try_pattern_host(
        &mut self,
        spec: PatternSpec,
        v: Option<&[f64]>,
        y: &[f64],
        z: Option<&[f64]>,
        w: &mut [f64],
    ) -> Result<(), DeviceError> {
        assert_eq!(spec.with_v, v.is_some(), "v presence mismatch");
        assert_eq!(spec.with_z, z.is_some(), "z presence mismatch");
        assert_eq!(y.len(), self.cols, "y length mismatch");
        assert_eq!(w.len(), self.cols, "w length mismatch");
        if let Some(v) = v {
            assert_eq!(v.len(), self.rows, "v length mismatch");
        }
        if let Some(z) = z {
            assert_eq!(z.len(), self.cols, "z length mismatch");
        }

        // Broadcast the inputs to every shard device.
        for shard in &self.shards {
            shard.y_rep.copy_from_f64(y);
            if let Some(v) = v {
                shard.v_rep.copy_from_f64(&v[shard.start..shard.end]);
            }
        }
        self.charge_broadcast_cols();
        if v.is_some() {
            self.charge_row_slices();
        }

        let with_v = v.is_some();
        let alpha = spec.alpha;
        self.run_shards(|shard, gpu, plan| {
            let fill = level1::try_fill(gpu, &shard.w_partial, 0.0)?;
            let stats = try_fused_pattern_shard(
                gpu,
                plan,
                &shard.dev,
                with_v.then_some(&shard.v_rep),
                &shard.y_rep,
                &shard.u,
                &shard.w_partial,
                alpha,
            )?;
            Ok(vec![fill, stats])
        })?;
        self.charge_epilogue_reduction();

        // Canonical epilogue reduction: ascending global row order, so the
        // sum order — and therefore every bit of w — is independent of the
        // shard layout.
        for (c, wc) in w.iter_mut().enumerate() {
            *wc = match z {
                Some(z) => spec.beta * z[c],
                None => 0.0,
            };
        }
        for shard in &self.shards {
            let u = shard.u.to_vec_f64();
            for r in 0..shard.rows() {
                let ur = u[r];
                for (c, xv) in shard.host.row_entries(r) {
                    w[c as usize] += spec.alpha * ur * xv;
                }
            }
        }
        Ok(())
    }

    /// `out = X * y` (length m), shard outputs concatenated row-wise —
    /// row-local work, so trivially shard-invariant.
    pub fn try_mv_host(&mut self, y: &[f64], out: &mut [f64]) -> Result<(), DeviceError> {
        assert_eq!(y.len(), self.cols, "y length mismatch");
        assert_eq!(out.len(), self.rows, "out length mismatch");
        for shard in &self.shards {
            shard.y_rep.copy_from_f64(y);
        }
        self.charge_broadcast_cols();

        let vs = self.base_vs;
        self.run_shards(|shard, gpu, _plan| {
            Ok(vec![try_csrmv(
                gpu,
                &shard.dev,
                &shard.y_rep,
                &shard.p,
                // VS fixed from the full matrix: a shard's own mean
                // nnz/row may differ, and letting it drift would change
                // the reduction order across shard counts.
                SpmvStyle::Vector { vs },
            )?])
        })?;
        self.charge_row_slices();

        for shard in &self.shards {
            out[shard.start..shard.end].copy_from_slice(&shard.p.to_vec_f64());
        }
        Ok(())
    }

    /// `out = alpha * X^T * u` (length n) with the canonical host-side
    /// epilogue reduction (ascending global rows).
    pub fn try_tmv_host(
        &mut self,
        alpha: f64,
        u: &[f64],
        out: &mut [f64],
    ) -> Result<(), DeviceError> {
        assert_eq!(u.len(), self.rows, "u length mismatch");
        assert_eq!(out.len(), self.cols, "out length mismatch");
        for shard in &self.shards {
            shard.v_rep.copy_from_f64(&u[shard.start..shard.end]);
        }
        self.charge_row_slices();

        self.run_shards(|shard, gpu, plan| {
            let fill = level1::try_fill(gpu, &shard.w_partial, 0.0)?;
            let stats = if plan.use_shared_w {
                try_fused_xt_p_shared(gpu, plan, alpha, &shard.dev, &shard.v_rep, &shard.w_partial)?
            } else {
                try_fused_xt_p_global(gpu, plan, alpha, &shard.dev, &shard.v_rep, &shard.w_partial)?
            };
            Ok(vec![fill, stats])
        })?;
        self.charge_epilogue_reduction();

        out.fill(0.0);
        for shard in &self.shards {
            for r in 0..shard.rows() {
                let ur = u[shard.start + r];
                for (c, xv) in shard.host.row_entries(r) {
                    out[c as usize] += alpha * ur * xv;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::{DeviceSpec, FaultProfile, InterconnectSpec};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn group(n: usize, profile: FaultProfile) -> DeviceGroup {
        DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            n,
            InterconnectSpec::pcie_gen3_x16(),
            &profile,
        )
    }

    #[test]
    fn shard_rows_balances_and_handles_edges() {
        assert_eq!(shard_rows(10, 2), vec![(0, 5), (5, 10)]);
        // Non-dividing: first shards get the extra rows.
        assert_eq!(shard_rows(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        // Fewer rows than shards: trailing shards are empty.
        assert_eq!(shard_rows(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(shard_rows(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
        // Every partition is contiguous and covers all rows.
        for (rows, n) in [(1, 1), (1, 5), (97, 4), (160, 3)] {
            let r = shard_rows(rows, n);
            assert_eq!(r.len(), n);
            assert_eq!(r[0].0, 0);
            assert_eq!(r[n - 1].1, rows);
            for pair in r.windows(2) {
                assert_eq!(pair[0].1, pair[1].0);
            }
        }
    }

    #[test]
    fn pattern_is_bit_identical_across_shard_counts() {
        let x = uniform_sparse(160, 24, 0.15, 401);
        let y = random_vector(24, 402);
        let v = random_vector(160, 403);
        let z = random_vector(24, 404);
        let spec = PatternSpec::full(1.25, -0.5);
        let run = |n: usize| {
            let g = group(n, FaultProfile::disabled());
            let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
            let mut w = vec![0.0; 24];
            ex.try_pattern_host(spec, Some(&v), &y, Some(&z), &mut w)
                .unwrap();
            assert!(ex.wall_ms() > 0.0);
            w
        };
        let w1 = run(1);
        let w2 = run(2);
        let w3 = run(3);
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&w1), bits(&w2), "1 vs 2 devices");
        assert_eq!(bits(&w1), bits(&w3), "1 vs 3 devices");
        let expect = reference::pattern_csr(1.25, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(reference::rel_l2_error(&w1, &expect) < 1e-12);
    }

    #[test]
    fn mv_and_tmv_are_bit_identical_across_shard_counts() {
        let x = uniform_sparse(90, 40, 0.12, 411);
        let y = random_vector(40, 412);
        let u = random_vector(90, 413);
        let run = |n: usize| {
            let g = group(n, FaultProfile::disabled());
            let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
            let mut p = vec![0.0; 90];
            let mut w = vec![0.0; 40];
            ex.try_mv_host(&y, &mut p).unwrap();
            ex.try_tmv_host(2.0, &u, &mut w).unwrap();
            (p, w)
        };
        let (p1, w1) = run(1);
        let (p3, w3) = run(3);
        assert_eq!(
            p1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            p3.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            w1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            w3.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert!(reference::rel_l2_error(&p1, &reference::csr_mv(&x, &y)) < 1e-12);
        let mut expect = reference::csr_tmv(&x, &u);
        reference::scal(2.0, &mut expect);
        assert!(reference::rel_l2_error(&w1, &expect) < 1e-12);
    }

    #[test]
    fn shard_boundary_edge_cases() {
        // Satellite coverage: rows < devices (empty shards skipped),
        // single-row matrices, and non-dividing row counts all flow
        // through the sharded pattern kernel bit-identically.
        for (rows, devices) in [(3usize, 4usize), (1, 3), (7, 3), (5, 5)] {
            let x = uniform_sparse(rows, 12, 0.5, 420 + rows as u64);
            let y = random_vector(12, 421);
            let g = group(devices, FaultProfile::disabled());
            let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
            assert_eq!(ex.shard_count(), rows.min(devices));
            let mut w = vec![0.0; 12];
            ex.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap();

            let g1 = group(1, FaultProfile::disabled());
            let mut ex1 = ShardedExecutor::try_new(&g1, &x).unwrap();
            let mut w1 = vec![0.0; 12];
            ex1.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w1)
                .unwrap();
            assert_eq!(
                w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                w1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{rows} rows on {devices} devices"
            );
            let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
            assert!(reference::rel_l2_error(&w, &expect) < 1e-12);
        }
    }

    #[test]
    fn empty_matrix_is_a_typed_error() {
        let x = CsrMatrix::empty(0, 8);
        let g = group(2, FaultProfile::disabled());
        let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
        assert_eq!(ex.shard_count(), 0);
        // No shards: the pattern is a pure beta*z epilogue.
        let z = vec![3.0; 8];
        let mut w = vec![0.0; 8];
        ex.try_pattern_host(
            PatternSpec::xtxy_plus_bz(0.5),
            None,
            &[1.0; 8],
            Some(&z),
            &mut w,
        )
        .unwrap();
        assert_eq!(w, vec![1.5; 8]);
    }

    #[test]
    fn device_loss_surfaces_as_device_lost() {
        let x = uniform_sparse(64, 16, 0.2, 431);
        let y = random_vector(16, 432);
        let g = group(2, FaultProfile::seeded(0xDEAD).with_device_loss_rate(1.0));
        let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
        let mut w = vec![0.0; 16];
        let err = ex
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap_err();
        assert_eq!(err.kind(), "device-lost");
        assert!(g.alive_count() < 2);
    }

    #[test]
    fn constructing_on_a_dead_group_fails_typed() {
        let g = group(2, FaultProfile::disabled());
        g.mark_lost(0);
        g.mark_lost(1);
        let x = uniform_sparse(10, 8, 0.4, 441);
        let err = match ShardedExecutor::try_new(&g, &x) {
            Err(e) => e,
            Ok(_) => panic!("construction on a dead group must fail"),
        };
        assert_eq!(err.kind(), "device-lost");
    }

    #[test]
    fn resharding_after_loss_is_bit_identical() {
        let x = uniform_sparse(120, 20, 0.15, 451);
        let y = random_vector(20, 452);
        let g = group(3, FaultProfile::disabled());

        let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
        assert_eq!(ex.shard_count(), 3);
        let mut w3 = vec![0.0; 20];
        ex.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w3)
            .unwrap();

        // Lose a device, reshard across the survivors.
        g.mark_lost(1);
        let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
        assert_eq!(ex.shard_count(), 2);
        assert_eq!(ex.shard_ranges(), vec![(0, 60), (60, 120)]);
        let mut w2 = vec![0.0; 20];
        ex.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w2)
            .unwrap();
        assert_eq!(
            w3.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            w2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stragglers_are_detected_and_speculatively_reexecuted() {
        let x = uniform_sparse(150, 24, 0.15, 461);
        let y = random_vector(24, 462);
        let clean = {
            let g = group(3, FaultProfile::disabled());
            let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
            let mut w = vec![0.0; 24];
            for _ in 0..6 {
                ex.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                    .unwrap();
            }
            assert_eq!(ex.stragglers_detected(), 0);
            w
        };

        let g = group(3, FaultProfile::seeded(0x57A6).with_straggler(0.35, 10.0));
        let mut ex = ShardedExecutor::try_new(&g, &x).unwrap();
        let mut w = vec![0.0; 24];
        for _ in 0..6 {
            ex.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap();
        }
        assert!(ex.stragglers_detected() > 0, "seeded slowdown not detected");
        assert!(ex.speculative_reexecs() > 0);
        // Slow shards never change the numbers.
        assert_eq!(
            w.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            clean.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // Re-executions add launches beyond the clean 2-per-shard-per-step.
        assert!(ex.launch_count() > 6 * 2 * 3);
    }

    #[test]
    fn shard_plans_hold_vs_fixed_and_key_on_shard_count() {
        let x = uniform_sparse(200, 32, 0.1, 471);
        let g = group(4, FaultProfile::disabled());
        let ex = ShardedExecutor::try_new(&g, &x).unwrap();
        ex.set_plan_cache(true);
        let vs = ex.base_vs();
        for shard in &ex.shards {
            let plan = ex.shard_plan(shard).unwrap();
            assert_eq!(plan.vs, vs, "shard planning must not re-derive VS");
        }
        // Second pass hits the cache.
        for shard in &ex.shards {
            ex.shard_plan(shard).unwrap();
        }
        let stats = ex.plan_stats();
        assert!(stats.hits >= ex.shard_count() as u64);
    }
}
