//! Fused pattern kernel over ELLPACK storage — an extension beyond the
//! paper (which fuses CSR and dense): the same two-scan temporal-locality
//! structure, but with one *thread* per row instead of one vector, because
//! ELL's column-major slots already coalesce per-thread row marching.
//!
//! Trade-off measured by the `repro ell` extension experiment: on uniform
//! rows ELL removes the intra-vector reduction entirely (no shuffles, no
//! lane masking); on power-law rows padding makes it read far more slots
//! than CSR reads non-zeros.

use crate::pattern::PatternSpec;
use fusedml_blas::ellmv::GpuEll;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};
use fusedml_matrix::ell::ELL_PAD;

/// Launch plan for the ELL fused kernel (one thread per row; `C` rows per
/// thread via grid-stride).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EllPlan {
    pub bs: usize,
    pub grid: usize,
    pub use_shared_w: bool,
    pub shared_bytes: usize,
}

/// Plan for an `m x n` ELL matrix: one resident wave, shared-memory
/// aggregation when `w` fits (same limit as the CSR kernel).
pub fn plan_ell(gpu: &Gpu, m: usize, n: usize) -> EllPlan {
    let spec = gpu.spec();
    let use_shared_w = n * 8 <= spec.shared_mem_per_block / 2;
    let shared_bytes = if use_shared_w { n * 8 } else { 0 };
    // Like the CSR tuner: once occupancy passes the latency-hiding knee,
    // prefer the largest block size — fewer resident blocks means fewer
    // per-block flushes of the shared accumulator.
    let knee =
        (spec.max_warps_per_sm() as f64 * fusedml_gpu_sim::LATENCY_HIDING_KNEE).ceil() as usize;
    let mut best: Option<(usize, fusedml_gpu_sim::Occupancy)> = None;
    for bs in [128usize, 256, 512, 768, 1024] {
        if bs > spec.max_threads_per_block {
            continue;
        }
        if let Some(occ) = fusedml_gpu_sim::occupancy(spec, bs, 32, shared_bytes) {
            let eff = occ.warps_per_sm.min(knee);
            let better = match &best {
                None => true,
                Some((_, b)) => eff >= b.warps_per_sm.min(knee),
            };
            if better {
                best = Some((bs, occ));
            }
        }
    }
    let (bs, occ) = best.unwrap_or_else(|| panic!("some block size fits"));
    let grid = (occ.blocks_per_sm * spec.num_sms)
        .max(1)
        .min(m.div_ceil(bs).max(1));
    EllPlan {
        bs,
        grid,
        use_shared_w,
        shared_bytes,
    }
}

/// `w = alpha * X^T (v ⊙ (X y)) + beta z` over ELL, fused.
/// `w` must be zeroed by the caller.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel signature
pub fn try_fused_pattern_ell(
    gpu: &Gpu,
    plan: &EllPlan,
    spec: PatternSpec,
    x: &GpuEll,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(spec.with_v, v.is_some(), "v presence mismatch");
    assert_eq!(spec.with_z, z.is_some(), "z presence mismatch");
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let (m, n, width) = (x.rows, x.cols, x.width);
    let (alpha, beta) = (spec.alpha, spec.beta);
    let use_shared = plan.use_shared_w;
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(32)
        .with_shared_bytes(plan.shared_bytes)
        .with_ilp(2.0);

    gpu.try_launch("fused_ell", cfg, |blk| {
        let bs = blk.block_dim();
        let grid_threads = blk.grid_dim() * bs;
        let sd = use_shared.then(|| blk.shared_f64(n));

        if let Some(sd) = sd {
            blk.each_warp(|wc| {
                let mut base = wc.tid(0);
                while base < n {
                    wc.shared_store(sd, |l| (base + l < n).then_some((base + l, 0.0)));
                    base += bs;
                }
            });
        }
        if let Some(z) = z {
            crate::sparse_fused::beta_z_init(blk, w, z, beta, n);
        }
        blk.sync();

        blk.each_warp(|wc| {
            let mut row0 = wc.gtid(0);
            while row0 < m {
                // Pass 1: p[r] = X[r,:] . y per lane, slot loop.
                let mut sum = [0.0f64; WARP_LANES];
                for slot in 0..width {
                    let cols =
                        wc.load_u32(&x.col_idx, |l| (row0 + l < m).then(|| slot * m + row0 + l));
                    let vals =
                        wc.load_f64(&x.values, |l| (row0 + l < m).then(|| slot * m + row0 + l));
                    let ys = wc.load_f64_tex(y, |l| {
                        (row0 + l < m && cols[l] != ELL_PAD).then(|| cols[l] as usize)
                    });
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        if row0 + lane < m && cols[lane] != ELL_PAD {
                            sum[lane] += vals[lane] * ys[lane];
                            active += 1;
                        }
                    }
                    wc.flops(2 * active);
                }
                // v scaling.
                if let Some(v) = v {
                    let vr = wc.load_f64_tex(v, |l| (row0 + l < m).then_some(row0 + l));
                    for lane in 0..WARP_LANES {
                        sum[lane] *= vr[lane];
                    }
                    wc.flops(WARP_LANES as u64);
                }
                // Pass 2: scatter X[r,:]^T * p[r]; slots now cache-hot.
                for slot in 0..width {
                    let cols =
                        wc.load_u32(&x.col_idx, |l| (row0 + l < m).then(|| slot * m + row0 + l));
                    let vals =
                        wc.load_f64(&x.values, |l| (row0 + l < m).then(|| slot * m + row0 + l));
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        if row0 + lane < m && cols[lane] != ELL_PAD {
                            active += 1;
                        }
                    }
                    wc.flops(2 * active);
                    if let Some(sd) = sd {
                        wc.shared_atomic_add(sd, |l| {
                            (row0 + l < m && cols[l] != ELL_PAD)
                                .then(|| (cols[l] as usize, vals[l] * sum[l]))
                        });
                    } else {
                        wc.atomic_add_f64(w, |l| {
                            (row0 + l < m && cols[l] != ELL_PAD)
                                .then(|| (cols[l] as usize, alpha * vals[l] * sum[l]))
                        });
                    }
                }
                row0 += grid_threads;
            }
        });

        if let Some(sd) = sd {
            blk.sync();
            crate::sparse_fused::flush_shared(blk, sd, w, alpha, n);
        }
    })
}

/// Infallible [`try_fused_pattern_ell`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn fused_pattern_ell(
    gpu: &Gpu,
    plan: &EllPlan,
    spec: PatternSpec,
    x: &GpuEll,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> LaunchStats {
    try_fused_pattern_ell(gpu, plan, spec, x, v, y, z, w).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_blas::level1::fill;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{powerlaw_sparse, random_vector, uniform_sparse};
    use fusedml_matrix::{reference, EllMatrix};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    fn run(
        g: &Gpu,
        x: &fusedml_matrix::CsrMatrix,
        spec: PatternSpec,
        seed: u64,
    ) -> (Vec<f64>, LaunchStats) {
        let ell = EllMatrix::from_csr(x);
        let (m, n) = (x.rows(), x.cols());
        let y = random_vector(n, seed);
        let v = random_vector(m, seed + 1);
        let z = random_vector(n, seed + 2);
        let xd = GpuEll::upload(g, "x", &ell);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", n);
        fill(g, &wd, 0.0);
        let plan = plan_ell(g, m, n);
        let stats = fused_pattern_ell(
            g,
            &plan,
            spec,
            &xd,
            spec.with_v.then_some(&vd),
            &yd,
            spec.with_z.then_some(&zd),
            &wd,
        );
        let expect = reference::pattern_csr(
            spec.alpha,
            x,
            spec.with_v.then_some(v.as_slice()),
            &y,
            spec.beta,
            spec.with_z.then_some(z.as_slice()),
        );
        assert!(
            reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-10,
            "spec {spec:?}"
        );
        (wd.to_vec_f64(), stats)
    }

    #[test]
    fn matches_reference_all_specs() {
        let g = gpu();
        let x = uniform_sparse(500, 200, 0.05, 51);
        for spec in [
            PatternSpec::xtxy(),
            PatternSpec::xtvxy(),
            PatternSpec::xtxy_plus_bz(-0.5),
            PatternSpec::full(2.0, 0.25),
        ] {
            run(&g, &x, spec, 52);
        }
    }

    #[test]
    fn global_variant_on_wide_matrix() {
        let g = gpu();
        let x = powerlaw_sparse(400, 40_000, 5.0, 0.8, 53);
        let plan = plan_ell(&g, 400, 40_000);
        assert!(!plan.use_shared_w);
        run(&g, &x, PatternSpec::xtxy(), 54);
    }

    #[test]
    fn no_shuffles_needed() {
        // One thread per row: the register-level reduction disappears.
        let g = gpu();
        let x = uniform_sparse(1000, 256, 0.04, 55);
        let (_, stats) = run(&g, &x, PatternSpec::xtxy(), 56);
        assert_eq!(stats.counters.shuffle_instructions, 0);
    }
}
