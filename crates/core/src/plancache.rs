//! Memoization of the §3.3 launch-parameter model.
//!
//! An iterative solver evaluates the generic pattern hundreds of times on
//! the *same* matrix, and every evaluation used to re-run the full BS×C
//! tuner sweep with occupancy evaluation. The SystemML fusion-plan line of
//! work decides a fusion plan once per program and reuses it across
//! iterations; this cache gives the reproduction the same property: a
//! 500-iteration CG solve plans once, not 500 times.
//!
//! ## Cache key derivation
//!
//! A plan is a pure function of the device and a small set of matrix
//! statistics, so the key captures exactly those inputs:
//!
//! * **Device fingerprint** ([`DeviceSpec::fingerprint`]): any change to a
//!   resource limit or throughput figure changes the key, so a plan tuned
//!   for one device is never served for another.
//! * **Shape** (`rows`, `cols`): `rows` drives the coarsening factor C and
//!   grid, `cols` drives the shared-vs-global aggregation choice.
//! * **Bucketed mean-nnz/row** (sparse only): the tuner consumes the mean
//!   nnz/row `mu` *only* through the Equation 4 vector size
//!   `VS = vector_size_for_mean_nnz(mu)`, so the key stores the VS bucket.
//!   Two matrices whose `mu` falls in the same bucket genuinely share a
//!   plan — a cached hit is bit-identical to a fresh tuner run — while a
//!   bucket-boundary crossing (say `mu` 32 → 33) misses and replans.
//!
//! Planning *errors* are never cached: [`PlanError::NoFeasibleConfig`](crate::tuner::PlanError) and
//! empty-matrix rejections re-run the tuner on every call, so a transient
//! mis-sized request cannot poison the cache.

use crate::fusion::FusionPlan;
use crate::tuner::{DensePlan, SparsePlan};
use fusedml_gpu_sim::DeviceSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Process-wide default for plan caching, read once per
/// [`crate::FusedExecutor`] construction. The bench CLI flips this to A/B
/// host overhead with caching on vs. off (`fusedml-bench run
/// --no-plan-cache`); modeled counters are bit-identical either way.
static PLAN_CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Set the process-wide default for plan caching in newly constructed
/// executors (existing executors are unaffected).
pub fn set_plan_cache_enabled(enabled: bool) {
    PLAN_CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The process-wide plan-caching default.
pub fn plan_cache_enabled() -> bool {
    PLAN_CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Why a plan cache was invalidated (recorded in [`PlanCacheStats`] and the
/// trace stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invalidation {
    /// The executor was pointed at a different device.
    DeviceChanged,
    /// The caller knows its matrix population changed enough to re-tune
    /// (the shape/VS key already isolates most changes; this is for
    /// explicit "start over" requests).
    MatrixChanged,
    /// Unconditional flush.
    All,
}

impl Invalidation {
    fn as_str(self) -> &'static str {
        match self {
            Invalidation::DeviceChanged => "device_changed",
            Invalidation::MatrixChanged => "matrix_changed",
            Invalidation::All => "all",
        }
    }
}

/// Hit/miss accounting for one cache (cumulative until
/// [`PlanCache::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the cache without running the tuner.
    pub hits: u64,
    /// Tuner runs whose result was inserted into the cache.
    pub misses: u64,
    /// Tuner runs performed while caching was disabled (never inserted).
    pub uncached: u64,
    /// Planning errors (never cached; the tuner re-runs on every call).
    pub errors: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Total times the tuner actually ran (the work the cache exists to
    /// avoid).
    pub fn plans_computed(&self) -> u64 {
        self.misses + self.uncached + self.errors
    }

    fn merge(&mut self, other: &PlanCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.uncached += other.uncached;
        self.errors += other.errors;
        self.invalidations += other.invalidations;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SparseKey {
    device: u64,
    rows: usize,
    cols: usize,
    /// Equation 4 vector size — the only channel through which mean
    /// nnz/row reaches the sparse tuner.
    vs: usize,
    /// Device-group width the plan was made for (1 = single device). A
    /// sharded executor plans against per-shard row counts, so the same
    /// matrix under a different shard count must not reuse the plan.
    shards: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DenseKey {
    device: u64,
    rows: usize,
    cols: usize,
    /// Device-group width the plan was made for (1 = single device).
    shards: usize,
}

/// A memoized streaming configuration: the chunk size and pipeline depth
/// the out-of-core cost search selected for one matrix on one device,
/// plus the modeled wall time of one streamed pattern evaluation under
/// that configuration. The search itself lives in `fusedml-runtime`
/// (it prices PCIe transfers); this cache gives it the PR-4 property —
/// a 500-iteration streamed CG solve searches once, not 500 times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPlan {
    /// Rows per streamed chunk.
    pub rows_per_chunk: usize,
    /// Pipeline depth (staging buffers in flight).
    pub depth: usize,
    /// Modeled wall milliseconds of one full streamed pass under the
    /// selected configuration (cold residency).
    pub modeled_ms: f64,
}

/// Key for a memoized streaming configuration. Unlike the launch-plan
/// keys, `nnz` enters directly (transfer cost scales with the exact byte
/// count, not a bucket) alongside the VS bucket the per-chunk kernel
/// plans hinge on; the copy-engine queue count and the residency budget
/// are part of the key because both change the pipeline schedule the
/// search prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct StreamKey {
    device: u64,
    rows: usize,
    cols: usize,
    nnz: u64,
    vs: usize,
    queues: usize,
    resident_bytes_cap: u64,
}

/// Key for a memoized DAG fusion plan: the structural DAG fingerprint
/// plus the matrix statistics the cost model consumes. `nnz` enters the
/// key directly (not VS-bucketed) because candidate costs scale with the
/// exact nonzero count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DagKey {
    device: u64,
    dag: u64,
    rows: usize,
    cols: usize,
    nnz: u64,
    dense: bool,
}

/// Memoized sparse and dense launch plans for one device, plus traffic
/// counters. Owned by [`crate::FusedExecutor`]; the executor consults it
/// before every tuner run. The `dag` side memoizes whole fusion plans
/// (candidate enumeration + cost-based selection) keyed by DAG
/// fingerprint — the PR-4 key extended to operator graphs.
#[derive(Debug, Default)]
pub struct PlanCache {
    sparse: BTreeMap<SparseKey, SparsePlan>,
    dense: BTreeMap<DenseKey, DensePlan>,
    dag: BTreeMap<DagKey, Arc<FusionPlan>>,
    stream: BTreeMap<StreamKey, StreamPlan>,
    sparse_stats: PlanCacheStats,
    dense_stats: PlanCacheStats,
    dag_stats: PlanCacheStats,
    stream_stats: PlanCacheStats,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Memoize `compute` under the sparse key `(device, rows, cols, vs)`
    /// for a single-device executor.
    /// `enabled = false` bypasses the map but still counts the tuner run.
    /// `pub` (not `pub(crate)`) because the streaming layer in
    /// `fusedml-runtime` memoizes its per-chunk launch plans here: all
    /// equal-shaped chunks share one entry, so a streamed pass plans once
    /// per distinct chunk shape (body + remainder), not once per chunk.
    pub fn sparse_plan<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        rows: usize,
        cols: usize,
        vs: usize,
        compute: impl FnOnce() -> Result<SparsePlan, E>,
    ) -> Result<(SparsePlan, bool), E> {
        self.sparse_plan_sharded(enabled, device, rows, cols, vs, 1, compute)
    }

    /// Memoize `compute` under the sparse key
    /// `(device, rows, cols, vs, shards)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sparse_plan_sharded<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        rows: usize,
        cols: usize,
        vs: usize,
        shards: usize,
        compute: impl FnOnce() -> Result<SparsePlan, E>,
    ) -> Result<(SparsePlan, bool), E> {
        let key = SparseKey {
            device: device.fingerprint(),
            rows,
            cols,
            vs,
            shards,
        };
        if enabled {
            if let Some(plan) = self.sparse.get(&key) {
                self.sparse_stats.hits += 1;
                return Ok((*plan, true));
            }
        }
        match compute() {
            Ok(plan) => {
                if enabled {
                    self.sparse.insert(key, plan);
                    self.sparse_stats.misses += 1;
                } else {
                    self.sparse_stats.uncached += 1;
                }
                Ok((plan, false))
            }
            Err(e) => {
                self.sparse_stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Memoize `compute` under the dense key `(device, rows, cols)` for a
    /// single-device executor.
    pub(crate) fn dense_plan<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        rows: usize,
        cols: usize,
        compute: impl FnOnce() -> Result<DensePlan, E>,
    ) -> Result<(DensePlan, bool), E> {
        self.dense_plan_sharded(enabled, device, rows, cols, 1, compute)
    }

    /// Memoize `compute` under the dense key `(device, rows, cols, shards)`.
    pub(crate) fn dense_plan_sharded<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        rows: usize,
        cols: usize,
        shards: usize,
        compute: impl FnOnce() -> Result<DensePlan, E>,
    ) -> Result<(DensePlan, bool), E> {
        let key = DenseKey {
            device: device.fingerprint(),
            rows,
            cols,
            shards,
        };
        if enabled {
            if let Some(plan) = self.dense.get(&key) {
                self.dense_stats.hits += 1;
                return Ok((*plan, true));
            }
        }
        match compute() {
            Ok(plan) => {
                if enabled {
                    self.dense.insert(key, plan);
                    self.dense_stats.misses += 1;
                } else {
                    self.dense_stats.uncached += 1;
                }
                Ok((plan, false))
            }
            Err(e) => {
                self.dense_stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Memoize a whole DAG fusion plan under
    /// `(device, dag fingerprint, rows, cols, nnz, dense)`. Errors are
    /// never cached, matching the sparse/dense sides.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn dag_plan<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        dag_fingerprint: u64,
        rows: usize,
        cols: usize,
        nnz: u64,
        dense: bool,
        compute: impl FnOnce() -> Result<FusionPlan, E>,
    ) -> Result<(Arc<FusionPlan>, bool), E> {
        let key = DagKey {
            device: device.fingerprint(),
            dag: dag_fingerprint,
            rows,
            cols,
            nnz,
            dense,
        };
        if enabled {
            if let Some(plan) = self.dag.get(&key) {
                self.dag_stats.hits += 1;
                return Ok((Arc::clone(plan), true));
            }
        }
        match compute() {
            Ok(plan) => {
                let plan = Arc::new(plan);
                if enabled {
                    self.dag.insert(key, Arc::clone(&plan));
                    self.dag_stats.misses += 1;
                } else {
                    self.dag_stats.uncached += 1;
                }
                Ok((plan, false))
            }
            Err(e) => {
                self.dag_stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Memoize a streaming configuration under
    /// `(device, rows, cols, nnz, vs, queues, resident_bytes_cap)`.
    /// This is the PR-4 streaming-key extension: the out-of-core cost
    /// search in `fusedml-runtime` runs once per (matrix, device,
    /// copy-engine, budget) tuple and every later solver iteration reuses
    /// the result. Errors are never cached, matching the other sides.
    /// `pub` (not `pub(crate)`) because the search lives downstream in
    /// the runtime crate.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_plan<E>(
        &mut self,
        enabled: bool,
        device: &DeviceSpec,
        rows: usize,
        cols: usize,
        nnz: u64,
        vs: usize,
        queues: usize,
        resident_bytes_cap: u64,
        compute: impl FnOnce() -> Result<StreamPlan, E>,
    ) -> Result<(StreamPlan, bool), E> {
        let key = StreamKey {
            device: device.fingerprint(),
            rows,
            cols,
            nnz,
            vs,
            queues,
            resident_bytes_cap,
        };
        if enabled {
            if let Some(plan) = self.stream.get(&key) {
                self.stream_stats.hits += 1;
                return Ok((*plan, true));
            }
        }
        match compute() {
            Ok(plan) => {
                if enabled {
                    self.stream.insert(key, plan);
                    self.stream_stats.misses += 1;
                } else {
                    self.stream_stats.uncached += 1;
                }
                Ok((plan, false))
            }
            Err(e) => {
                self.stream_stats.errors += 1;
                Err(e)
            }
        }
    }

    /// Drop every cached plan, recording the typed reason.
    pub fn invalidate(&mut self, reason: Invalidation) {
        self.sparse.clear();
        self.dense.clear();
        self.dag.clear();
        self.stream.clear();
        self.sparse_stats.invalidations += 1;
        self.dense_stats.invalidations += 1;
        self.dag_stats.invalidations += 1;
        self.stream_stats.invalidations += 1;
        if fusedml_trace::is_enabled() {
            fusedml_trace::instant(
                "plan",
                "plan.cache_invalidate",
                "host",
                &[("reason", reason.as_str().into())],
            );
        }
    }

    /// Cached entries: `(sparse, dense)`.
    pub fn len(&self) -> (usize, usize) {
        (self.sparse.len(), self.dense.len())
    }

    /// Cached DAG fusion plans.
    pub fn dag_len(&self) -> usize {
        self.dag.len()
    }

    /// Cached streaming configurations.
    pub fn stream_len(&self) -> usize {
        self.stream.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sparse.is_empty()
            && self.dense.is_empty()
            && self.dag.is_empty()
            && self.stream.is_empty()
    }

    /// Sparse, dense, DAG and streaming counters merged.
    pub fn stats(&self) -> PlanCacheStats {
        let mut s = self.sparse_stats;
        s.merge(&self.dense_stats);
        s.merge(&self.dag_stats);
        s.merge(&self.stream_stats);
        s
    }

    pub fn sparse_stats(&self) -> PlanCacheStats {
        self.sparse_stats
    }

    pub fn dense_stats(&self) -> PlanCacheStats {
        self.dense_stats
    }

    pub fn dag_stats(&self) -> PlanCacheStats {
        self.dag_stats
    }

    pub fn stream_stats(&self) -> PlanCacheStats {
        self.stream_stats
    }

    pub fn reset_stats(&mut self) {
        self.sparse_stats = PlanCacheStats::default();
        self.dense_stats = PlanCacheStats::default();
        self.dag_stats = PlanCacheStats::default();
        self.stream_stats = PlanCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{try_plan_dense, try_plan_sparse, PlanError};
    use fusedml_blas::vector_size_for_mean_nnz;

    fn titan() -> DeviceSpec {
        DeviceSpec::gtx_titan()
    }

    /// A device whose register file is too small for any sparse
    /// configuration (mirrors the tuner's own NoFeasibleConfig tests).
    fn register_starved() -> DeviceSpec {
        DeviceSpec {
            registers_per_sm: 1024,
            ..DeviceSpec::gtx_titan()
        }
    }

    fn plan_sparse_via_cache(
        cache: &mut PlanCache,
        spec: &DeviceSpec,
        m: usize,
        n: usize,
        mu: f64,
    ) -> Result<(SparsePlan, bool), PlanError> {
        let vs = vector_size_for_mean_nnz(mu);
        cache.sparse_plan(true, spec, m, n, vs, || try_plan_sparse(spec, m, n, mu))
    }

    #[test]
    fn second_identical_request_hits() {
        let mut cache = PlanCache::new();
        let spec = titan();
        let (p1, hit1) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 20.0).unwrap();
        let (p2, hit2) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 20.0).unwrap();
        assert!(!hit1 && hit2);
        assert_eq!(p1, p2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.plans_computed(), 1);
    }

    #[test]
    fn different_device_fingerprints_do_not_share_plans() {
        let mut cache = PlanCache::new();
        let titan = titan();
        let k20 = DeviceSpec::tesla_k20();
        let (_, hit1) = plan_sparse_via_cache(&mut cache, &titan, 10_000, 512, 20.0).unwrap();
        let (_, hit2) = plan_sparse_via_cache(&mut cache, &k20, 10_000, 512, 20.0).unwrap();
        assert!(!hit1 && !hit2, "k20 must not reuse the titan plan");
        assert_eq!(cache.len(), (2, 0));
    }

    #[test]
    fn mean_nnz_bucket_boundary_crossing_replans() {
        let mut cache = PlanCache::new();
        let spec = titan();
        // VS buckets per Equation 4: mu in (16, 32] -> VS 16, mu > 32 -> 32.
        assert_eq!(vector_size_for_mean_nnz(20.0), 16);
        assert_eq!(vector_size_for_mean_nnz(32.0), 16);
        assert_eq!(vector_size_for_mean_nnz(33.0), 32);
        let (_, h1) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 20.0).unwrap();
        let (_, h2) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 32.0).unwrap();
        let (_, h3) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 33.0).unwrap();
        assert!(!h1, "first request computes");
        assert!(h2, "same VS bucket shares the plan");
        assert!(!h3, "crossing the bucket boundary must replan");
        assert_eq!(cache.len(), (2, 0));
    }

    #[test]
    fn planning_errors_are_not_cached_as_success() {
        let mut cache = PlanCache::new();
        let starved = register_starved();
        for _ in 0..2 {
            let err = plan_sparse_via_cache(&mut cache, &starved, 10_000, 512, 20.0)
                .expect_err("register-starved device cannot plan");
            assert!(matches!(err, PlanError::NoFeasibleConfig { .. }));
        }
        assert!(cache.is_empty(), "errors must never enter the cache");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.errors), (0, 0, 2));
        assert_eq!(s.plans_computed(), 2, "the tuner re-ran on each call");
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let mut cache = PlanCache::new();
        let spec = titan();
        for _ in 0..3 {
            let (_, hit) = cache
                .dense_plan(false, &spec, 5_000, 128, || {
                    try_plan_dense(&spec, 5_000, 128)
                })
                .unwrap();
            assert!(!hit);
        }
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.hits, s.uncached), (0, 3));
        assert_eq!(s.plans_computed(), 3);
    }

    #[test]
    fn invalidation_flushes_and_counts() {
        let mut cache = PlanCache::new();
        let spec = titan();
        plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 20.0).unwrap();
        cache
            .dense_plan(true, &spec, 5_000, 128, || {
                try_plan_dense(&spec, 5_000, 128)
            })
            .unwrap();
        assert_eq!(cache.len(), (1, 1));
        cache.invalidate(Invalidation::DeviceChanged);
        assert!(cache.is_empty());
        let (_, hit) = plan_sparse_via_cache(&mut cache, &spec, 10_000, 512, 20.0).unwrap();
        assert!(!hit, "invalidation forces a replan");
        // sparse + dense + dag + stream sides each record the flush.
        assert_eq!(cache.stats().invalidations, 4);
    }

    #[test]
    fn stream_key_isolates_device_shape_queues_and_budget() {
        let mut cache = PlanCache::new();
        let spec = titan();
        let mk = |rows_per_chunk| StreamPlan {
            rows_per_chunk,
            depth: 3,
            modeled_ms: 1.0,
        };
        let plan = |cache: &mut PlanCache, queues: usize, cap: u64| {
            cache.stream_plan::<()>(true, &spec, 10_000, 512, 200_000, 16, queues, cap, || {
                Ok(mk(1024))
            })
        };
        let (_, h1) = plan(&mut cache, 1, 0).unwrap();
        let (_, h1b) = plan(&mut cache, 1, 0).unwrap();
        assert!(!h1 && h1b, "second identical request hits");
        let (_, hq) = plan(&mut cache, 2, 0).unwrap();
        let (_, hb) = plan(&mut cache, 1, 1 << 20).unwrap();
        assert!(!hq, "queue count is part of the key");
        assert!(!hb, "residency budget is part of the key");
        let (_, hk20) = cache
            .stream_plan::<()>(
                true,
                &DeviceSpec::tesla_k20(),
                10_000,
                512,
                200_000,
                16,
                1,
                0,
                || Ok(mk(512)),
            )
            .unwrap();
        assert!(!hk20, "device fingerprint is part of the key");
        assert_eq!(cache.stream_len(), 4);
        let s = cache.stream_stats();
        assert_eq!((s.hits, s.misses), (1, 4));
        assert_eq!(s.plans_computed(), 4);
    }

    #[test]
    fn stream_plan_errors_are_not_cached() {
        let mut cache = PlanCache::new();
        let spec = titan();
        for _ in 0..2 {
            let res: Result<(StreamPlan, bool), &str> =
                cache.stream_plan(true, &spec, 100, 10, 1000, 4, 1, 0, || {
                    Err("no feasible chunk")
                });
            assert!(res.is_err());
        }
        assert_eq!(cache.stream_len(), 0, "errors must never enter the cache");
        assert_eq!(cache.stream_stats().errors, 2);
    }

    #[test]
    fn shard_count_is_part_of_the_key() {
        let mut cache = PlanCache::new();
        let spec = titan();
        let vs = vector_size_for_mean_nnz(20.0);
        let plan = |cache: &mut PlanCache, shards| {
            cache.sparse_plan_sharded(true, &spec, 10_000, 512, vs, shards, || {
                try_plan_sparse(&spec, 10_000, 512, 20.0)
            })
        };
        let (_, h1) = plan(&mut cache, 1).unwrap();
        let (_, h2) = plan(&mut cache, 2).unwrap();
        let (_, h2b) = plan(&mut cache, 2).unwrap();
        assert!(!h1 && !h2, "a different shard count must not share plans");
        assert!(h2b, "same shard count hits");
        assert_eq!(cache.len(), (2, 0));
        // The unsharded entry point is the shards=1 key.
        let (_, h1b) = cache
            .sparse_plan(true, &spec, 10_000, 512, vs, || {
                try_plan_sparse(&spec, 10_000, 512, 20.0)
            })
            .unwrap();
        assert!(h1b);
    }
}
