//! The generic computation pattern of Equation 1 and its instantiations
//! (Table 1):
//!
//! ```text
//! w = alpha * X^T x (v ⊙ (X x y)) + beta * z
//! ```

use serde::{Deserialize, Serialize};

/// Scalar/optional-operand description of one pattern evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternSpec {
    pub alpha: f64,
    /// Element-wise weight vector `v` present?
    pub with_v: bool,
    pub beta: f64,
    /// Additive vector `beta * z` present?
    pub with_z: bool,
}

impl PatternSpec {
    /// `w = alpha * X^T (v ⊙ (X y)) + beta * z` — the complete pattern.
    pub fn full(alpha: f64, beta: f64) -> Self {
        PatternSpec {
            alpha,
            with_v: true,
            beta,
            with_z: true,
        }
    }

    /// `w = X^T (X y)`.
    pub fn xtxy() -> Self {
        PatternSpec {
            alpha: 1.0,
            with_v: false,
            beta: 0.0,
            with_z: false,
        }
    }

    /// `w = X^T (v ⊙ (X y))`.
    pub fn xtvxy() -> Self {
        PatternSpec {
            alpha: 1.0,
            with_v: true,
            beta: 0.0,
            with_z: false,
        }
    }

    /// `w = X^T (X y) + beta * z`.
    pub fn xtxy_plus_bz(beta: f64) -> Self {
        PatternSpec {
            alpha: 1.0,
            with_v: false,
            beta,
            with_z: true,
        }
    }

    /// Which of Table 1's named instantiations this spec is (ignoring the
    /// value of `alpha`, which is a free scalar in all of them).
    pub fn instance(&self) -> PatternInstance {
        match (self.with_v, self.with_z) {
            (false, false) => PatternInstance::XtXy,
            (true, false) => PatternInstance::XtVXy,
            (false, true) => PatternInstance::XtXyPlusBz,
            (true, true) => PatternInstance::Full,
        }
    }
}

/// The named instantiations of Table 1. `XtY` (`alpha * X^T y`) is listed
/// separately because it short-circuits the inner product: `y` already has
/// row dimension and no `X x y` stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternInstance {
    /// `alpha * X^T y`
    XtY,
    /// `X^T (X y)`
    XtXy,
    /// `X^T (v ⊙ (X y))`
    XtVXy,
    /// `X^T (X y) + beta z`
    XtXyPlusBz,
    /// `alpha * X^T (v ⊙ (X y)) + beta z`
    Full,
}

impl PatternInstance {
    /// Human-readable form as printed in Table 1.
    pub fn formula(&self) -> &'static str {
        match self {
            PatternInstance::XtY => "a * X^T x y",
            PatternInstance::XtXy => "X^T x (X x y)",
            PatternInstance::XtVXy => "X^T x (v . (X x y))",
            PatternInstance::XtXyPlusBz => "X^T x (X x y) + b * z",
            PatternInstance::Full => "X^T x (v . (X x y)) + b * z",
        }
    }

    pub fn all() -> [PatternInstance; 5] {
        [
            PatternInstance::XtY,
            PatternInstance::XtXy,
            PatternInstance::XtVXy,
            PatternInstance::XtXyPlusBz,
            PatternInstance::Full,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_classification() {
        assert_eq!(PatternSpec::xtxy().instance(), PatternInstance::XtXy);
        assert_eq!(PatternSpec::xtvxy().instance(), PatternInstance::XtVXy);
        assert_eq!(
            PatternSpec::xtxy_plus_bz(2.0).instance(),
            PatternInstance::XtXyPlusBz
        );
        assert_eq!(
            PatternSpec::full(1.0, 1.0).instance(),
            PatternInstance::Full
        );
    }

    #[test]
    fn formulas_are_distinct() {
        let all = PatternInstance::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.formula(), b.formula());
            }
        }
    }
}
