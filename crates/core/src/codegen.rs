//! The code-generation layer for dense fused kernels.
//!
//! The paper generates CUDA C at runtime — a kernel specialized to the
//! matrix width with `TL`-way unrolled loops and explicitly named registers
//! (Listing 2) — because indexed "register arrays" spill to local memory
//! when the index is not a compile-time constant. The Rust analog is
//! **monomorphization**: [`dense_fused_kernel`](crate::dense_fused::dense_fused_kernel) is generic over
//! `const TL: usize`, and this module provides the runtime dispatch table
//! from a [`DensePlan`] to the 40 specialized instantiations, plus a
//! faithful CUDA-source generator for inspection (mirroring Listing 2).

use crate::dense_fused::try_dense_fused_kernel;
use crate::pattern::PatternSpec;
use crate::tuner::{DensePlan, MAX_TL};
use fusedml_blas::GpuDense;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchStats};
use std::fmt::Write as _;

/// Launch the dense fused kernel, dispatching on the plan's thread load to
/// the monomorphized instantiation (the "generated kernel").
///
/// # Panics
/// If `plan.tl` is outside `[1, 40]` — the range beyond which the paper's
/// kernel would spill registers.
#[allow(clippy::too_many_arguments)]
pub fn try_launch_dense_fused(
    gpu: &Gpu,
    plan: &DensePlan,
    spec: PatternSpec,
    x: &GpuDense,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    macro_rules! dispatch {
        ($($tl:literal),+) => {
            match plan.tl {
                $( $tl => try_dense_fused_kernel::<$tl>(gpu, plan, spec, x, v, y, z, w), )+
                other => panic!(
                    "thread load {other} out of range [1, {MAX_TL}] — register spill"
                ),
            }
        };
    }
    dispatch!(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
        26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40
    )
}

/// Infallible [`try_launch_dense_fused`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn launch_dense_fused(
    gpu: &Gpu,
    plan: &DensePlan,
    spec: PatternSpec,
    x: &GpuDense,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> LaunchStats {
    try_launch_dense_fused(gpu, plan, spec, x, v, y, z, w).unwrap_or_else(|e| panic!("{e}"))
}

/// Generate the CUDA C source the paper's code generator would emit for a
/// dense matrix of width `n`, vector size `vs` and thread load `tl` —
/// the shape of Listing 2 (`mtmvm_<n>_<vs>_<tl>`), with unrolled loads and
/// explicitly named registers.
///
/// This is provided for inspection/documentation (and as the honest record
/// of what the monomorphized Rust kernel models); it is not compiled.
pub fn generate_cuda_source(n: usize, vs: usize, tl: usize) -> String {
    assert!((1..=MAX_TL).contains(&tl));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "__global__ void mtmvm_{n}_{vs}_{tl}(const double *X, const double *y,"
    );
    let _ = writeln!(s, "    const double *v, const double a, double *w) {{");
    let _ = writeln!(s, "  __shared__ volatile double sdata[{vs}];");
    let _ = writeln!(s, "  unsigned int tid = threadIdx.x;");
    let _ = writeln!(s, "  unsigned int lid = tid & ({});", vs - 1);
    let _ = writeln!(s, "  unsigned int vid = tid / {vs};");
    let _ = writeln!(s, "  unsigned int rowStart = blockIdx.x * NV + vid;");
    let _ = writeln!(
        s,
        "  unsigned int rowEnd = rowStart + (gridDim.x * NV) * rowPerVector;"
    );
    // Named registers, one set per unrolled slot.
    let decl: Vec<String> = (1..=tl)
        .map(|i| format!("l_y{i}, l_X{i}, l_w{i}"))
        .collect();
    let _ = writeln!(s, "  double sum, {};", decl.join(", "));
    let _ = writeln!(s, "  if (rowStart < rowDim) {{");
    for i in 1..=tl {
        let _ = writeln!(s, "    l_y{i} = y[lid + {}];", (i - 1) * vs);
        let _ = writeln!(s, "    l_w{i} = 0.0;");
    }
    let _ = writeln!(
        s,
        "    for (r = rowStart; r < rowEnd; r += gridDim.x * NV) {{"
    );
    let _ = writeln!(s, "      sum = 0.0;");
    for i in 1..=tl {
        let _ = writeln!(
            s,
            "      l_X{i} = X[r * {n} + lid + {}]; sum += l_X{i} * l_y{i};",
            (i - 1) * vs
        );
    }
    let _ = writeln!(s, "      sum = interVectorReduce(sum);");
    let _ = writeln!(s, "      if (lid == 0) sdata[vid] = sum * v[r];");
    let _ = writeln!(s, "      sum = sdata[vid];");
    for i in 1..=tl {
        let _ = writeln!(s, "      l_w{i} += l_X{i} * sum;");
    }
    let _ = writeln!(s, "    }}");
    for i in 1..=tl {
        let _ = writeln!(s, "    atomicAdd(&w[lid + {}], a * l_w{i});", (i - 1) * vs);
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_source_matches_listing2_shape() {
        // The paper's example: m x 32 matrix, VS = 16, TL = 2.
        let src = generate_cuda_source(32, 16, 2);
        assert!(src.contains("mtmvm_32_16_2"));
        assert!(src.contains("l_y1"), "unrolled register 1 missing");
        assert!(src.contains("l_y2"), "unrolled register 2 missing");
        assert!(!src.contains("l_y3"), "over-unrolled");
        assert!(src.contains("lid = tid & (15)"));
        assert!(src.contains("interVectorReduce"));
        assert!(src.contains("atomicAdd"));
        // One X load per unroll slot.
        assert!(src.matches("l_X").count() / 2 >= 2);
    }

    #[test]
    fn unroll_count_scales_with_tl() {
        let s4 = generate_cuda_source(128, 32, 4);
        assert!(s4.contains("l_w4") && !s4.contains("l_w5"));
        let s1 = generate_cuda_source(28, 32, 1);
        assert!(s1.contains("l_w1") && !s1.contains("l_w2"));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_tl() {
        generate_cuda_source(64, 32, 41);
    }
}
