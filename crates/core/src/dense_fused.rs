//! The dense fused kernel — Algorithm 3 of the paper.
//!
//! Each row is processed by a *vector* of `VS` threads; each thread owns
//! `TL` elements of the row (`TL` = thread load). The elements of `y` are
//! read once into registers (`l_y`), each row's elements are read once into
//! registers (`l_X`), the dot product reduces through shuffles (plus an
//! inter-warp shared-memory step when the vector spans the whole block),
//! and the `X[r,:]^T * p[r]` contribution accumulates in registers (`l_w`)
//! — no memory traffic at all for the second use of `X`. Only when a vector
//! has exhausted its rows does it flush `l_w` to global `w` with atomics.
//!
//! `TL` is a **const generic**: the Rust analog of the paper's CUDA code
//! generator, which emits a kernel with `TL`-way unrolled loops and named
//! registers (Listing 2). Monomorphization gives exactly that — fixed-size
//! arrays that live in "registers" with no indexed local memory. The
//! dispatch table lives in [`crate::codegen`].

use crate::pattern::PatternSpec;
use crate::sparse_fused::beta_z_init;
use crate::tuner::DensePlan;
use fusedml_blas::GpuDense;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

/// Launch the dense fused kernel with compile-time thread load `TL`.
/// Use [`crate::codegen::launch_dense_fused`] for runtime dispatch.
///
/// `w` must be zeroed by the caller.
#[allow(clippy::too_many_arguments)]
pub fn try_dense_fused_kernel<const TL: usize>(
    gpu: &Gpu,
    plan: &DensePlan,
    spec: PatternSpec,
    x: &GpuDense,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(TL, plan.tl, "dispatched TL does not match the plan");
    assert_eq!(spec.with_v, v.is_some(), "v presence mismatch");
    assert_eq!(spec.with_z, z.is_some(), "z presence mismatch");
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let (m, n) = (x.rows, x.cols);
    let (vs, bs, c) = (plan.vs, plan.bs, plan.c);
    assert!(
        vs * TL >= n,
        "vector ({vs} threads x {TL}) cannot cover a {n}-column row"
    );
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let alpha = spec.alpha;
    let beta = spec.beta;

    // Shared memory: inter-warp reduction scratch (one slot per warp plus
    // the broadcast slot), only needed when the vector spans warps.
    let nwarps = bs / WARP_LANES;
    let shared_bytes = if vs > WARP_LANES { (nwarps + 1) * 8 } else { 0 };
    // TL independent loads in flight per thread: the unrolling's ILP,
    // which is what lets the kernel run well at register-limited occupancy.
    let cfg = LaunchConfig::new(plan.grid, bs)
        .with_regs(plan.regs)
        .with_shared_bytes(shared_bytes)
        .with_ilp(TL as f64);

    gpu.try_launch("fused_dense", cfg, |blk| {
        let block_id = blk.block_id();
        let bs = blk.block_dim();

        if let Some(z) = z {
            beta_z_init(blk, w, z, beta, n);
            blk.sync();
        }

        // Per-thread register files (l_y, l_w), living across phases.
        let mut ly = vec![[0.0f64; TL]; bs];
        let mut lw = vec![[0.0f64; TL]; bs];

        // Column slot of thread `tid`'s i-th element.
        let col_of = |tid: usize, i: usize| {
            let lid = tid % vs;
            let col = lid + i * vs;
            (col < n).then_some(col)
        };

        // ---- lines 4-5: load y into registers, once ----
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for i in 0..TL {
                let ys = wc.load_f64_tex(y, |lane| col_of(tid0 + lane, i));
                for lane in 0..wc.active_lanes() {
                    ly[tid0 + lane][i] = ys[lane];
                }
            }
        });

        if vs <= WARP_LANES {
            // ---- intra-warp vectors: the whole row pipeline per warp ----
            blk.each_warp(|wc| {
                let tid0 = wc.tid(0);
                for ci in 0..c {
                    let row_of = move |lane: usize| {
                        let vid = (tid0 + lane) / vs;
                        let row = block_id * nv + vid + ci * total_vectors;
                        (row < m).then_some(row)
                    };
                    if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                        break;
                    }
                    // lines 11-13: read the row, dot with l_y.
                    let mut lx = [[0.0f64; TL]; WARP_LANES];
                    let mut sum = [0.0f64; WARP_LANES];
                    let mut active = 0u64;
                    for i in 0..TL {
                        let xs = wc.load_f64(&x.data, |lane| {
                            row_of(lane).and_then(|r| col_of(tid0 + lane, i).map(|col| r * n + col))
                        });
                        for lane in 0..WARP_LANES {
                            if row_of(lane).is_some() {
                                lx[lane][i] = xs[lane];
                                sum[lane] += xs[lane] * ly[tid0 + lane][i];
                                active += 1;
                            }
                        }
                    }
                    wc.flops(2 * active);
                    // lines 14-15: single-step intra-vector reduction.
                    wc.shuffle_reduce_sum(&mut sum, vs);
                    // line 20's v[row] scaling (done by one thread, broadcast
                    // free through the shuffle result).
                    let p_r = if let Some(v) = v {
                        let vr = wc.load_f64_tex(v, &row_of);
                        let mut p = [0.0f64; WARP_LANES];
                        for lane in 0..WARP_LANES {
                            p[lane] = sum[lane] * vr[lane];
                        }
                        p
                    } else {
                        sum
                    };
                    // lines 23-24: accumulate into l_w registers.
                    let mut acc = 0u64;
                    for lane in 0..WARP_LANES {
                        if row_of(lane).is_some() {
                            let tid = tid0 + lane;
                            for i in 0..TL {
                                if col_of(tid, i).is_some() {
                                    lw[tid][i] += lx[lane][i] * p_r[lane];
                                    acc += 1;
                                }
                            }
                        }
                    }
                    wc.flops(2 * acc);
                }
            });
        } else {
            // ---- block-wide vector (VS == BS): inter-warp reduction ----
            let red = blk.shared_f64(nwarps + 1);
            let mut lx_file = vec![[0.0f64; TL]; bs];
            for ci in 0..c {
                let row = block_id + ci * total_vectors;
                if row >= m {
                    break;
                }
                // Pass A: per-warp partial dot products.
                blk.each_warp(|wc| {
                    let tid0 = wc.tid(0);
                    let mut sum = [0.0f64; WARP_LANES];
                    let mut active = 0u64;
                    for i in 0..TL {
                        let xs = wc.load_f64(&x.data, |lane| {
                            col_of(tid0 + lane, i).map(|col| row * n + col)
                        });
                        for lane in 0..wc.active_lanes() {
                            let tid = tid0 + lane;
                            if col_of(tid, i).is_some() {
                                lx_file[tid][i] = xs[lane];
                                sum[lane] += xs[lane] * ly[tid][i];
                                active += 1;
                            }
                        }
                    }
                    wc.flops(2 * active);
                    wc.shuffle_reduce_sum(&mut sum, 32);
                    let wid = wc.warp_id();
                    wc.shared_store(red, |lane| (lane == 0).then_some((wid, sum[0])));
                });
                blk.sync(); // line 19
                            // Inter-warp reduction + v[row] scaling by warp 0 (line 20).
                blk.each_warp(|wc| {
                    if wc.warp_id() == 0 {
                        let mut sums = wc.shared_load(red, |lane| (lane < nwarps).then_some(lane));
                        let width = nwarps.next_power_of_two().min(32);
                        wc.shuffle_reduce_sum(&mut sums, width);
                        let p_r = if let Some(v) = v {
                            let vr = wc.load_f64_tex(v, |lane| (lane == 0).then_some(row));
                            sums[0] * vr[0]
                        } else {
                            sums[0]
                        };
                        wc.shared_store(red, |lane| (lane == 0).then_some((nwarps, p_r)));
                    }
                });
                blk.sync(); // line 22
                            // Pass B: broadcast p_r, accumulate l_w.
                blk.each_warp(|wc| {
                    let tid0 = wc.tid(0);
                    let p = wc.shared_load(red, |lane| (lane == 0).then_some(nwarps));
                    let mut acc = 0u64;
                    for lane in 0..wc.active_lanes() {
                        let tid = tid0 + lane;
                        for i in 0..TL {
                            if col_of(tid, i).is_some() {
                                lw[tid][i] += lx_file[tid][i] * p[0];
                                acc += 1;
                            }
                        }
                    }
                    wc.flops(2 * acc);
                });
            }
        }

        // ---- lines 26-27: flush l_w to global w with atomics ----
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for i in 0..TL {
                wc.atomic_add_f64(w, |lane| {
                    let tid = tid0 + lane;
                    col_of(tid, i).map(|col| (col, alpha * lw[tid][i]))
                });
            }
        });
    })
}

/// Infallible [`try_dense_fused_kernel`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn dense_fused_kernel<const TL: usize>(
    gpu: &Gpu,
    plan: &DensePlan,
    spec: PatternSpec,
    x: &GpuDense,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> LaunchStats {
    try_dense_fused_kernel::<TL>(gpu, plan, spec, x, v, y, z, w).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{plan_dense, DensePlan};
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{dense_random, random_vector};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    fn run_with_plan(plan: &DensePlan, m: usize, n: usize, seed: u64) -> f64 {
        let g = gpu();
        let x = dense_random(m, n, seed);
        let y = random_vector(n, seed + 1);
        let v = random_vector(m, seed + 2);
        let z = random_vector(n, seed + 3);
        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", n);
        let spec = PatternSpec::full(1.5, -2.0);
        crate::codegen::launch_dense_fused(&g, plan, spec, &xd, Some(&vd), &yd, Some(&zd), &wd);
        let expect = reference::pattern_dense(1.5, &x, Some(&v), &y, -2.0, Some(&z));
        reference::rel_l2_error(&wd.to_vec_f64(), &expect)
    }

    #[test]
    fn higgs_shape_small_n() {
        // n = 28 triggers the BS=1024/TL=1 special case.
        let g = gpu();
        let plan = plan_dense(g.spec(), 5000, 28);
        assert_eq!(plan.tl, 1);
        assert!(run_with_plan(&plan, 5000, 28, 71) < 1e-12);
    }

    #[test]
    fn mid_width_intra_warp_vectors() {
        let g = gpu();
        let plan = plan_dense(g.spec(), 2000, 200);
        assert!(plan.vs * plan.tl >= 200);
        assert!(run_with_plan(&plan, 2000, 200, 72) < 1e-12);
    }

    #[test]
    fn wide_rows_block_vector_path() {
        let g = gpu();
        // Force the VS == BS path with a hand-built plan.
        let mut plan = plan_dense(g.spec(), 500, 1024);
        if plan.vs <= 32 {
            plan.vs = plan.bs;
            plan.tl = 1024usize.div_ceil(plan.bs);
            plan.regs = crate::tuner::dense_kernel_regs(plan.tl);
            let total_vectors = plan.grid; // one vector per block
            plan.c = 500usize.div_ceil(total_vectors).max(1);
        }
        assert!(plan.vs > 32);
        assert!(run_with_plan(&plan, 500, 1024, 73) < 1e-12);
    }

    #[test]
    fn xtxy_without_options() {
        let g = gpu();
        let m = 1500;
        let n = 96;
        let x = dense_random(m, n, 74);
        let y = random_vector(n, 75);
        let plan = plan_dense(g.spec(), m, n);
        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", n);
        crate::codegen::launch_dense_fused(
            &g,
            &plan,
            PatternSpec::xtxy(),
            &xd,
            None,
            &yd,
            None,
            &wd,
        );
        let expect = reference::pattern_dense(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn x_is_read_once_from_dram() {
        let g = gpu();
        let m = 4000;
        let n = 256; // 8 MB matrix, far beyond the per-SM L2 slice
        let x = dense_random(m, n, 76);
        let y = random_vector(n, 77);
        let plan = plan_dense(g.spec(), m, n);
        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", n);
        g.flush_caches();
        let stats = crate::codegen::launch_dense_fused(
            &g,
            &plan,
            PatternSpec::xtxy(),
            &xd,
            None,
            &yd,
            None,
            &wd,
        );
        let one_scan = (m * n * 8) as u64;
        assert!(
            stats.counters.dram_read_bytes < one_scan + one_scan / 4,
            "dram {} vs one scan {}",
            stats.counters.dram_read_bytes,
            one_scan
        );
    }
}
