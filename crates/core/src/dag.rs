//! Operator DAGs: one solver iteration expressed as a graph of
//! linear-algebra operators over a single bound matrix.
//!
//! The hand-fused kernels cover exactly the Equation-1 chain. The DAG
//! layer generalizes: a solver describes its iteration as operators
//! (SpMV/dense MV, transpose-MV, element-wise multiply/scale/axpy, dot),
//! and the fusion compiler ([`crate::fusion`]) enumerates which chains
//! collapse into single kernels. Vector dimensions are expressed relative
//! to the bound matrix ([`Dim::Rows`] / [`Dim::Cols`]), which makes shape
//! inference a lookup instead of a constraint system.
//!
//! Scalars are either literals or named parameters bound at execution
//! time ([`ScalarRef`]); a plan therefore depends only on the DAG's
//! *structure*, and one memoized plan serves every iteration of a solver
//! whose scalar coefficients change step to step.

use crate::pattern::PatternSpec;

/// Index of a node within its [`Dag`] (topological by construction).
pub type NodeId = usize;

/// Vector dimension relative to the bound matrix `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Length `X.rows` (the `X y` product space).
    Rows,
    /// Length `X.cols` (the `X^T u` product space).
    Cols,
}

impl Dim {
    fn tag(self) -> u8 {
        match self {
            Dim::Rows => 0,
            Dim::Cols => 1,
        }
    }
}

/// A scalar coefficient: a literal baked into the DAG, or a named
/// parameter supplied per execution (plan structure is value-independent
/// either way — the fused kernels take scalars as arguments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarRef {
    Lit(f64),
    Param(&'static str),
}

/// One operator node. `a` is the node's *primary* operand — the edge
/// fusion chains along; side operands (`b`, the matrix) always stream
/// from memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// External vector bound by name at execution time.
    Input { name: &'static str, dim: Dim },
    /// `X y` (cols → rows).
    Mv { y: NodeId },
    /// `X^T u` (rows → cols).
    Tmv { u: NodeId },
    /// `a ⊙ b` element-wise.
    EwMul { a: NodeId, b: NodeId },
    /// `alpha * a`.
    Scale { a: NodeId, alpha: ScalarRef },
    /// `a + beta * b`.
    Axpy {
        a: NodeId,
        beta: ScalarRef,
        b: NodeId,
    },
    /// Host-visible scalar `a · b`.
    Dot { a: NodeId, b: NodeId },
}

impl Op {
    /// Short stable label used in plan dumps and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Mv { .. } => "mv",
            Op::Tmv { .. } => "tmv",
            Op::EwMul { .. } => "ewmul",
            Op::Scale { .. } => "scale",
            Op::Axpy { .. } => "axpy",
            Op::Dot { .. } => "dot",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Op::Input { .. } => 1,
            Op::Mv { .. } => 2,
            Op::Tmv { .. } => 3,
            Op::EwMul { .. } => 4,
            Op::Scale { .. } => 5,
            Op::Axpy { .. } => 6,
            Op::Dot { .. } => 7,
        }
    }
}

/// Incremental DAG constructor. Shape errors (feeding a rows-dim vector
/// to `Mv`, mixing dims in `EwMul`) are programmer errors and assert.
#[derive(Debug, Default)]
pub struct DagBuilder {
    nodes: Vec<Op>,
    dims: Vec<Option<Dim>>,
}

impl DagBuilder {
    pub fn new() -> Self {
        DagBuilder::default()
    }

    fn push(&mut self, op: Op, dim: Option<Dim>) -> NodeId {
        self.nodes.push(op);
        self.dims.push(dim);
        self.nodes.len() - 1
    }

    fn vdim(&self, n: NodeId) -> Dim {
        self.dims[n].unwrap_or_else(|| panic!("node {n} is a scalar, not a vector"))
    }

    pub fn input(&mut self, name: &'static str, dim: Dim) -> NodeId {
        self.push(Op::Input { name, dim }, Some(dim))
    }

    pub fn mv(&mut self, y: NodeId) -> NodeId {
        assert_eq!(self.vdim(y), Dim::Cols, "Mv consumes a cols-dim vector");
        self.push(Op::Mv { y }, Some(Dim::Rows))
    }

    pub fn tmv(&mut self, u: NodeId) -> NodeId {
        assert_eq!(self.vdim(u), Dim::Rows, "Tmv consumes a rows-dim vector");
        self.push(Op::Tmv { u }, Some(Dim::Cols))
    }

    pub fn ewmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let d = self.vdim(a);
        assert_eq!(d, self.vdim(b), "EwMul operands must share a dimension");
        self.push(Op::EwMul { a, b }, Some(d))
    }

    pub fn scale(&mut self, a: NodeId, alpha: ScalarRef) -> NodeId {
        let d = self.vdim(a);
        self.push(Op::Scale { a, alpha }, Some(d))
    }

    pub fn axpy(&mut self, a: NodeId, beta: ScalarRef, b: NodeId) -> NodeId {
        let d = self.vdim(a);
        assert_eq!(d, self.vdim(b), "Axpy operands must share a dimension");
        self.push(Op::Axpy { a, beta, b }, Some(d))
    }

    pub fn dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.vdim(a),
            self.vdim(b),
            "Dot operands must share a dimension"
        );
        self.push(Op::Dot { a, b }, None)
    }

    /// Seal the DAG. `output` must be a computed vector node.
    pub fn finish(self, output: NodeId) -> Dag {
        assert!(output < self.nodes.len(), "output node out of range");
        assert!(
            !matches!(self.nodes[output], Op::Input { .. }),
            "output must be a computed node"
        );
        assert!(
            self.dims[output].is_some(),
            "output must be a vector node, not a dot scalar"
        );
        Dag {
            nodes: self.nodes,
            dims: self.dims,
            output,
        }
    }
}

/// An immutable operator DAG (nodes in topological order) with one
/// designated vector output. Dot nodes are side outputs read back as
/// host scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct Dag {
    nodes: Vec<Op>,
    dims: Vec<Option<Dim>>,
    output: NodeId,
}

impl Dag {
    pub fn nodes(&self) -> &[Op] {
        &self.nodes
    }

    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Vector dimension of `n`, or `None` for scalar (dot) nodes.
    pub fn dim(&self, n: NodeId) -> Option<Dim> {
        self.dims[n]
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// How many nodes consume each node (the fusion chains require
    /// single-consumer edges). The designated output gets one extra
    /// phantom consumer so it is never treated as a dead intermediate.
    pub fn consumer_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for op in &self.nodes {
            match *op {
                Op::Input { .. } => {}
                Op::Mv { y } => counts[y] += 1,
                Op::Tmv { u } => counts[u] += 1,
                Op::Scale { a, .. } => counts[a] += 1,
                Op::EwMul { a, b } | Op::Dot { a, b } => {
                    counts[a] += 1;
                    counts[b] += 1;
                }
                Op::Axpy { a, b, .. } => {
                    counts[a] += 1;
                    counts[b] += 1;
                }
            }
        }
        counts[self.output] += 1;
        counts
    }

    /// Structural FNV-1a fingerprint: op kinds, edges, dims, scalar
    /// literals (bit pattern) and parameter names, plus the output node.
    /// This is the DAG half of the plan-cache key.
    pub fn fingerprint(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        fn eat_id(h: &mut u64, id: NodeId) {
            eat(h, &(id as u64).to_le_bytes());
        }
        fn eat_scalar(h: &mut u64, s: &ScalarRef) {
            match s {
                ScalarRef::Lit(v) => {
                    eat(h, &[0u8]);
                    eat(h, &v.to_bits().to_le_bytes());
                }
                ScalarRef::Param(name) => {
                    eat(h, &[1u8]);
                    eat(h, name.as_bytes());
                }
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for op in &self.nodes {
            eat(&mut h, &[op.tag()]);
            match *op {
                Op::Input { name, dim } => {
                    eat(&mut h, &[dim.tag()]);
                    eat(&mut h, name.as_bytes());
                }
                Op::Mv { y } => eat_id(&mut h, y),
                Op::Tmv { u } => eat_id(&mut h, u),
                Op::EwMul { a, b } | Op::Dot { a, b } => {
                    eat_id(&mut h, a);
                    eat_id(&mut h, b);
                }
                Op::Scale { a, alpha } => {
                    eat_id(&mut h, a);
                    eat_scalar(&mut h, &alpha);
                }
                Op::Axpy { a, beta, b } => {
                    eat_id(&mut h, a);
                    eat_scalar(&mut h, &beta);
                    eat_id(&mut h, b);
                }
            }
        }
        eat_id(&mut h, self.output);
        h
    }

    /// The Equation-1 chain `w = alpha * X^T (v ⊙ (X y)) + beta * z` as a
    /// DAG, with the same optional stages as [`PatternSpec`]. Input names:
    /// `"y"` (cols), `"v"` (rows, when `with_v`), `"z"` (cols, when
    /// `with_z`). A unit `alpha` emits no scale node, matching the named
    /// Table-1 instantiations.
    pub fn equation1(spec: PatternSpec) -> Dag {
        let mut b = DagBuilder::new();
        let y = b.input("y", Dim::Cols);
        let mut t = b.mv(y);
        if spec.with_v {
            let v = b.input("v", Dim::Rows);
            t = b.ewmul(t, v);
        }
        let mut w = b.tmv(t);
        if spec.alpha != 1.0 {
            w = b.scale(w, ScalarRef::Lit(spec.alpha));
        }
        if spec.with_z {
            let z = b.input("z", Dim::Cols);
            w = b.axpy(w, ScalarRef::Lit(spec.beta), z);
        }
        b.finish(w)
    }

    /// `w = alpha * X^T y` — the short-circuit XtY instantiation. Input
    /// name: `"y"` (rows).
    pub fn xt_y(alpha: f64) -> Dag {
        let mut b = DagBuilder::new();
        let y = b.input("y", Dim::Rows);
        let mut w = b.tmv(y);
        if alpha != 1.0 {
            w = b.scale(w, ScalarRef::Lit(alpha));
        }
        b.finish(w)
    }

    /// One PageRank power iteration over a square link matrix `L`
    /// (`L[i][j] = 1` when page `i` links to page `j`):
    ///
    /// ```text
    /// r' = d * L^T (r ⊙ inv_deg) + teleport * ones
    /// ```
    ///
    /// Inputs: `"r"` (rows), `"inv_deg"` (rows, reciprocal out-degrees),
    /// `"ones"` (cols). Scalar parameters: `"d"` (damping) and
    /// `"teleport"` (`(1 - d) / n`), bound per execution.
    pub fn pagerank() -> Dag {
        let mut b = DagBuilder::new();
        let r = b.input("r", Dim::Rows);
        let inv_deg = b.input("inv_deg", Dim::Rows);
        let ones = b.input("ones", Dim::Cols);
        let t = b.ewmul(r, inv_deg);
        let t = b.tmv(t);
        let t = b.scale(t, ScalarRef::Param("d"));
        let w = b.axpy(t, ScalarRef::Param("teleport"), ones);
        b.finish(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_shapes_follow_spec() {
        let full = Dag::equation1(PatternSpec::full(1.5, -0.5));
        // y, mv, v, ewmul, tmv, scale, z, axpy
        assert_eq!(full.len(), 8);
        assert_eq!(full.dim(full.output()), Some(Dim::Cols));

        let bare = Dag::equation1(PatternSpec::xtxy());
        // y, mv, tmv — alpha == 1 emits no scale node.
        assert_eq!(bare.len(), 3);
        assert!(matches!(bare.nodes()[bare.output()], Op::Tmv { .. }));
    }

    #[test]
    fn fingerprint_is_structural_and_value_sensitive() {
        let a = Dag::equation1(PatternSpec::xtxy_plus_bz(0.001));
        let b = Dag::equation1(PatternSpec::xtxy_plus_bz(0.001));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Dag::equation1(PatternSpec::xtxy_plus_bz(0.002));
        assert_ne!(a.fingerprint(), c.fingerprint(), "literal bits are hashed");
        assert_ne!(
            Dag::xt_y(1.0).fingerprint(),
            Dag::xt_y(-1.0).fingerprint(),
            "scale presence is structural"
        );
        assert_ne!(a.fingerprint(), Dag::pagerank().fingerprint());
    }

    #[test]
    fn param_scalars_do_not_depend_on_bound_values() {
        // Same structure, parameters unbound: fingerprints must agree so
        // one cached plan serves every iteration.
        assert_eq!(Dag::pagerank().fingerprint(), Dag::pagerank().fingerprint());
    }

    #[test]
    fn consumer_counts_mark_single_use_chains() {
        let dag = Dag::equation1(PatternSpec::full(2.0, 0.5));
        let counts = dag.consumer_counts();
        // Every interior node of the Eq-1 chain has exactly one consumer.
        for (i, op) in dag.nodes().iter().enumerate() {
            if !matches!(op, Op::Input { .. }) {
                assert_eq!(counts[i], 1, "node {i} ({}) fan-out", op.label());
            }
        }
    }

    #[test]
    #[should_panic(expected = "Mv consumes a cols-dim vector")]
    fn mv_rejects_rows_dim_input() {
        let mut b = DagBuilder::new();
        let r = b.input("r", Dim::Rows);
        b.mv(r);
    }

    #[test]
    #[should_panic(expected = "output must be a computed node")]
    fn output_cannot_be_an_input() {
        let mut b = DagBuilder::new();
        let r = b.input("r", Dim::Rows);
        b.finish(r);
    }
}
