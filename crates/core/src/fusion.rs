//! Cost-based fusion-plan compiler and executor for operator DAGs.
//!
//! Given a [`Dag`] and the bound matrix's statistics, the
//! compiler enumerates candidate plans — partitions of the DAG into kernel
//! groups, where a group is one fused kernel and interior values live in
//! registers/shared memory instead of device DRAM — prices each candidate
//! with the gpu-sim chain cost model ([`fusedml_gpu_sim::cost`]), and
//! selects the cheapest. Selection is a pure function of the device spec,
//! the DAG structure and the matrix shape, so plans are memoized in the
//! PR-4 plan cache under a DAG-fingerprint key and are deterministic for a
//! fixed [`DeviceSpec`].
//!
//! ## Candidate enumeration rules
//!
//! * **pattern**: the Equation-1 chain `Mv → (EwMul v) → Tmv → (Scale) →
//!   (Axpy z)` with single-consumer interior edges collapses into the
//!   hand-fused pattern kernel (zero-fill + one fused kernel).
//! * **tmv-fold**: `Tmv → Scale` folds the scalar into the fused
//!   `alpha * X^T u` kernel.
//! * **ew**: maximal single-consumer chains of element-wise ops
//!   (`EwMul`/`Scale`/`Axpy` linked through their primary operand) fuse
//!   into one map kernel; interior values stay in registers.
//! * everything else executes one kernel per operator (`Dot` never
//!   fuses — it ends a chain by materializing its operands).
//!
//! Candidates are generated most-fused-first and ties in modeled cost
//! break toward the earlier (more fused) candidate, deterministically.

use crate::dag::{Dag, Dim, NodeId, Op, ScalarRef};
use crate::executor::FusedExecutor;
use crate::pattern::PatternSpec;
use crate::plancache::{Invalidation, PlanCacheStats};
use fusedml_blas::level1;
use fusedml_blas::{
    try_csrmv, try_gemv, try_gemv_t, vector_size_for_mean_nnz, GpuCsr, GpuDense, SpmvStyle,
};
use fusedml_gpu_sim::cost::{estimate_fused_kernel, ChainOp};
use fusedml_gpu_sim::{
    DeviceError, DeviceSpec, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Matrix statistics the cost model consumes; part of the plan-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixShape {
    pub rows: usize,
    pub cols: usize,
    pub nnz: u64,
    pub dense: bool,
}

impl MatrixShape {
    pub fn of_sparse(x: &GpuCsr) -> Self {
        MatrixShape {
            rows: x.rows,
            cols: x.cols,
            nnz: x.nnz as u64,
            dense: false,
        }
    }

    pub fn of_dense(x: &GpuDense) -> Self {
        MatrixShape {
            rows: x.rows,
            cols: x.cols,
            nnz: x.rows as u64 * x.cols as u64,
            dense: true,
        }
    }

    /// Vector length along `d` for this matrix.
    pub fn dim_len(&self, d: Dim) -> usize {
        match d {
            Dim::Rows => self.rows,
            Dim::Cols => self.cols,
        }
    }
}

/// How one kernel group evaluates its nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupKind {
    /// The whole Equation-1 chain through the hand-fused pattern kernel.
    Pattern {
        mv: NodeId,
        ewmul: Option<NodeId>,
        tmv: NodeId,
        scale: Option<NodeId>,
        axpy: Option<NodeId>,
    },
    /// `alpha * X^T u` with the scale folded into the fused XtY kernel.
    TmvFold { tmv: NodeId, scale: NodeId },
    /// A fused chain of element-wise ops (one map kernel).
    EwChain { nodes: Vec<NodeId> },
    /// One operator, one kernel — the unfused tier.
    Single { node: NodeId },
}

impl GroupKind {
    /// Every node evaluated by this group, in chain order.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            GroupKind::Pattern {
                mv,
                ewmul,
                tmv,
                scale,
                axpy,
            } => {
                let mut v = vec![*mv];
                v.extend(*ewmul);
                v.push(*tmv);
                v.extend(*scale);
                v.extend(*axpy);
                v
            }
            GroupKind::TmvFold { tmv, scale } => vec![*tmv, *scale],
            GroupKind::EwChain { nodes } => nodes.clone(),
            GroupKind::Single { node } => vec![*node],
        }
    }

    /// The node whose value this group writes out.
    pub fn output(&self) -> NodeId {
        *self.nodes().last().unwrap_or(&0)
    }

    /// True when more than one operator shares the kernel.
    pub fn is_fused(&self) -> bool {
        self.nodes().len() > 1
    }

    /// Stable label for dumps and traces.
    pub fn label(&self) -> &'static str {
        match self {
            GroupKind::Pattern { .. } => "pattern",
            GroupKind::TmvFold { .. } => "tmv-fold",
            GroupKind::EwChain { .. } => "ew-chain",
            GroupKind::Single { .. } => "single",
        }
    }

    fn describe(&self, dag: &Dag) -> String {
        let ops: Vec<&str> = self
            .nodes()
            .iter()
            .map(|&n| dag.nodes()[n].label())
            .collect();
        format!("{}[{}]", self.label(), ops.join(","))
    }
}

/// One kernel group of a selected plan, with its modeled price.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelGroup {
    pub kind: GroupKind,
    /// Human/goldenfile description, e.g. `pattern[mv,ewmul,tmv,axpy]`.
    pub desc: String,
    /// Modeled milliseconds from the chain cost estimator.
    pub modeled_ms: f64,
    /// Synthetic DRAM traffic of the estimate.
    pub dram_bytes: u64,
    /// Kernel launches the estimate charges (fills included).
    pub launches: u64,
}

/// A candidate the compiler priced but did not select.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedCandidate {
    pub desc: String,
    pub modeled_ms: f64,
}

/// The selected fusion plan for one DAG on one device/matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionPlan {
    /// Structural fingerprint of the DAG this plan was compiled for.
    pub dag_fingerprint: u64,
    /// Candidate label, e.g. `pattern+ew`.
    pub desc: String,
    /// Kernel groups in execution (topological) order.
    pub groups: Vec<KernelGroup>,
    /// Total modeled milliseconds (sum over groups).
    pub modeled_ms: f64,
    /// Intermediate nodes written to device DRAM (group outputs,
    /// including the DAG output).
    pub materialized: Vec<NodeId>,
    /// Intermediate nodes fusion keeps in registers/shared memory.
    pub in_registers: Vec<NodeId>,
    /// Every candidate that lost, with its modeled cost.
    pub rejected: Vec<RejectedCandidate>,
}

fn chain_op_for(dag: &Dag, shape: MatrixShape, node: NodeId) -> ChainOp {
    let len = dag
        .dim(node)
        .map(|d| shape.dim_len(d))
        .unwrap_or(shape.rows.max(shape.cols));
    match dag.nodes()[node] {
        Op::Input { .. } => unreachable!("inputs are never scheduled"),
        Op::Mv { .. } if shape.dense => ChainOp::DenseMv {
            rows: shape.rows,
            cols: shape.cols,
        },
        Op::Mv { .. } => ChainOp::SpMv {
            rows: shape.rows,
            cols: shape.cols,
            nnz: shape.nnz,
        },
        Op::Tmv { .. } if shape.dense => ChainOp::DenseTmv {
            rows: shape.rows,
            cols: shape.cols,
        },
        Op::Tmv { .. } => ChainOp::SpTmv {
            rows: shape.rows,
            cols: shape.cols,
            nnz: shape.nnz,
        },
        Op::EwMul { .. } => ChainOp::Map {
            len,
            side_inputs: 1,
            flops_per_elem: 1,
        },
        Op::Scale { .. } => ChainOp::Map {
            len,
            side_inputs: 0,
            flops_per_elem: 1,
        },
        Op::Axpy { .. } => ChainOp::Map {
            len,
            side_inputs: 1,
            flops_per_elem: 2,
        },
        Op::Dot { .. } => ChainOp::Dot { len },
    }
}

fn group_chain(dag: &Dag, shape: MatrixShape, kind: &GroupKind) -> Vec<ChainOp> {
    kind.nodes()
        .iter()
        .map(|&n| chain_op_for(dag, shape, n))
        .collect()
}

/// The Equation-1 chain match, if the DAG contains one.
fn find_pattern(dag: &Dag, consumers: &[u32]) -> Option<GroupKind> {
    let nodes = dag.nodes();
    for (m, op) in nodes.iter().enumerate() {
        if !matches!(op, Op::Mv { .. }) {
            continue;
        }
        // Optional `v ⊙ ·` stage (EwMul is commutative: accept either slot).
        let mut cur = m;
        let mut ewmul = None;
        if consumers[cur] == 1 {
            if let Some((e, side_is_external)) =
                nodes.iter().enumerate().find_map(|(i, n)| match *n {
                    Op::EwMul { a, b } if a == cur || b == cur => {
                        let side = if a == cur { b } else { a };
                        Some((i, side != cur))
                    }
                    _ => None,
                })
            {
                if side_is_external {
                    ewmul = Some(e);
                    cur = e;
                }
            }
        }
        // Mandatory transpose stage.
        if consumers[cur] != 1 {
            continue;
        }
        let Some(t) = nodes.iter().enumerate().find_map(|(i, n)| match *n {
            Op::Tmv { u } if u == cur => Some(i),
            _ => None,
        }) else {
            continue;
        };
        let mut cur = t;
        // Optional scale.
        let mut scale = None;
        if consumers[cur] == 1 {
            if let Some(s) = nodes.iter().enumerate().find_map(|(i, n)| match *n {
                Op::Scale { a, .. } if a == cur => Some(i),
                _ => None,
            }) {
                scale = Some(s);
                cur = s;
            }
        }
        // Optional `+ beta z` (chain must be the accumulated operand `a`).
        let mut axpy = None;
        if consumers[cur] == 1 {
            if let Some(ax) = nodes.iter().enumerate().find_map(|(i, n)| match *n {
                Op::Axpy { a, b, .. } if a == cur && b != cur => Some(i),
                _ => None,
            }) {
                axpy = Some(ax);
            }
        }
        return Some(GroupKind::Pattern {
            mv: m,
            ewmul,
            tmv: t,
            scale,
            axpy,
        });
    }
    None
}

/// All `Tmv → Scale` folds available outside `taken`.
fn find_tmv_folds(dag: &Dag, consumers: &[u32], taken: &[bool]) -> Vec<GroupKind> {
    let nodes = dag.nodes();
    let mut folds = Vec::new();
    for (t, op) in nodes.iter().enumerate() {
        if !matches!(op, Op::Tmv { .. }) || taken[t] || consumers[t] != 1 {
            continue;
        }
        if let Some(s) = nodes.iter().enumerate().find_map(|(i, n)| match *n {
            Op::Scale { a, .. } if a == t && !taken[i] => Some(i),
            _ => None,
        }) {
            folds.push(GroupKind::TmvFold { tmv: t, scale: s });
        }
    }
    folds
}

fn primary_operand(op: &Op) -> Option<NodeId> {
    match *op {
        Op::EwMul { a, .. } | Op::Scale { a, .. } | Op::Axpy { a, .. } => Some(a),
        _ => None,
    }
}

/// Build one candidate partition. `None` when a requested feature has no
/// match in this DAG (the candidate collapses into another).
fn build_candidate(
    dag: &Dag,
    shape: MatrixShape,
    use_pattern: bool,
    use_tmv_fold: bool,
    fuse_ew: bool,
) -> Option<Vec<GroupKind>> {
    let consumers = dag.consumer_counts();
    let mut taken = vec![false; dag.len()];
    let mut groups: Vec<GroupKind> = Vec::new();

    if use_pattern {
        // The fused XtY kernel is sparse+dense, but the full pattern match
        // needs the Mv stage present either way.
        let p = find_pattern(dag, &consumers)?;
        for n in p.nodes() {
            taken[n] = true;
        }
        groups.push(p);
    }
    if use_tmv_fold {
        if shape.dense {
            return None; // the alpha-folding XtY kernel is sparse-only
        }
        let folds = find_tmv_folds(dag, &consumers, &taken);
        if folds.is_empty() {
            return None;
        }
        for f in folds {
            for n in f.nodes() {
                taken[n] = true;
            }
            groups.push(f);
        }
    }

    // Remaining nodes: element-wise chains (when fusing) or singles.
    // `open_tail` maps a chain's current tail node to its index in
    // `chains`; a chain extends only along single-consumer primary edges.
    let mut chains: Vec<Vec<NodeId>> = Vec::new();
    let mut open_tail: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (i, op) in dag.nodes().iter().enumerate() {
        if taken[i] || matches!(op, Op::Input { .. }) {
            continue;
        }
        let is_ew = matches!(op, Op::EwMul { .. } | Op::Scale { .. } | Op::Axpy { .. });
        if is_ew && fuse_ew {
            if let Some(p) = primary_operand(op) {
                if let Some(&ci) = open_tail.get(&p) {
                    if consumers[p] == 1 {
                        open_tail.remove(&p);
                        chains[ci].push(i);
                        open_tail.insert(i, ci);
                        continue;
                    }
                }
            }
            chains.push(vec![i]);
            open_tail.insert(i, chains.len() - 1);
        } else {
            groups.push(GroupKind::Single { node: i });
        }
    }
    for chain in chains {
        if chain.len() >= 2 {
            groups.push(GroupKind::EwChain { nodes: chain });
        } else {
            groups.push(GroupKind::Single { node: chain[0] });
        }
    }
    // Execution order: groups sorted by output node id is topological
    // (node ids are topological and a group's output is its last node).
    groups.sort_by_key(|g| g.output());
    Some(groups)
}

fn invalid_launch(detail: String) -> DeviceError {
    DeviceError::InvalidLaunch {
        kernel: "dag.fusion".to_string(),
        detail,
    }
}

/// Enumerate, price and select the cheapest fusion plan for `dag` on
/// `spec`/`shape`. Deterministic: candidates are generated most-fused
/// first and cost ties keep the earlier candidate.
pub fn select_plan(
    spec: &DeviceSpec,
    dag: &Dag,
    shape: MatrixShape,
) -> Result<FusionPlan, DeviceError> {
    assert!(!dag.is_empty(), "cannot plan an empty DAG");
    // Most-fused-first: ties break toward more fusion.
    let feature_cube = [
        ("pattern+tmv-fold+ew", true, true, true),
        ("pattern+tmv-fold", true, true, false),
        ("pattern+ew", true, false, true),
        ("pattern", true, false, false),
        ("tmv-fold+ew", false, true, true),
        ("tmv-fold", false, true, false),
        ("ew", false, false, true),
        ("unfused", false, false, false),
    ];
    let mut candidates: Vec<(&'static str, Vec<GroupKind>)> = Vec::new();
    for (desc, p, t, e) in feature_cube {
        if let Some(groups) = build_candidate(dag, shape, p, t, e) {
            if !candidates.iter().any(|(_, g)| *g == groups) {
                candidates.push((desc, groups));
            }
        }
    }

    let mut priced: Vec<(&'static str, Vec<KernelGroup>, f64)> = Vec::new();
    for (desc, groups) in candidates {
        let mut kernel_groups = Vec::with_capacity(groups.len());
        let mut total = 0.0f64;
        for kind in groups {
            let chain = group_chain(dag, shape, &kind);
            let est = estimate_fused_kernel(spec, &chain).ok_or_else(|| {
                invalid_launch(format!(
                    "no feasible launch for chain {} on {}",
                    kind.describe(dag),
                    spec.name
                ))
            })?;
            total += est.modeled_ms();
            kernel_groups.push(KernelGroup {
                desc: kind.describe(dag),
                kind,
                modeled_ms: est.modeled_ms(),
                dram_bytes: est.counters.dram_bytes(),
                launches: est.counters.kernel_launches,
            });
        }
        priced.push((desc, kernel_groups, total));
    }

    let best = priced
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.2.total_cmp(&b.2).then(ai.cmp(bi)))
        .map(|(i, _)| i)
        .ok_or_else(|| invalid_launch("no fusion candidates".to_string()))?;

    let rejected: Vec<RejectedCandidate> = priced
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != best)
        .map(|(_, (desc, _, ms))| RejectedCandidate {
            desc: desc.to_string(),
            modeled_ms: *ms,
        })
        .collect();
    let (desc, groups, modeled_ms) = priced.swap_remove(best);

    let mut materialized = Vec::new();
    let mut in_registers = Vec::new();
    for g in &groups {
        let nodes = g.kind.nodes();
        for &n in &nodes[..nodes.len() - 1] {
            in_registers.push(n);
        }
        let out = g.kind.output();
        if dag.dim(out).is_some() {
            materialized.push(out); // dot results are host scalars
        }
    }
    materialized.sort_unstable();
    in_registers.sort_unstable();

    if fusedml_trace::is_enabled() {
        for r in &rejected {
            fusedml_trace::instant(
                "fusion",
                "fusion.candidate_rejected",
                "host",
                &[
                    ("candidate", r.desc.as_str().into()),
                    ("modeled_ms", r.modeled_ms.into()),
                ],
            );
        }
        fusedml_trace::instant(
            "fusion",
            "fusion.plan_selected",
            "host",
            &[
                ("candidate", desc.into()),
                ("modeled_ms", modeled_ms.into()),
                ("groups", groups.len().into()),
                ("dag", format!("{:016x}", dag.fingerprint()).as_str().into()),
            ],
        );
    }

    Ok(FusionPlan {
        dag_fingerprint: dag.fingerprint(),
        desc: desc.to_string(),
        groups,
        modeled_ms,
        materialized,
        in_registers,
        rejected,
    })
}

/// The unfused one-kernel-per-operator reference plan (no enumeration).
/// The property suite executes this against the selected plan to check
/// bit-identity of exactly order-preserving fusions.
pub fn unfused_plan(
    spec: &DeviceSpec,
    dag: &Dag,
    shape: MatrixShape,
) -> Result<FusionPlan, DeviceError> {
    let groups = build_candidate(dag, shape, false, false, false)
        .unwrap_or_else(|| unreachable!("the unfused candidate always exists"));
    let mut kernel_groups = Vec::with_capacity(groups.len());
    let mut total = 0.0f64;
    let mut materialized = Vec::new();
    for kind in groups {
        let chain = group_chain(dag, shape, &kind);
        let est = estimate_fused_kernel(spec, &chain)
            .ok_or_else(|| invalid_launch(format!("no feasible launch on {}", spec.name)))?;
        total += est.modeled_ms();
        if dag.dim(kind.output()).is_some() {
            materialized.push(kind.output());
        }
        kernel_groups.push(KernelGroup {
            desc: kind.describe(dag),
            kind,
            modeled_ms: est.modeled_ms(),
            dram_bytes: est.counters.dram_bytes(),
            launches: est.counters.kernel_launches,
        });
    }
    Ok(FusionPlan {
        dag_fingerprint: dag.fingerprint(),
        desc: "unfused".to_string(),
        groups: kernel_groups,
        modeled_ms: total,
        materialized,
        in_registers: Vec::new(),
        rejected: Vec::new(),
    })
}

/// The matrix a DAG executes against.
#[derive(Debug, Clone, Copy)]
pub enum DagMatrix<'a> {
    Sparse(&'a GpuCsr),
    Dense(&'a GpuDense),
}

impl DagMatrix<'_> {
    pub fn shape(&self) -> MatrixShape {
        match self {
            DagMatrix::Sparse(x) => MatrixShape::of_sparse(x),
            DagMatrix::Dense(x) => MatrixShape::of_dense(x),
        }
    }
}

/// Named vector and scalar bindings for one DAG execution.
#[derive(Debug, Default)]
pub struct DagInputs<'a> {
    vectors: BTreeMap<&'static str, &'a GpuBuffer>,
    scalars: BTreeMap<&'static str, f64>,
}

impl<'a> DagInputs<'a> {
    pub fn new() -> Self {
        DagInputs::default()
    }

    pub fn vector(mut self, name: &'static str, buf: &'a GpuBuffer) -> Self {
        self.vectors.insert(name, buf);
        self
    }

    pub fn scalar(mut self, name: &'static str, value: f64) -> Self {
        self.scalars.insert(name, value);
        self
    }
}

/// Result of one DAG execution: the plan used (and whether it came from
/// the cache) plus host-visible dot-product scalars keyed by node.
#[derive(Debug, Clone)]
pub struct DagRun {
    pub plan: Arc<FusionPlan>,
    pub plan_cached: bool,
    pub scalars: BTreeMap<NodeId, f64>,
}

/// One fused element-wise step applied per element against the running
/// chain value. The per-element expressions mirror the level-1 kernels
/// exactly (`a * x`, `x * y`, `y + a * x`), so fusing a chain is
/// bit-identical to running its ops as separate kernels.
enum EwStep<'a> {
    Mul(&'a GpuBuffer),
    Scale(f64),
    Axpy(f64, &'a GpuBuffer),
}

/// `out[i] = steps(primary[i])` in one kernel launch; chain intermediates
/// never leave registers.
fn try_ew_chain(
    gpu: &Gpu,
    primary: &GpuBuffer,
    steps: &[EwStep<'_>],
    out: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    let n = out.len();
    assert_eq!(primary.len(), n);
    let grid = n.div_ceil(256).clamp(1, 1024);
    let cfg = LaunchConfig::new(grid, 256).with_regs(20);
    gpu.try_launch("dag.ew", cfg, |blk| {
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut base = w.gtid(0);
            while base < n {
                let mut vals = w.load_f64(primary, |lane| (base + lane < n).then_some(base + lane));
                let active = (n - base).min(WARP_LANES) as u64;
                for step in steps {
                    match step {
                        EwStep::Mul(side) => {
                            let ss =
                                w.load_f64(side, |lane| (base + lane < n).then_some(base + lane));
                            for lane in 0..WARP_LANES {
                                if base + lane < n {
                                    vals[lane] *= ss[lane];
                                }
                            }
                            w.flops(active);
                        }
                        EwStep::Scale(a) => {
                            for lane in 0..WARP_LANES {
                                if base + lane < n {
                                    vals[lane] *= *a;
                                }
                            }
                            w.flops(active);
                        }
                        EwStep::Axpy(beta, side) => {
                            let ss =
                                w.load_f64(side, |lane| (base + lane < n).then_some(base + lane));
                            for lane in 0..WARP_LANES {
                                if base + lane < n {
                                    vals[lane] += *beta * ss[lane];
                                }
                            }
                            w.flops(2 * active);
                        }
                    }
                }
                w.store_f64(out, |lane| {
                    (base + lane < n).then(|| (base + lane, vals[lane]))
                });
                base += grid_threads;
            }
        });
    })
}

/// Executes operator DAGs through cost-selected fusion plans. Fused
/// Equation-1 groups delegate to the hand-tuned [`FusedExecutor`]
/// kernels, so a DAG that *is* the Equation-1 chain produces modeled
/// time, DRAM traffic and atomic counters bit-identical to calling the
/// hand-fused path directly.
pub struct DagExecutor<'g> {
    exec: FusedExecutor<'g>,
    scalar_buf: GpuBuffer,
}

impl<'g> DagExecutor<'g> {
    pub fn try_new(gpu: &'g Gpu) -> Result<Self, DeviceError> {
        Ok(DagExecutor {
            exec: FusedExecutor::new(gpu),
            scalar_buf: gpu.try_alloc_f64("dag.scalar", 1)?,
        })
    }

    /// Infallible [`DagExecutor::try_new`]; panics on device faults.
    pub fn new(gpu: &'g Gpu) -> Self {
        DagExecutor::try_new(gpu).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn gpu(&self) -> &'g Gpu {
        self.exec.gpu()
    }

    /// Every launch performed since the last [`DagExecutor::reset`].
    pub fn launches(&self) -> &[LaunchStats] {
        &self.exec.launches
    }

    pub fn launch_count(&self) -> usize {
        self.exec.launch_count()
    }

    pub fn total_sim_ms(&self) -> f64 {
        self.exec.total_sim_ms()
    }

    pub fn counters_total(&self) -> fusedml_gpu_sim::Counters {
        self.exec.counters_total()
    }

    pub fn reset(&mut self) {
        self.exec.reset();
    }

    pub fn plan_stats(&self) -> PlanCacheStats {
        self.exec.plan_stats()
    }

    /// Hit/miss accounting for the DAG side of the plan cache alone.
    /// [`DagExecutor::plan_stats`] merges this with the sparse/dense
    /// launch-plan counters that fused groups also exercise.
    pub fn dag_plan_stats(&self) -> PlanCacheStats {
        self.exec.plan_cache_ref().borrow().dag_stats()
    }

    pub fn reset_plan_stats(&self) {
        self.exec.reset_plan_stats();
    }

    pub fn set_plan_cache(&self, enabled: bool) {
        self.exec.set_plan_cache(enabled);
    }

    pub fn invalidate_plan_cache(&self, reason: Invalidation) {
        self.exec.invalidate_plan_cache(reason);
    }

    /// Compile (or fetch from the plan cache) the fusion plan for `dag`
    /// against `x`. The cache key extends the PR-4 key with the DAG's
    /// structural fingerprint.
    pub fn try_plan(
        &self,
        dag: &Dag,
        x: &DagMatrix<'_>,
    ) -> Result<(Arc<FusionPlan>, bool), DeviceError> {
        let shape = x.shape();
        let spec = self.gpu().spec();
        let fp = dag.fingerprint();
        let (plan, cached) = self.exec.plan_cache_ref().borrow_mut().dag_plan(
            self.exec.plan_cache_enabled(),
            spec,
            fp,
            shape.rows,
            shape.cols,
            shape.nnz,
            shape.dense,
            || select_plan(spec, dag, shape),
        )?;
        if cached && fusedml_trace::is_enabled() {
            fusedml_trace::instant(
                "plan",
                "plan.cache_hit",
                "host",
                &[
                    ("kind", "dag".into()),
                    ("dag", format!("{fp:016x}").as_str().into()),
                    ("rows", shape.rows.into()),
                    ("cols", shape.cols.into()),
                ],
            );
        }
        Ok((plan, cached))
    }

    /// Execute `dag` against matrix `x` with the cost-selected plan,
    /// writing the output node's value into `out`.
    pub fn try_run(
        &mut self,
        dag: &Dag,
        x: &DagMatrix<'_>,
        inputs: &DagInputs<'_>,
        out: &GpuBuffer,
    ) -> Result<DagRun, DeviceError> {
        let (plan, plan_cached) = self.try_plan(dag, x)?;
        let scalars = self.try_run_with_plan(&plan, dag, x, inputs, out)?;
        Ok(DagRun {
            plan,
            plan_cached,
            scalars,
        })
    }

    /// Execute `dag` under an explicit `plan` (the property suite uses
    /// this to run the unfused reference plan). Returns the dot scalars.
    pub fn try_run_with_plan(
        &mut self,
        plan: &FusionPlan,
        dag: &Dag,
        x: &DagMatrix<'_>,
        inputs: &DagInputs<'_>,
        out: &GpuBuffer,
    ) -> Result<BTreeMap<NodeId, f64>, DeviceError> {
        assert_eq!(
            plan.dag_fingerprint,
            dag.fingerprint(),
            "plan compiled for a different DAG"
        );
        let shape = x.shape();
        assert_eq!(
            out.len(),
            shape.dim_len(
                dag.dim(dag.output())
                    .unwrap_or_else(|| unreachable!("output is a vector node"))
            ),
            "output buffer length does not match the DAG output dimension"
        );
        let gpu = self.gpu();
        let nodes = dag.nodes();
        let mut values: BTreeMap<NodeId, GpuBuffer> = BTreeMap::new();
        let mut scalars: BTreeMap<NodeId, f64> = BTreeMap::new();

        let resolve_scalar = |s: &ScalarRef| -> f64 {
            match s {
                ScalarRef::Lit(v) => *v,
                ScalarRef::Param(name) => *inputs
                    .scalars
                    .get(name)
                    .unwrap_or_else(|| panic!("unbound scalar parameter '{name}'")),
            }
        };

        for group in &plan.groups {
            let out_node = group.kind.output();
            let is_vector = dag.dim(out_node).is_some();
            // The group's destination: the caller's buffer for the DAG
            // output, a pooled temporary otherwise.
            let dst = if is_vector {
                if out_node == dag.output() {
                    out.clone()
                } else {
                    let len = shape.dim_len(
                        dag.dim(out_node)
                            .unwrap_or_else(|| unreachable!("vector node")),
                    );
                    gpu.try_alloc_f64("dag.tmp", len)?
                }
            } else {
                self.scalar_buf.clone()
            };
            let sim_before = self.exec.total_sim_ms();

            // Resolve a node's buffer: an execution input or an earlier
            // group's materialized output.
            macro_rules! val {
                ($n:expr) => {
                    match nodes[$n] {
                        Op::Input { name, .. } => *inputs
                            .vectors
                            .get(name)
                            .unwrap_or_else(|| panic!("unbound input vector '{name}'")),
                        _ => values
                            .get(&$n)
                            .unwrap_or_else(|| panic!("node {} used before materialization", $n)),
                    }
                };
            }

            match &group.kind {
                GroupKind::Pattern {
                    mv,
                    ewmul,
                    tmv: _,
                    scale,
                    axpy,
                } => {
                    let y = match nodes[*mv] {
                        Op::Mv { y } => val!(y),
                        _ => unreachable!("pattern mv node"),
                    };
                    let v = ewmul.map(|e| match nodes[e] {
                        Op::EwMul { a, b } => {
                            let side = if a == *mv { b } else { a };
                            val!(side)
                        }
                        _ => unreachable!("pattern ewmul node"),
                    });
                    let alpha = scale
                        .map(|s| match nodes[s] {
                            Op::Scale { alpha, .. } => resolve_scalar(&alpha),
                            _ => unreachable!("pattern scale node"),
                        })
                        .unwrap_or(1.0);
                    let (beta, z) = axpy
                        .map(|ax| match nodes[ax] {
                            Op::Axpy { beta, b, .. } => (resolve_scalar(&beta), Some(b)),
                            _ => unreachable!("pattern axpy node"),
                        })
                        .unwrap_or((0.0, None));
                    let z = z.map(|zn| val!(zn));
                    let spec = PatternSpec {
                        alpha,
                        with_v: v.is_some(),
                        beta,
                        with_z: z.is_some(),
                    };
                    match x {
                        DagMatrix::Sparse(m) => {
                            self.exec.try_pattern_sparse(spec, m, v, y, z, &dst)?
                        }
                        DagMatrix::Dense(m) => {
                            self.exec.try_pattern_dense(spec, m, v, y, z, &dst)?
                        }
                    }
                }
                GroupKind::TmvFold { tmv, scale } => {
                    let u = match nodes[*tmv] {
                        Op::Tmv { u } => val!(u),
                        _ => unreachable!("tmv-fold tmv node"),
                    };
                    let alpha = match nodes[*scale] {
                        Op::Scale { alpha, .. } => resolve_scalar(&alpha),
                        _ => unreachable!("tmv-fold scale node"),
                    };
                    match x {
                        DagMatrix::Sparse(m) => self.exec.try_xt_y_sparse(alpha, m, u, &dst)?,
                        DagMatrix::Dense(_) => {
                            unreachable!("tmv-fold candidates are sparse-only")
                        }
                    }
                }
                GroupKind::EwChain { nodes: chain } => {
                    let primary = primary_operand(&nodes[chain[0]])
                        .unwrap_or_else(|| unreachable!("ew chains start at an ew op"));
                    let primary = val!(primary);
                    let steps: Vec<EwStep<'_>> = chain
                        .iter()
                        .map(|&n| match nodes[n] {
                            Op::EwMul { b, .. } => EwStep::Mul(val!(b)),
                            Op::Scale { alpha, .. } => EwStep::Scale(resolve_scalar(&alpha)),
                            Op::Axpy { beta, b, .. } => {
                                EwStep::Axpy(resolve_scalar(&beta), val!(b))
                            }
                            _ => unreachable!("non-ew op in an ew chain"),
                        })
                        .collect();
                    let stats = try_ew_chain(gpu, primary, &steps, &dst)?;
                    self.exec.launches.push(stats);
                }
                GroupKind::Single { node } => match nodes[*node] {
                    Op::Mv { y } => {
                        let y = val!(y);
                        let stats = match x {
                            DagMatrix::Sparse(m) => {
                                let vs = vector_size_for_mean_nnz(m.mean_nnz_per_row());
                                try_csrmv(gpu, m, y, &dst, SpmvStyle::Vector { vs })?
                            }
                            DagMatrix::Dense(m) => try_gemv(gpu, m, y, &dst)?,
                        };
                        self.exec.launches.push(stats);
                    }
                    Op::Tmv { u } => {
                        let u = val!(u);
                        match x {
                            DagMatrix::Sparse(m) => {
                                self.exec.try_xt_y_sparse(1.0, m, u, &dst)?;
                            }
                            DagMatrix::Dense(m) => {
                                let stats = try_gemv_t(gpu, m, u, &dst)?;
                                self.exec.launches.extend(stats);
                            }
                        }
                    }
                    Op::EwMul { a, b } => {
                        let stats = try_ew_chain(gpu, val!(a), &[EwStep::Mul(val!(b))], &dst)?;
                        self.exec.launches.push(stats);
                    }
                    Op::Scale { a, alpha } => {
                        let stats = try_ew_chain(
                            gpu,
                            val!(a),
                            &[EwStep::Scale(resolve_scalar(&alpha))],
                            &dst,
                        )?;
                        self.exec.launches.push(stats);
                    }
                    Op::Axpy { a, beta, b } => {
                        let stats = try_ew_chain(
                            gpu,
                            val!(a),
                            &[EwStep::Axpy(resolve_scalar(&beta), val!(b))],
                            &dst,
                        )?;
                        self.exec.launches.push(stats);
                    }
                    Op::Dot { a, b } => {
                        let (v, stats) = level1::try_dot(gpu, val!(a), val!(b), &self.scalar_buf)?;
                        self.exec.launches.push(stats);
                        scalars.insert(*node, v);
                    }
                    Op::Input { .. } => unreachable!("inputs are never scheduled"),
                },
            }

            if group.kind.is_fused() && fusedml_trace::is_enabled() {
                fusedml_trace::sim_span(
                    "fusion",
                    "fusion.fused_kernel",
                    "device",
                    self.exec.total_sim_ms() - sim_before,
                    &[
                        ("group", group.desc.as_str().into()),
                        ("modeled_est_ms", group.modeled_ms.into()),
                    ],
                );
            }
            // Record the materialized value even for the DAG output: a
            // later group (say a convergence-check dot) may read it.
            if is_vector {
                values.insert(out_node, dst);
            }
        }
        Ok(scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    fn titan() -> DeviceSpec {
        DeviceSpec::gtx_titan()
    }

    fn sparse_shape(rows: usize, cols: usize, nnz: u64) -> MatrixShape {
        MatrixShape {
            rows,
            cols,
            nnz,
            dense: false,
        }
    }

    #[test]
    fn equation1_selects_the_pattern_kernel() {
        let dag = Dag::equation1(PatternSpec::full(1.5, -0.5));
        let plan = select_plan(&titan(), &dag, sparse_shape(20_000, 1024, 400_000)).unwrap();
        assert_eq!(plan.groups.len(), 1, "plan: {plan:?}");
        assert!(matches!(plan.groups[0].kind, GroupKind::Pattern { .. }));
        assert!(
            plan.rejected.iter().any(|r| r.desc == "unfused"),
            "the unfused candidate must have been priced and rejected"
        );
        for r in &plan.rejected {
            assert!(
                r.modeled_ms >= plan.modeled_ms,
                "{} ({}) beats selection ({})",
                r.desc,
                r.modeled_ms,
                plan.modeled_ms
            );
        }
        // Interior nodes stay in registers; only the output materializes.
        assert_eq!(plan.materialized, vec![dag.output()]);
        assert_eq!(plan.in_registers.len(), dag.len() - 3 - 1); // minus 3 inputs, minus output
    }

    #[test]
    fn pagerank_folds_the_scale_into_the_tmv_kernel() {
        let dag = Dag::pagerank();
        let plan = select_plan(&titan(), &dag, sparse_shape(4_096, 4_096, 65_536)).unwrap();
        assert!(
            plan.groups
                .iter()
                .any(|g| matches!(g.kind, GroupKind::TmvFold { .. })),
            "plan {plan:?}"
        );
        assert!(
            plan.modeled_ms
                <= plan
                    .rejected
                    .iter()
                    .map(|r| r.modeled_ms)
                    .fold(f64::MAX, f64::min)
        );
    }

    #[test]
    fn plan_selection_is_deterministic() {
        let dag = Dag::pagerank();
        let shape = sparse_shape(1_000, 1_000, 20_000);
        let a = select_plan(&titan(), &dag, shape).unwrap();
        let b = select_plan(&titan(), &dag, shape).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.modeled_ms.to_bits(), b.modeled_ms.to_bits());
    }

    #[test]
    fn dag_executor_reproduces_the_hand_fused_path_bit_identically() {
        // Modeled time depends on transient device state (cache contents
        // and the atomic-sampling phase advance monotonically across
        // launches), so each path gets its own freshly constructed,
        // identical device — the claim is that the DAG compiler's chosen
        // plan drives the exact same kernels the hand-fused path does.
        let x = uniform_sparse(2_000, 256, 0.02, 7);
        let yh = random_vector(256, 1);
        let vh = random_vector(2_000, 2);
        let zh = random_vector(256, 3);
        let spec = PatternSpec::full(1.5, -0.5);

        // Hand-fused reference.
        let g1 = gpu();
        let xd1 = GpuCsr::upload(&g1, "X", &x);
        let y1 = g1.upload_f64("y", &yh);
        let v1 = g1.upload_f64("v", &vh);
        let z1 = g1.upload_f64("z", &zh);
        let w_ref = g1.alloc_f64("w", 256);
        let mut exec = FusedExecutor::new(&g1);
        exec.try_pattern_sparse(spec, &xd1, Some(&v1), &y1, Some(&z1), &w_ref)
            .unwrap();
        let ref_ms = exec.total_sim_ms();
        let ref_counters = exec.counters_total();
        let ref_names: Vec<_> = exec.launches.iter().map(|l| l.name).collect();

        // Same chain as a DAG, same allocation order on a twin device.
        let g2 = gpu();
        let xd2 = GpuCsr::upload(&g2, "X", &x);
        let y2 = g2.upload_f64("y", &yh);
        let v2 = g2.upload_f64("v", &vh);
        let z2 = g2.upload_f64("z", &zh);
        let w_dag = g2.alloc_f64("w", 256);
        let dag = Dag::equation1(spec);
        let mut dexec = DagExecutor::new(&g2);
        let run = dexec
            .try_run(
                &dag,
                &DagMatrix::Sparse(&xd2),
                &DagInputs::new()
                    .vector("y", &y2)
                    .vector("v", &v2)
                    .vector("z", &z2),
                &w_dag,
            )
            .unwrap();
        assert!(matches!(run.plan.groups[0].kind, GroupKind::Pattern { .. }));

        // Bit-identical modeled time, DRAM traffic, atomics — and result.
        assert_eq!(dexec.total_sim_ms().to_bits(), ref_ms.to_bits());
        let dag_counters = dexec.counters_total();
        assert_eq!(dag_counters, ref_counters);
        assert_eq!(dag_counters.dram_bytes(), ref_counters.dram_bytes());
        assert_eq!(dag_counters.global_atomics, ref_counters.global_atomics);
        let names: Vec<_> = dexec.launches().iter().map(|l| l.name).collect();
        assert_eq!(names, ref_names);
        assert_eq!(w_dag.to_vec_f64(), w_ref.to_vec_f64());
    }

    #[test]
    fn dag_plans_are_memoized_by_fingerprint() {
        let g = gpu();
        let x = uniform_sparse(500, 64, 0.05, 11);
        let xd = GpuCsr::upload(&g, "X", &x);
        let y = g.upload_f64("y", &random_vector(64, 4));
        let w = g.alloc_f64("w", 64);
        let dag = Dag::equation1(PatternSpec::xtxy());
        let mut dexec = DagExecutor::new(&g);
        let inputs = DagInputs::new().vector("y", &y);
        let r1 = dexec
            .try_run(&dag, &DagMatrix::Sparse(&xd), &inputs, &w)
            .unwrap();
        let r2 = dexec
            .try_run(&dag, &DagMatrix::Sparse(&xd), &inputs, &w)
            .unwrap();
        assert!(!r1.plan_cached && r2.plan_cached);
        assert_eq!(r1.plan, r2.plan);
        // A structurally different DAG misses.
        let dag2 = Dag::equation1(PatternSpec::xtxy_plus_bz(0.5));
        let z = g.upload_f64("z", &random_vector(64, 5));
        let r3 = dexec
            .try_run(
                &dag2,
                &DagMatrix::Sparse(&xd),
                &DagInputs::new().vector("y", &y).vector("z", &z),
                &w,
            )
            .unwrap();
        assert!(!r3.plan_cached);
        // Eq-1 execution also populates the sparse launch-plan cache, so
        // assert the dag share via its dedicated counters.
        let stats = dexec.dag_plan_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!(dexec.plan_stats().misses >= 2);
    }

    #[test]
    fn ew_chain_fusion_is_bit_identical_to_singles() {
        let g = gpu();
        let x = uniform_sparse(300, 40, 0.1, 3);
        let xd = GpuCsr::upload(&g, "X", &x);
        let a = g.upload_f64("a", &random_vector(300, 6));
        let b = g.upload_f64("b", &random_vector(300, 7));
        let c = g.upload_f64("c", &random_vector(300, 8));

        // chain: ((a ⊙ b) * 1.7) + 0.3*c — all rows-dim, no matrix op.
        let mut builder = DagBuilder::new();
        let ia = builder.input("a", Dim::Rows);
        let ib = builder.input("b", Dim::Rows);
        let ic = builder.input("c", Dim::Rows);
        let m = builder.ewmul(ia, ib);
        let s = builder.scale(m, ScalarRef::Lit(1.7));
        let out = builder.axpy(s, ScalarRef::Lit(0.3), ic);
        let dag = builder.finish(out);

        let inputs = DagInputs::new()
            .vector("a", &a)
            .vector("b", &b)
            .vector("c", &c);
        let shape = MatrixShape::of_sparse(&xd);

        let w_fused = g.alloc_f64("w_fused", 300);
        let mut dexec = DagExecutor::new(&g);
        let run = dexec
            .try_run(&dag, &DagMatrix::Sparse(&xd), &inputs, &w_fused)
            .unwrap();
        assert_eq!(run.plan.groups.len(), 1);
        assert!(matches!(run.plan.groups[0].kind, GroupKind::EwChain { .. }));
        let fused_launches = dexec.launch_count();

        let w_ref = g.alloc_f64("w_ref", 300);
        let reference = unfused_plan(g.spec(), &dag, shape).unwrap();
        let mut rexec = DagExecutor::new(&g);
        rexec
            .try_run_with_plan(&reference, &dag, &DagMatrix::Sparse(&xd), &inputs, &w_ref)
            .unwrap();
        assert!(rexec.launch_count() > fused_launches);
        assert_eq!(w_fused.to_vec_f64(), w_ref.to_vec_f64());
    }

    #[test]
    fn dot_nodes_surface_host_scalars() {
        let g = gpu();
        let x = uniform_sparse(200, 50, 0.1, 9);
        let xd = GpuCsr::upload(&g, "X", &x);
        let y = g.upload_f64("y", &random_vector(50, 10));
        let w = g.alloc_f64("w", 200);

        let mut b = DagBuilder::new();
        let iy = b.input("y", Dim::Cols);
        let p = b.mv(iy);
        let d = b.dot(p, p);
        let dag = b.finish(p);
        assert!(matches!(dag.nodes()[d], Op::Dot { .. }));

        let mut dexec = DagExecutor::new(&g);
        let run = dexec
            .try_run(
                &dag,
                &DagMatrix::Sparse(&xd),
                &DagInputs::new().vector("y", &y),
                &w,
            )
            .unwrap();
        let got = run.scalars[&d];
        let p_host = w.to_vec_f64();
        let expect: f64 = p_host.iter().map(|v| v * v).sum();
        assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }
}
