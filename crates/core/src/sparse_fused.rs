//! The sparse fused kernels — Algorithms 1 and 2 of the paper, in the
//! shared-memory (small `n`) configuration.
//!
//! One kernel evaluates the entire pattern: every CSR row is scanned by a
//! *vector* of `VS` cooperating threads; the dot product `X[r,:] x y`
//! reduces in registers (warp shuffles), is scaled by `v[r]`, and the row is
//! immediately re-scanned — now cache-resident (temporal locality) — to
//! scatter partial results of `w` into a shared-memory accumulator
//! (inter-vector aggregation). After a single barrier, each block flushes
//! its accumulator to global `w` with one atomic per column (inter-block
//! aggregation). The `beta * z` term is folded in as an atomic
//! initialization pass, exactly as Algorithm 2 lines 3-4 discuss.

use crate::pattern::PatternSpec;
use crate::tuner::SparsePlan;
use fusedml_blas::GpuCsr;
use fusedml_gpu_sim::{
    BlockCtx, DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, Shared, WarpCtx, WARP_LANES,
};

/// Zero the shared accumulator (Algorithm 1 line 6), block-stride.
pub(crate) fn zero_shared(blk: &mut BlockCtx, sd: Shared, n: usize) {
    let bs = blk.block_dim();
    blk.each_warp(|wc| {
        let mut base = wc.tid(0);
        while base < n {
            wc.shared_store(sd, |lane| (base + lane < n).then_some((base + lane, 0.0)));
            base += bs;
        }
    });
}

/// The `beta * z` initialization (Algorithm 2 lines 3-4): grid-stride
/// atomic adds into global `w`, which CUDA's lack of inter-block barriers
/// forces to be atomic.
pub(crate) fn beta_z_init(blk: &mut BlockCtx, w: &GpuBuffer, z: &GpuBuffer, beta: f64, n: usize) {
    let grid_threads = blk.grid_dim() * blk.block_dim();
    blk.each_warp(|wc| {
        let mut base = wc.gtid(0);
        while base < n {
            let zs = wc.load_f64(z, |lane| (base + lane < n).then_some(base + lane));
            wc.flops((n - base).min(WARP_LANES) as u64);
            wc.atomic_add_f64(w, |lane| {
                (base + lane < n).then(|| (base + lane, beta * zs[lane]))
            });
            base += grid_threads;
        }
    });
}

/// Final inter-block aggregation (Algorithm 1 lines 15-16 / Algorithm 2
/// lines 17-18): `w[i] += alpha * SD[i]`, block-stride, one global atomic
/// per column per block.
pub(crate) fn flush_shared(blk: &mut BlockCtx, sd: Shared, w: &GpuBuffer, alpha: f64, n: usize) {
    let bs = blk.block_dim();
    blk.each_warp(|wc| {
        let mut base = wc.tid(0);
        while base < n {
            let s = wc.shared_load(sd, |lane| (base + lane < n).then_some(base + lane));
            wc.flops((n - base).min(WARP_LANES) as u64);
            wc.atomic_add_f64(w, |lane| {
                (base + lane < n).then(|| (base + lane, alpha * s[lane]))
            });
            base += bs;
        }
    });
}

/// Row processed by `lane` during coarsening step `ci`, per the paper's
/// schedule `row = block_ID x NV + vid`, advancing by `gridSize / VS`.
#[inline]
pub(crate) fn row_for_lane(
    block_id: usize,
    nv: usize,
    total_vectors: usize,
    vs: usize,
    tid: usize,
    ci: usize,
    m: usize,
) -> Option<usize> {
    let vid = tid / vs;
    let row = block_id * nv + vid + ci * total_vectors;
    (row < m).then_some(row)
}

/// One coarsening step of the fused computation for one warp: dot product
/// with `y`, intra-vector shuffle reduction, optional `v[row]` scaling, and
/// the scatter of `X[r,:]^T * p[r]` into the aggregation target.
///
/// `scatter` receives `(warp, col_of_lane, contribution_of_lane)` triples
/// once per strip so both the shared-memory and global-memory variants can
/// reuse the scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fused_row_step<S>(
    wc: &mut WarpCtx,
    x: &GpuCsr,
    y: &GpuBuffer,
    v: Option<&GpuBuffer>,
    vs: usize,
    row_of: &dyn Fn(usize) -> Option<usize>,
    mut scatter: S,
) where
    S: FnMut(&mut WarpCtx, &[Option<usize>; WARP_LANES], &[u32; WARP_LANES], &[f64; WARP_LANES]),
{
    let start = wc.load_u32(&x.row_off, row_of);
    let end = wc.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));

    // ---- pass 1: p[r] = X[r,:] . y, reduced in registers ----
    let mut sum = [0.0f64; WARP_LANES];
    let mut iter = 0usize;
    let mut idx = [None; WARP_LANES];
    loop {
        let mut active = 0u64;
        for lane in 0..WARP_LANES {
            idx[lane] = row_of(lane).and_then(|_| {
                let i = start[lane] as usize + (lane % vs) + iter * vs;
                (i < end[lane] as usize).then_some(i)
            });
            active += idx[lane].is_some() as u64;
        }
        if active == 0 {
            break;
        }
        let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
        let vals = wc.load_f64(&x.values, |l| idx[l]);
        let ys = wc.load_f64_tex(y, |l| idx[l].map(|_| cols[l] as usize));
        for lane in 0..WARP_LANES {
            if idx[lane].is_some() {
                sum[lane] += vals[lane] * ys[lane];
            }
        }
        wc.flops(2 * active);
        iter += 1;
    }
    wc.shuffle_reduce_sum(&mut sum, vs);

    // ---- v[row] scaling (Algorithm 2 line 12) ----
    let p_r = if let Some(v) = v {
        let vr = wc.load_f64_tex(v, row_of);
        let mut p = [0.0f64; WARP_LANES];
        for lane in 0..WARP_LANES {
            p[lane] = sum[lane] * vr[lane];
        }
        wc.flops(WARP_LANES as u64 / vs as u64);
        p
    } else {
        sum
    };

    // ---- pass 2: scatter X[r,:]^T * p[r]; row now cache-resident ----
    let mut iter = 0usize;
    loop {
        let mut active = 0u64;
        for lane in 0..WARP_LANES {
            idx[lane] = row_of(lane).and_then(|_| {
                let i = start[lane] as usize + (lane % vs) + iter * vs;
                (i < end[lane] as usize).then_some(i)
            });
            active += idx[lane].is_some() as u64;
        }
        if active == 0 {
            break;
        }
        let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
        let vals = wc.load_f64(&x.values, |l| idx[l]);
        let mut contrib = [0.0f64; WARP_LANES];
        for lane in 0..WARP_LANES {
            if idx[lane].is_some() {
                contrib[lane] = vals[lane] * p_r[lane];
            }
        }
        wc.flops(2 * active);
        scatter(wc, &idx, &cols, &contrib);
        iter += 1;
    }
}

/// Algorithm 2 (and, with `y` of row dimension, Algorithm 1): the complete
/// fused pattern with shared-memory inter-vector aggregation. Requires
/// `plan.use_shared_w`.
///
/// `w` must be zeroed by the caller (the executor charges a `fill`).
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel signature
pub fn try_fused_pattern_shared(
    gpu: &Gpu,
    plan: &SparsePlan,
    spec: PatternSpec,
    x: &GpuCsr,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert!(plan.use_shared_w, "plan is for the global-memory variant");
    assert_eq!(spec.with_v, v.is_some(), "v presence mismatch");
    assert_eq!(spec.with_z, z.is_some(), "z presence mismatch");
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let (m, n) = (x.rows, x.cols);
    let (vs, c) = (plan.vs, plan.c);
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(plan.regs)
        .with_shared_bytes(plan.shared_bytes);
    let alpha = spec.alpha;
    let beta = spec.beta;

    gpu.try_launch("fused_sparse_shared", cfg, |blk| {
        let sd = blk.shared_f64(n);
        zero_shared(blk, sd, n);
        if let Some(z) = z {
            beta_z_init(blk, w, z, beta, n);
        }
        blk.sync();

        let block_id = blk.block_id();
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for ci in 0..c {
                let row_of = move |lane: usize| {
                    row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                };
                if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                    break;
                }
                fused_row_step(wc, x, y, v, vs, &row_of, |wc, idx, cols, contrib| {
                    wc.shared_atomic_add(sd, |lane| {
                        idx[lane].map(|_| (cols[lane] as usize, contrib[lane]))
                    });
                });
            }
        });

        blk.sync();
        flush_shared(blk, sd, w, alpha, n);
    })
}

/// Infallible [`try_fused_pattern_shared`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn fused_pattern_shared(
    gpu: &Gpu,
    plan: &SparsePlan,
    spec: PatternSpec,
    x: &GpuCsr,
    v: Option<&GpuBuffer>,
    y: &GpuBuffer,
    z: Option<&GpuBuffer>,
    w: &GpuBuffer,
) -> LaunchStats {
    try_fused_pattern_shared(gpu, plan, spec, x, v, y, z, w).unwrap_or_else(|e| panic!("{e}"))
}

/// Algorithm 1: `w += alpha * X^T * p` with shared-memory aggregation.
/// `p` has row dimension (`m`); this is the `alpha * X^T y` instantiation
/// of Table 1 that Fig. 2 measures. `w` must be zeroed by the caller.
pub fn try_fused_xt_p_shared(
    gpu: &Gpu,
    plan: &SparsePlan,
    alpha: f64,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert!(plan.use_shared_w, "plan is for the global-memory variant");
    assert_eq!(p.len(), x.rows, "p length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let (m, n) = (x.rows, x.cols);
    let (vs, c) = (plan.vs, plan.c);
    let nv = plan.vectors_per_block();
    let total_vectors = plan.total_vectors();
    let cfg = LaunchConfig::new(plan.grid, plan.bs)
        .with_regs(32)
        .with_shared_bytes(plan.shared_bytes);

    gpu.try_launch("fused_xt_p_shared", cfg, |blk| {
        let sd = blk.shared_f64(n);
        zero_shared(blk, sd, n);
        blk.sync();

        let block_id = blk.block_id();
        blk.each_warp(|wc| {
            let tid0 = wc.tid(0);
            for ci in 0..c {
                let row_of = move |lane: usize| {
                    row_for_lane(block_id, nv, total_vectors, vs, tid0 + lane, ci, m)
                };
                if (0..WARP_LANES).all(|l| row_of(l).is_none()) {
                    break;
                }
                let start = wc.load_u32(&x.row_off, &row_of);
                let end = wc.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                let pr = wc.load_f64_tex(p, &row_of);

                let mut iter = 0usize;
                let mut idx = [None; WARP_LANES];
                loop {
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        idx[lane] = row_of(lane).and_then(|_| {
                            let i = start[lane] as usize + (lane % vs) + iter * vs;
                            (i < end[lane] as usize).then_some(i)
                        });
                        active += idx[lane].is_some() as u64;
                    }
                    if active == 0 {
                        break;
                    }
                    let cols = wc.load_u32(&x.col_idx, |l| idx[l]);
                    let vals = wc.load_f64(&x.values, |l| idx[l]);
                    wc.flops(2 * active);
                    wc.shared_atomic_add(sd, |lane| {
                        idx[lane].map(|_| (cols[lane] as usize, vals[lane] * pr[lane]))
                    });
                    iter += 1;
                }
            }
        });

        blk.sync();
        flush_shared(blk, sd, w, alpha, n);
    })
}

/// Infallible [`try_fused_xt_p_shared`]; panics on device faults.
#[allow(clippy::too_many_arguments)]
pub fn fused_xt_p_shared(
    gpu: &Gpu,
    plan: &SparsePlan,
    alpha: f64,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> LaunchStats {
    try_fused_xt_p_shared(gpu, plan, alpha, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::plan_sparse;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn fused_xt_p_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(400, 150, 0.06, 51);
        let p = random_vector(400, 1);
        let xd = GpuCsr::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 150);
        let plan = plan_sparse(g.spec(), 400, 150, x.mean_nnz_per_row());
        fused_xt_p_shared(&g, &plan, 2.0, &xd, &pd, &wd);
        let mut expect = reference::csr_tmv(&x, &p);
        reference::scal(2.0, &mut expect);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn fused_full_pattern_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(350, 200, 0.05, 52);
        let y = random_vector(200, 2);
        let v = random_vector(350, 3);
        let z = random_vector(200, 4);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", 200);
        let plan = plan_sparse(g.spec(), 350, 200, x.mean_nnz_per_row());
        let spec = PatternSpec::full(1.25, -0.5);
        fused_pattern_shared(&g, &plan, spec, &xd, Some(&vd), &yd, Some(&zd), &wd);
        let expect = reference::pattern_csr(1.25, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn fused_xtxy_without_v_z() {
        let g = gpu();
        let x = uniform_sparse(300, 128, 0.08, 53);
        let y = random_vector(128, 5);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 128);
        let plan = plan_sparse(g.spec(), 300, 128, x.mean_nnz_per_row());
        fused_pattern_shared(&g, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn second_scan_hits_cache() {
        let g = gpu();
        // Rows short enough to stay resident between the two scans; the
        // matrix is large enough that per-SM replication of y and w is
        // noise against the X traffic.
        let x = uniform_sparse(8000, 512, 0.02, 54);
        let y = random_vector(512, 6);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 512);
        let plan = plan_sparse(g.spec(), 8000, 512, x.mean_nnz_per_row());
        g.flush_caches();
        let stats = fused_pattern_shared(&g, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        // The second scan re-reads values+col_idx; if temporal locality
        // works, DRAM traffic is much closer to one scan than two.
        let one_scan_bytes = (x.nnz() * 12) as u64;
        assert!(
            stats.counters.dram_read_bytes < (one_scan_bytes * 3) / 2,
            "dram {} vs one-scan {}",
            stats.counters.dram_read_bytes,
            one_scan_bytes
        );
        assert!(stats.counters.l2_read_bytes > one_scan_bytes / 2);
    }

    #[test]
    fn global_atomics_bounded_by_blocks_times_columns() {
        let g = gpu();
        let x = uniform_sparse(1000, 100, 0.1, 55);
        let y = random_vector(100, 7);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 100);
        let plan = plan_sparse(g.spec(), 1000, 100, x.mean_nnz_per_row());
        let stats = fused_pattern_shared(&g, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        // Hierarchical aggregation: global atomics only in the final flush
        // (grid * n), never per non-zero.
        assert_eq!(
            stats.counters.global_atomics,
            (plan.grid * 100) as u64,
            "plan {plan:?}"
        );
        assert!(stats.counters.shared_atomics >= x.nnz() as u64);
    }

    #[test]
    #[should_panic(expected = "global-memory variant")]
    fn shared_kernel_rejects_global_plan() {
        let g = gpu();
        let x = uniform_sparse(10, 5, 0.5, 1);
        let xd = GpuCsr::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &random_vector(10, 1));
        let wd = g.alloc_f64("w", 5);
        let mut plan = plan_sparse(g.spec(), 10, 5, 2.0);
        plan.use_shared_w = false;
        fused_xt_p_shared(&g, &plan, 1.0, &xd, &pd, &wd);
    }
}
