//! # fusedml-core
//!
//! The paper's primary contribution: **fused kernels** for the generic ML
//! computation pattern
//!
//! ```text
//! w = alpha * X^T x (v ⊙ (X x y)) + beta * z        (Equation 1)
//! ```
//!
//! with
//! * [`sparse_fused`] — Algorithms 1 & 2 (CSR input, hierarchical
//!   register → shared-memory → global-memory aggregation),
//! * [`sparse_large`] — the large-`n` variant aggregating directly in
//!   global memory (the KDD-2010 regime),
//! * [`dense_fused`] + [`codegen`] — Algorithm 3 with const-generic thread
//!   load, the Rust analog of the paper's unrolling code generator,
//! * [`tuner`] — the §3.3 analytical launch-parameter model (Equations 4-6
//!   plus the occupancy calculator), and
//! * [`executor`] — a one-call API that plans, dispatches and accounts.

// Lane-indexed loops over parallel arrays are the natural idiom for
// warp-level kernel code; iterator zips would obscure the SIMT shape.
#![allow(clippy::needless_range_loop)]
// Hot-path code must report faults through typed errors (or panic with an
// explicit message via the infallible wrappers), never through bare
// unwrap/expect. Tests and benches are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codegen;
pub mod cpu_exec;
pub mod dag;
pub mod dense_fused;
pub mod ell_fused;
pub mod executor;
pub mod fusion;
pub mod pattern;
pub mod plancache;
pub mod sharded;
pub mod sparse_fused;
pub mod sparse_large;
pub mod tuner;

pub use codegen::{generate_cuda_source, launch_dense_fused};
pub use cpu_exec::CpuFusedPattern;
pub use dag::{Dag, DagBuilder, Dim, NodeId, Op, ScalarRef};
pub use ell_fused::{fused_pattern_ell, plan_ell, EllPlan};
pub use executor::FusedExecutor;
pub use fusion::{
    select_plan, unfused_plan, DagExecutor, DagInputs, DagMatrix, DagRun, FusionPlan, GroupKind,
    KernelGroup, MatrixShape, RejectedCandidate,
};
pub use pattern::{PatternInstance, PatternSpec};
pub use plancache::{
    plan_cache_enabled, set_plan_cache_enabled, Invalidation, PlanCache, PlanCacheStats, StreamPlan,
};
pub use sharded::{shard_rows, try_fused_pattern_shard, ShardedExecutor};
pub use tuner::{
    plan_dense, plan_sparse, plan_sparse_with_vs, try_plan_dense, try_plan_sparse,
    try_plan_sparse_with_vs, DensePlan, PlanError, SparsePlan,
};
