//! Host-CPU fused pattern execution.
//!
//! [`CpuFusedPattern`] is the [`PatternSpec`]-level entry point over the
//! real CPU kernels in `fusedml_blas::exec`: runtime-dispatched SIMD
//! (scalar or AVX2) plus the deterministic multithreaded fused CSR kernel.
//! It gives the CPU tier the same "one pass over the matrix" execution
//! shape the fused device kernels have, instead of the two-scan
//! operator-by-operator reference path — which is what makes a fused CPU
//! rung viable inside the runtime's recovery ladder
//! (`fusedml_ml::CpuBackend::with_fused_execution` wires it in).
//!
//! Determinism contract: for a fixed executor, results are bit-identical
//! across thread counts (the fused kernel folds canonical row-block
//! partials in a fixed order — see `fusedml_blas::exec::fused_mt`).

use crate::pattern::PatternSpec;
use fusedml_blas::exec::{
    active_executor, executor_named, fused_pattern_dense, KernelExecutor, MtFused, MtWorkspace,
};
use fusedml_matrix::{CsrMatrix, DenseMatrix};

/// Fused Equation-1 evaluation on the host CPU for a chosen executor and
/// thread count.
#[derive(Clone, Copy)]
pub struct CpuFusedPattern {
    exec: &'static dyn KernelExecutor,
    threads: usize,
}

impl CpuFusedPattern {
    /// Fused evaluator over the runtime-dispatched executor (AVX2 when
    /// the host supports it and `FUSEDML_FORCE_SCALAR` is unset).
    pub fn new(threads: usize) -> Self {
        CpuFusedPattern {
            exec: active_executor(),
            threads: threads.max(1),
        }
    }

    /// Pin a specific executor by report name ("scalar", "avx2");
    /// `None` if this host can't run it.
    pub fn with_executor_name(name: &str, threads: usize) -> Option<Self> {
        Some(CpuFusedPattern {
            exec: executor_named(name)?,
            threads: threads.max(1),
        })
    }

    /// Report name of the executor in use.
    pub fn executor_name(&self) -> &'static str {
        self.exec.name()
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Preallocate the per-block accumulators for repeated sparse
    /// evaluations over matrices with `cols` columns.
    pub fn workspace(&self, cols: usize) -> MtWorkspace {
        MtWorkspace::new(cols, self.mt().blocks())
    }

    fn mt(&self) -> MtFused<'static> {
        MtFused::new(self.exec, self.threads)
    }

    /// Fused `w = alpha * X^T (v ⊙ (X y)) + beta * z` on CSR input, one
    /// pass over the matrix. `v`/`z` presence must match the spec.
    pub fn pattern_csr(
        &self,
        spec: PatternSpec,
        x: &CsrMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        z: Option<&[f64]>,
        w: &mut [f64],
    ) {
        assert_eq!(spec.with_v, v.is_some(), "spec/v operand mismatch");
        assert_eq!(spec.with_z, z.is_some(), "spec/z operand mismatch");
        self.mt().pattern_csr(spec.alpha, x, v, y, spec.beta, z, w);
    }

    /// Allocation-free [`Self::pattern_csr`] with a caller-held
    /// [`MtWorkspace`] (see [`Self::workspace`]).
    // Equation 1's operands plus the workspace, in equation order.
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_csr_with(
        &self,
        ws: &mut MtWorkspace,
        spec: PatternSpec,
        x: &CsrMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        z: Option<&[f64]>,
        w: &mut [f64],
    ) {
        assert_eq!(spec.with_v, v.is_some(), "spec/v operand mismatch");
        assert_eq!(spec.with_z, z.is_some(), "spec/z operand mismatch");
        self.mt()
            .pattern_csr_with(ws, spec.alpha, x, v, y, spec.beta, z, w);
    }

    /// Fused pattern on dense row-major input: single-threaded one-pass
    /// (dot + axpy per row) through the executor's SIMD primitives.
    pub fn pattern_dense(
        &self,
        spec: PatternSpec,
        x: &DenseMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        z: Option<&[f64]>,
        w: &mut [f64],
    ) {
        assert_eq!(spec.with_v, v.is_some(), "spec/v operand mismatch");
        assert_eq!(spec.with_z, z.is_some(), "spec/z operand mismatch");
        fused_pattern_dense(self.exec, spec.alpha, x, v, y, spec.beta, z, w);
    }
}

impl std::fmt::Debug for CpuFusedPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuFusedPattern")
            .field("executor", &self.exec.name())
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    #[test]
    fn spec_entry_matches_reference_for_all_instantiations() {
        let x = uniform_sparse(70, 45, 0.15, 100);
        let y = random_vector(45, 101);
        let v = random_vector(70, 102);
        let z = random_vector(45, 103);
        let cpu = CpuFusedPattern::with_executor_name("scalar", 2).expect("scalar always exists");

        for (spec, vv, zz) in [
            (PatternSpec::xtxy(), None, None),
            (PatternSpec::xtvxy(), Some(&v), None),
            (PatternSpec::xtxy_plus_bz(-0.5), None, Some(&z)),
            (PatternSpec::full(1.5, 0.25), Some(&v), Some(&z)),
        ] {
            let mut w = vec![0.0; 45];
            cpu.pattern_csr(
                spec,
                &x,
                vv.map(|v| v.as_slice()),
                &y,
                zz.map(|z| z.as_slice()),
                &mut w,
            );
            let expect = reference::pattern_csr(
                spec.alpha,
                &x,
                vv.map(|v| v.as_slice()),
                &y,
                spec.beta,
                zz.map(|z| z.as_slice()),
            );
            assert!(
                reference::rel_l2_error(&w, &expect) < 1e-13,
                "{:?}",
                spec.instance()
            );

            let mut wd = vec![0.0; 45];
            cpu.pattern_dense(
                spec,
                &x.to_dense(),
                vv.map(|v| v.as_slice()),
                &y,
                zz.map(|z| z.as_slice()),
                &mut wd,
            );
            assert!(reference::rel_l2_error(&wd, &expect) < 1e-12);
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let x = uniform_sparse(90, 50, 0.1, 110);
        let y = random_vector(50, 111);
        let spec = PatternSpec::xtxy();
        let mut base = vec![0.0; 50];
        CpuFusedPattern::with_executor_name("scalar", 1)
            .expect("scalar always exists")
            .pattern_csr(spec, &x, None, &y, None, &mut base);
        for threads in [2, 4] {
            let mut w = vec![0.0; 50];
            CpuFusedPattern::with_executor_name("scalar", threads)
                .expect("scalar always exists")
                .pattern_csr(spec, &x, None, &y, None, &mut w);
            assert!(w.iter().zip(&base).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn unknown_executor_name_is_none() {
        assert!(CpuFusedPattern::with_executor_name("sse9", 1).is_none());
        assert!(CpuFusedPattern::new(1).threads() == 1);
    }
}
