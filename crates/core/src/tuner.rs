//! The analytical launch-parameter model of §3.3.
//!
//! Given matrix statistics and the device's resource limits, choose:
//! * sparse kernels — vector size `VS` (Equation 4), block size `BS`
//!   (occupancy-maximizing over `{32, 64, ..., 1024}`), and coarsening
//!   factor `C` (Equation 5, one "wave" of resident vectors covering all
//!   rows);
//! * dense kernels — thread load `TL` (register-count-aware, excluding
//!   wasted warps), block size `BS` (minimum granule, 128, to bound
//!   inter-vector synchronization) and `VS` (Equation 6), with the paper's
//!   `n <= 32` special case (`BS = 1024`, `TL = 1`).

use fusedml_blas::vector_size_for_mean_nnz;
use fusedml_gpu_sim::{occupancy, DeviceError, DeviceSpec, Occupancy, LATENCY_HIDING_KNEE};
use serde::{Deserialize, Serialize};

/// Why the launch-parameter model could not produce a plan. Planning is
/// pure arithmetic over the device limits, so these are deterministic:
/// retrying cannot help, but degrading to the baseline engine (whose
/// kernels have smaller footprints) or to the CPU can — hence the
/// conversion into [`DeviceError`] (a permanent, non-transient fault) for
/// propagation through the executor and the recovery ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The matrix has a zero dimension; there is nothing to plan for.
    EmptyMatrix { m: usize, n: usize },
    /// No launch configuration satisfies the device's resource limits
    /// (registers, shared memory, block size) for this problem shape.
    NoFeasibleConfig {
        /// Which planner failed (`"sparse"` or `"dense"`).
        kernel: &'static str,
        device: String,
        m: usize,
        n: usize,
        detail: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyMatrix { m, n } => {
                write!(f, "cannot plan a fused kernel for an empty {m}x{n} matrix")
            }
            PlanError::NoFeasibleConfig {
                kernel,
                device,
                m,
                n,
                detail,
            } => write!(
                f,
                "no feasible {kernel} launch plan for {m}x{n} on {device}: {detail}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for DeviceError {
    fn from(e: PlanError) -> Self {
        let kernel = match &e {
            PlanError::EmptyMatrix { .. } => "tuner",
            PlanError::NoFeasibleConfig { kernel, .. } => kernel,
        };
        DeviceError::InvalidLaunch {
            kernel: kernel.to_string(),
            detail: e.to_string(),
        }
    }
}

/// Register footprint of the sparse fused kernel, as measured by the paper
/// with the NVIDIA Visual Profiler (§3.3: "Our kernel requires 43 registers
/// per thread").
pub const SPARSE_KERNEL_REGS: u32 = 43;

/// Register footprint of the dense fused kernel as a function of the
/// thread load: 23 registers at `TL = 1` growing to 255 at `TL = 40`
/// (§3.3); beyond 40 the kernel would spill.
pub fn dense_kernel_regs(tl: usize) -> u32 {
    assert!(
        (1..=MAX_TL).contains(&tl),
        "TL must be in [1, 40], got {tl}"
    );
    23 + ((tl as u32 - 1) * 232).div_ceil(39)
}

/// Largest thread load before register spilling (§3.3).
pub const MAX_TL: usize = 40;

/// Launch plan for the sparse fused kernels (Algorithms 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsePlan {
    /// Cooperating threads per row (Equation 4).
    pub vs: usize,
    /// Threads per block.
    pub bs: usize,
    /// Thread blocks in the grid (one resident wave).
    pub grid: usize,
    /// Rows per vector (Equation 5).
    pub c: usize,
    /// Declared register footprint.
    pub regs: u32,
    /// Declared shared memory per block: `(BS/VS + n) * 8` for the
    /// shared-memory variant, `(BS/VS) * 8` for the large-n variant.
    pub shared_bytes: usize,
    /// Whether inter-vector aggregation runs in shared memory (small `n`)
    /// or directly in global memory (large `n`, §3.1's extension).
    pub use_shared_w: bool,
    /// Occupancy achieved by this plan.
    pub occupancy: Occupancy,
}

impl SparsePlan {
    /// Vectors per block (`NV`).
    pub fn vectors_per_block(&self) -> usize {
        self.bs / self.vs
    }

    /// Total vectors resident in the grid.
    pub fn total_vectors(&self) -> usize {
        self.grid * self.bs / self.vs
    }
}

/// Can the inter-vector aggregation for `n` output columns run in shared
/// memory on this device with block size `bs` and vector size `vs`?
pub fn fits_in_shared(spec: &DeviceSpec, n: usize, bs: usize, vs: usize) -> bool {
    (bs / vs + n) * 8 <= spec.shared_mem_per_block
}

/// Build the launch plan for a sparse fused kernel over an `m x n` matrix
/// with mean row length `mu`.
///
/// # Panics
/// Panics when no feasible configuration exists on this device; use
/// [`try_plan_sparse`] on paths that must degrade instead of aborting.
pub fn plan_sparse(spec: &DeviceSpec, m: usize, n: usize, mu: f64) -> SparsePlan {
    try_plan_sparse(spec, m, n, mu).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`plan_sparse`].
pub fn try_plan_sparse(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    mu: f64,
) -> Result<SparsePlan, PlanError> {
    let vs = vector_size_for_mean_nnz(mu);
    try_plan_sparse_with_vs(spec, m, n, vs)
}

/// Like [`plan_sparse`] but with a caller-chosen `VS` (used by the Fig. 6
/// parameter sweep to hold `VS` fixed while exploring `BS x C`).
///
/// # Panics
/// Panics when no feasible configuration exists; see
/// [`try_plan_sparse_with_vs`].
pub fn plan_sparse_with_vs(spec: &DeviceSpec, m: usize, n: usize, vs: usize) -> SparsePlan {
    try_plan_sparse_with_vs(spec, m, n, vs).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`plan_sparse_with_vs`]: reports an empty matrix or a device
/// whose resource limits admit no block size (e.g. small non-Titan parts
/// where even `BS = 32` with the kernel's 43 registers and the shared
/// aggregation buffer is over budget) instead of panicking.
pub fn try_plan_sparse_with_vs(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    vs: usize,
) -> Result<SparsePlan, PlanError> {
    if m == 0 || n == 0 {
        return Err(PlanError::EmptyMatrix { m, n });
    }
    // Decide the aggregation strategy at the smallest feasible block size;
    // if even BS=32 cannot host w in shared memory, fall back to global.
    let use_shared_w = fits_in_shared(spec, n, 32, vs);

    // BS sweep over {32, 64, ..., 1024}: maximize resident warps up to the
    // latency-hiding knee (beyond it extra occupancy buys nothing for a
    // memory-bound kernel), then prefer the largest block size — fewer
    // resident blocks means fewer inter-block aggregations (§3.1: "we
    // increase the degree of coarsening C and the block size to their
    // maximum possible values, while achieving the maximum possible
    // occupancy").
    let knee_warps = (spec.max_warps_per_sm() as f64 * LATENCY_HIDING_KNEE).ceil() as usize;
    let eff_warps = |o: &Occupancy| o.warps_per_sm.min(knee_warps);
    let mut best: Option<(usize, Occupancy)> = None;
    for bs_mult in 1..=32 {
        let bs = 32 * bs_mult;
        if bs > spec.max_threads_per_block || bs % vs != 0 {
            continue;
        }
        let shared = shared_bytes_for(n, bs, vs, use_shared_w);
        if let Some(occ) = occupancy(spec, bs, SPARSE_KERNEL_REGS, shared) {
            let better = match &best {
                None => true,
                Some((_, b)) => eff_warps(&occ) >= eff_warps(b),
            };
            if better {
                best = Some((bs, occ));
            }
        }
    }
    let Some((bs, occ)) = best else {
        return Err(PlanError::NoFeasibleConfig {
            kernel: "sparse",
            device: spec.name.clone(),
            m,
            n,
            detail: format!(
                "no block size in {{32..{}}} fits {SPARSE_KERNEL_REGS} regs/thread \
                 and the aggregation buffer (vs={vs}, shared limit {}B)",
                spec.max_threads_per_block, spec.shared_mem_per_block
            ),
        });
    };

    let shared_bytes = shared_bytes_for(n, bs, vs, use_shared_w);

    // One resident wave of blocks; Equation 5 sets C so that wave covers m.
    let grid = (occ.blocks_per_sm * spec.num_sms).max(1);
    let total_vectors = grid * bs / vs;
    let c = m.div_ceil(total_vectors).max(1);

    Ok(SparsePlan {
        vs,
        bs,
        grid,
        c,
        regs: SPARSE_KERNEL_REGS,
        shared_bytes,
        use_shared_w,
        occupancy: occ,
    })
}

/// Build a fully explicit sparse plan (the Fig. 6 sweep explores the
/// `BS x C` space by hand). Returns `None` when the configuration cannot
/// launch (occupancy zero or shared memory over the limit).
pub fn manual_sparse_plan(
    spec: &DeviceSpec,
    m: usize,
    n: usize,
    vs: usize,
    bs: usize,
    c: usize,
) -> Option<SparsePlan> {
    if bs % vs != 0 || bs > spec.max_threads_per_block || c == 0 {
        return None;
    }
    let use_shared_w = fits_in_shared(spec, n, bs, vs);
    if !use_shared_w {
        return None; // the sweep targets the shared-memory kernel
    }
    let shared_bytes = shared_bytes_for(n, bs, vs, true);
    let occ = occupancy(spec, bs, SPARSE_KERNEL_REGS, shared_bytes)?;
    let nv = bs / vs;
    // Grid sized so one pass of C rows per vector covers the matrix.
    let grid = m.div_ceil(c * nv).max(1);
    Some(SparsePlan {
        vs,
        bs,
        grid,
        c,
        regs: SPARSE_KERNEL_REGS,
        shared_bytes,
        use_shared_w: true,
        occupancy: occ,
    })
}

fn shared_bytes_for(n: usize, bs: usize, vs: usize, use_shared_w: bool) -> usize {
    if use_shared_w {
        (bs / vs + n) * 8
    } else {
        (bs / vs) * 8
    }
}

/// Launch plan for the dense fused kernel (Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensePlan {
    /// Threads per vector (Equation 6); `vs == bs` for wide rows.
    pub vs: usize,
    /// Threads per block.
    pub bs: usize,
    /// Elements of a row handled by each thread (the unroll factor the
    /// code generator bakes in).
    pub tl: usize,
    /// Thread blocks in the grid.
    pub grid: usize,
    /// Rows per vector.
    pub c: usize,
    pub regs: u32,
    pub occupancy: Occupancy,
}

impl DensePlan {
    pub fn vectors_per_block(&self) -> usize {
        self.bs / self.vs
    }

    pub fn total_vectors(&self) -> usize {
        self.grid * self.bs / self.vs
    }
}

/// Build the launch plan for the dense fused kernel over an `m x n` matrix.
/// `n` must already be padded to a multiple of the eventual `VS` by the
/// caller-facing executor (§3.2's zero-padding step); the plan reports the
/// `VS` to pad to via [`DensePlan::vs`].
pub fn plan_dense(spec: &DeviceSpec, m: usize, n: usize) -> DensePlan {
    try_plan_dense(spec, m, n).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`plan_dense`]: reports an empty matrix, a device that cannot
/// host the `n <= 32` special case's maximum block, or a row too wide for
/// any thread load (`n > 40 * 128` exceeds the spill-free unroll range)
/// instead of panicking.
pub fn try_plan_dense(spec: &DeviceSpec, m: usize, n: usize) -> Result<DensePlan, PlanError> {
    if m == 0 || n == 0 {
        return Err(PlanError::EmptyMatrix { m, n });
    }

    // Special case (§3.3): n <= warp size — use the largest block and one
    // element per thread; sync overhead is nil and big blocks hide latency.
    if n <= spec.warp_size {
        let bs = spec.max_threads_per_block;
        let tl = 1;
        let vs = spec.warp_size;
        let regs = dense_kernel_regs(tl);
        let occ = occupancy(spec, bs, regs, 0).ok_or_else(|| PlanError::NoFeasibleConfig {
            kernel: "dense",
            device: spec.name.clone(),
            m,
            n,
            detail: format!(
                "maximum block BS={bs} with TL=1 ({regs} regs/thread) \
                 exceeds this device's per-SM register file"
            ),
        })?;
        let grid = (occ.blocks_per_sm * spec.num_sms).max(1);
        let total_vectors = grid * bs / vs;
        return Ok(DensePlan {
            vs,
            bs,
            tl,
            grid,
            c: m.div_ceil(total_vectors).max(1),
            regs,
            occupancy: occ,
        });
    }

    // BS = 128: the minimum register-allocation-friendly size, minimizing
    // inter-vector synchronization (§3.3).
    let bs = 128;

    // TL sweep: maximize resident warps, discounting warps wasted by the
    // vector covering more element slots than n (§3.3's refinement).
    let mut best: Option<(usize, usize, f64, Occupancy)> = None; // (tl, vs, eff, occ)
    for tl in 1..=MAX_TL {
        let vs = eq6_vector_size(n, tl, bs);
        let slots = vs * tl;
        if slots < n {
            continue; // vector cannot cover a row
        }
        let regs = dense_kernel_regs(tl);
        let Some(occ) = occupancy(spec, bs, regs, 16) else {
            continue;
        };
        let wasted_warps = (slots - n) / spec.warp_size;
        let warps_per_vector = vs.div_ceil(spec.warp_size);
        let waste_frac = wasted_warps as f64 / warps_per_vector.max(1) as f64;
        // Vectors spanning multiple warps pay two intra-block barriers per
        // row (Algorithm 3 lines 19/22); §3.3 minimizes inter-vector
        // synchronization, modelled as a 2x effective-throughput penalty.
        let sync_penalty = if vs > spec.warp_size { 0.5 } else { 1.0 };
        let eff = occ.warps_per_sm as f64 * (1.0 - waste_frac.min(0.9)) * sync_penalty;
        let better = match &best {
            None => true,
            Some((btl, _, beff, _)) => eff > *beff + 1e-9 || (eff > *beff - 1e-9 && tl < *btl),
        };
        if better {
            best = Some((tl, vs, eff, occ));
        }
    }
    let Some((tl, vs, _, occ)) = best else {
        // Two distinct causes: rows wider than the largest spill-free
        // unroll can cover, or a device whose register file rejects every
        // thread load. Both are permanent for this (device, shape) pair.
        let detail = if n > MAX_TL * bs {
            format!(
                "row width n={n} exceeds the TL<=40 coverage limit of {}",
                MAX_TL * bs
            )
        } else {
            format!(
                "no TL in [1,{MAX_TL}] fits this device's register file \
                 (23..=255 regs/thread at BS={bs})"
            )
        };
        return Err(PlanError::NoFeasibleConfig {
            kernel: "dense",
            device: spec.name.clone(),
            m,
            n,
            detail,
        });
    };

    let grid = (occ.blocks_per_sm * spec.num_sms).max(1);
    let total_vectors = grid * bs / vs;
    Ok(DensePlan {
        vs,
        bs,
        tl,
        grid,
        c: m.div_ceil(total_vectors).max(1),
        regs: dense_kernel_regs(tl),
        occupancy: occ,
    })
}

/// Equation 6: the vector size for a dense kernel given `n` and `TL`.
pub fn eq6_vector_size(n: usize, tl: usize, bs: usize) -> usize {
    let per = n.div_ceil(tl);
    if per > 32 {
        bs
    } else {
        per.next_power_of_two().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceSpec {
        DeviceSpec::gtx_titan()
    }

    #[test]
    fn dense_regs_match_paper_endpoints() {
        assert_eq!(dense_kernel_regs(1), 23);
        assert_eq!(dense_kernel_regs(40), 255);
        assert!(dense_kernel_regs(20) > dense_kernel_regs(10));
    }

    #[test]
    #[should_panic(expected = "TL must be in")]
    fn dense_regs_reject_oversized_tl() {
        dense_kernel_regs(41);
    }

    #[test]
    fn sparse_plan_for_paper_configuration() {
        // §4.3: 500k x 1k sparse, sparsity 0.01 => mu = 10 => VS = 8;
        // the paper's model picks BS = 640 and C = 223 with 28 blocks.
        let p = plan_sparse(&titan(), 500_000, 1000, 10.0);
        assert_eq!(p.vs, 8);
        assert!(p.use_shared_w);
        assert!(p.bs >= 512, "block size {} unexpectedly small", p.bs);
        assert!(
            p.occupancy.occupancy >= 0.5,
            "occupancy {}",
            p.occupancy.occupancy
        );
        // One wave covers m in C steps.
        assert!(p.total_vectors() * p.c >= 500_000);
        // C in the neighbourhood of the paper's 223.
        assert!((100..=500).contains(&p.c), "C = {}", p.c);
    }

    #[test]
    fn sparse_plan_switches_to_global_for_large_n() {
        let p = plan_sparse(&titan(), 100_000, 1_000_000, 30.0);
        assert!(!p.use_shared_w);
        // Occupancy at or beyond the latency-hiding knee (the tuner stops
        // trading block size for warps past that point).
        assert!(p.occupancy.occupancy >= 0.5);
    }

    #[test]
    fn sparse_shared_limit_boundary() {
        let spec = titan();
        // 48KB / 8 = 6144 doubles; minus BS/VS slots — the paper's "close
        // to 6K" limit.
        assert!(fits_in_shared(&spec, 6000, 32, 8));
        assert!(!fits_in_shared(&spec, 6200, 32, 8));
    }

    #[test]
    fn dense_plan_higgs_special_case() {
        // HIGGS has n = 28 <= 32: BS = 1024, TL = 1 (§3.3).
        let p = plan_dense(&titan(), 1_000_000, 28);
        assert_eq!(p.bs, 1024);
        assert_eq!(p.tl, 1);
        assert_eq!(p.vs, 32);
    }

    #[test]
    fn dense_plan_covers_row() {
        for n in [64usize, 200, 512, 1000, 2048] {
            let p = plan_dense(&titan(), 10_000, n);
            assert!(
                p.vs * p.tl >= n,
                "n={n}: vs={} tl={} does not cover the row",
                p.vs,
                p.tl
            );
            assert!(p.tl <= MAX_TL);
            assert!(p.total_vectors() * p.c >= 10_000);
        }
    }

    #[test]
    fn eq6_cases() {
        assert_eq!(eq6_vector_size(200, 7, 128), 32); // paper's example
        assert_eq!(eq6_vector_size(200, 2, 128), 128); // 100 > 32 => BS
        assert_eq!(eq6_vector_size(16, 1, 128), 16);
        assert_eq!(eq6_vector_size(1, 1, 128), 1);
    }

    /// A device whose register file cannot host even one warp of the
    /// sparse kernel (43 regs/thread * 32 threads = 1376 > 1024).
    fn register_starved() -> DeviceSpec {
        DeviceSpec {
            name: "register-starved test device".to_string(),
            registers_per_sm: 1024,
            ..DeviceSpec::gtx_titan()
        }
    }

    #[test]
    fn sparse_plan_rejects_empty_matrix_with_typed_error() {
        let e = try_plan_sparse(&titan(), 0, 100, 5.0).unwrap_err();
        assert_eq!(e, PlanError::EmptyMatrix { m: 0, n: 100 });
        let e = try_plan_sparse(&titan(), 100, 0, 5.0).unwrap_err();
        assert_eq!(e, PlanError::EmptyMatrix { m: 100, n: 0 });
    }

    #[test]
    fn sparse_plan_reports_infeasible_device_instead_of_panicking() {
        // Regression: this used to panic "no feasible block size" deep in
        // the tuner; now it is a typed, permanent error the recovery
        // ladder can degrade on.
        let e = try_plan_sparse(&register_starved(), 10_000, 500, 8.0).unwrap_err();
        match &e {
            PlanError::NoFeasibleConfig { kernel, device, .. } => {
                assert_eq!(*kernel, "sparse");
                assert!(device.contains("register-starved"));
            }
            other => panic!("expected NoFeasibleConfig, got {other:?}"),
        }
        let de = fusedml_gpu_sim::DeviceError::from(e);
        assert!(!de.is_transient(), "planning failures are permanent");
    }

    #[test]
    fn dense_plan_reports_infeasible_device_instead_of_panicking() {
        // Regression: the n <= 32 special case unwrapped occupancy() on the
        // assumption every device hosts BS=1024 at 23 regs/thread.
        let e = try_plan_dense(&register_starved(), 10_000, 28).unwrap_err();
        assert!(matches!(
            e,
            PlanError::NoFeasibleConfig {
                kernel: "dense",
                ..
            }
        ));
    }

    #[test]
    fn dense_plan_reports_uncoverable_row_width() {
        // Latent bug: even on the Titan, n > 40*128 = 5120 has no covering
        // thread load; this used to hit the "some TL always covers" panic.
        let e = try_plan_dense(&titan(), 1000, MAX_TL * 128 + 1).unwrap_err();
        match e {
            PlanError::NoFeasibleConfig { kernel, detail, .. } => {
                assert_eq!(kernel, "dense");
                assert!(detail.contains("coverage limit"), "detail: {detail}");
            }
            other => panic!("expected NoFeasibleConfig, got {other:?}"),
        }
    }

    #[test]
    fn try_planners_agree_with_infallible_wrappers() {
        let p = try_plan_sparse(&titan(), 50_000, 1000, 10.0).unwrap();
        assert_eq!(p, plan_sparse(&titan(), 50_000, 1000, 10.0));
        let d = try_plan_dense(&titan(), 10_000, 200).unwrap();
        assert_eq!(d, plan_dense(&titan(), 10_000, 200));
    }

    #[test]
    fn paper_wasted_warp_example() {
        // BS=128, TL=2, n=200: vector = block, 2*128 - 200 = 56 slots -> 1
        // wasted warp. With TL=7, VS=32: 224 - 200 = 24 -> 0 wasted warps.
        let spec = titan();
        let p = plan_dense(&spec, 100_000, 200);
        let wasted = (p.vs * p.tl - 200) / spec.warp_size;
        assert_eq!(wasted, 0, "plan {p:?} wastes a warp");
    }
}
