//! One-call API for evaluating the generic pattern with fused kernels:
//! plans launch parameters from matrix statistics (§3.3), picks the
//! shared-memory or global-memory aggregation variant by the column count,
//! and dispatches to the monomorphized dense kernel ("code generation").

use crate::codegen::try_launch_dense_fused;
use crate::pattern::PatternSpec;
use crate::plancache::{Invalidation, PlanCache, PlanCacheStats};
use crate::sparse_fused::{try_fused_pattern_shared, try_fused_xt_p_shared};
use crate::sparse_large::{try_fused_pattern_global, try_fused_xt_p_global};
use crate::tuner::{try_plan_dense, try_plan_sparse, DensePlan, SparsePlan};
use fusedml_blas::level1::try_fill;
use fusedml_blas::{vector_size_for_mean_nnz, GpuCsr, GpuDense};
use fusedml_gpu_sim::{Counters, DeviceError, Gpu, GpuBuffer, LaunchStats};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Fused-kernel execution engine; the counterpart of
/// [`fusedml_blas::BaselineEngine`] with identical accounting so
/// experiments can compare simulated time and events one-to-one.
///
/// ```
/// use fusedml_core::{FusedExecutor, PatternSpec};
/// use fusedml_blas::GpuCsr;
/// use fusedml_gpu_sim::{DeviceSpec, Gpu};
/// use fusedml_matrix::gen::{random_vector, uniform_sparse};
///
/// let gpu = Gpu::new(DeviceSpec::gtx_titan());
/// let x = uniform_sparse(1000, 128, 0.05, 1);
/// let xd = GpuCsr::upload(&gpu, "X", &x);
/// let y = gpu.upload_f64("y", &random_vector(128, 2));
/// let w = gpu.alloc_f64("w", 128);
///
/// let mut exec = FusedExecutor::new(&gpu);
/// exec.pattern_sparse(PatternSpec::xtxy(), &xd, None, &y, None, &w);
/// assert_eq!(exec.launch_count(), 2); // fill + ONE fused kernel
/// assert!(exec.total_sim_ms() > 0.0);
/// ```
pub struct FusedExecutor<'g> {
    gpu: &'g Gpu,
    /// Every launch performed since the last [`FusedExecutor::reset`].
    pub launches: Vec<LaunchStats>,
    /// Memoized tuner results (see [`crate::plancache`]); interior
    /// mutability because planning is conceptually a read-only query.
    plan_cache: RefCell<PlanCache>,
    /// Per-executor caching switch, seeded from the process-wide default
    /// ([`crate::plancache::plan_cache_enabled`]).
    plan_cache_on: Cell<bool>,
}

impl<'g> FusedExecutor<'g> {
    pub fn new(gpu: &'g Gpu) -> Self {
        FusedExecutor {
            gpu,
            launches: Vec::new(),
            plan_cache: RefCell::new(PlanCache::new()),
            plan_cache_on: Cell::new(crate::plancache::plan_cache_enabled()),
        }
    }

    pub fn gpu(&self) -> &'g Gpu {
        self.gpu
    }

    /// Total simulated milliseconds since the last reset.
    pub fn total_sim_ms(&self) -> f64 {
        self.launches.iter().map(|l| l.sim_ms()).sum()
    }

    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Hardware event counters merged across every launch since the last
    /// reset — the per-phase export benchmark rows aggregate to attribute
    /// speedup changes to a reduction tier.
    pub fn counters_total(&self) -> Counters {
        let mut total = Counters::new();
        for l in &self.launches {
            total.merge(&l.counters);
        }
        total
    }

    /// Counters grouped by kernel name (the "phases" of one fused
    /// evaluation: zero-fill vs. the fused kernel itself). Kernel names
    /// are interned static strings, so grouping allocates no per-launch
    /// `String`s.
    pub fn counters_by_kernel(&self) -> BTreeMap<&'static str, Counters> {
        let mut phases: BTreeMap<&'static str, Counters> = BTreeMap::new();
        for l in &self.launches {
            phases.entry(l.name).or_default().merge(&l.counters);
        }
        phases
    }

    pub fn reset(&mut self) {
        self.launches.clear();
    }

    /// Enable or disable plan memoization on this executor (does not drop
    /// already-cached plans; see [`FusedExecutor::invalidate_plan_cache`]).
    pub fn set_plan_cache(&self, enabled: bool) {
        self.plan_cache_on.set(enabled);
    }

    /// Whether this executor memoizes plans.
    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache_on.get()
    }

    /// The shared plan cache, so sibling executors layered on top of this
    /// one (the DAG executor) memoize into the same store.
    pub(crate) fn plan_cache_ref(&self) -> &RefCell<PlanCache> {
        &self.plan_cache
    }

    /// Cumulative plan-cache traffic (sparse + dense), independent of
    /// [`FusedExecutor::reset`].
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plan_cache.borrow().stats()
    }

    /// Drop every memoized plan, recording the typed reason.
    pub fn invalidate_plan_cache(&self, reason: Invalidation) {
        self.plan_cache.borrow_mut().invalidate(reason);
    }

    /// Zero the plan-cache counters (cached plans stay valid).
    pub fn reset_plan_stats(&self) {
        self.plan_cache.borrow_mut().reset_stats();
    }

    /// The launch plan the tuner would pick for this sparse matrix, or a
    /// typed (permanent) [`DeviceError`] when the device's resource limits
    /// admit no configuration — the recovery ladder degrades instead of
    /// aborting.
    ///
    /// Memoized: repeated calls for the same device/shape/VS-bucket return
    /// the cached plan without re-running the BS×C tuner sweep, so an
    /// iterative solver plans once per solve instead of once per
    /// iteration. Planning errors are never cached.
    pub fn try_sparse_plan(&self, x: &GpuCsr) -> Result<SparsePlan, DeviceError> {
        let spec = self.gpu.spec();
        let mu = x.mean_nnz_per_row();
        let (plan, cached) = self
            .plan_cache
            .borrow_mut()
            .sparse_plan(
                self.plan_cache_on.get(),
                spec,
                x.rows,
                x.cols,
                vector_size_for_mean_nnz(mu),
                || try_plan_sparse(spec, x.rows, x.cols, mu),
            )
            .map_err(DeviceError::from)?;
        if cached {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "plan",
                    "plan.cache_hit",
                    "host",
                    &[
                        ("kind", "sparse".into()),
                        ("rows", x.rows.into()),
                        ("cols", x.cols.into()),
                        ("vs", plan.vs.into()),
                    ],
                );
            }
            return Ok(plan);
        }
        if fusedml_trace::is_enabled() {
            let why = if plan.use_shared_w {
                format!(
                    "w ({} cols) fits the shared-memory aggregation buffer; \
                     VS={} from mean nnz/row {:.1}",
                    x.cols,
                    plan.vs,
                    x.mean_nnz_per_row()
                )
            } else {
                format!(
                    "w ({} cols) exceeds shared memory; aggregating in global memory",
                    x.cols
                )
            };
            fusedml_trace::instant(
                "plan",
                "plan.sparse",
                "host",
                &[
                    ("vs", plan.vs.into()),
                    ("bs", plan.bs.into()),
                    ("grid", plan.grid.into()),
                    ("c", plan.c.into()),
                    ("use_shared_w", plan.use_shared_w.into()),
                    ("occupancy", plan.occupancy.occupancy.into()),
                    ("why", why.as_str().into()),
                ],
            );
        }
        Ok(plan)
    }

    /// Infallible [`FusedExecutor::try_sparse_plan`].
    pub fn sparse_plan(&self, x: &GpuCsr) -> SparsePlan {
        self.try_sparse_plan(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The launch plan the tuner would pick for this dense matrix, or a
    /// typed (permanent) [`DeviceError`]. Memoized like
    /// [`FusedExecutor::try_sparse_plan`], keyed by device and shape.
    pub fn try_dense_plan(&self, x: &GpuDense) -> Result<DensePlan, DeviceError> {
        let spec = self.gpu.spec();
        let (plan, cached) = self
            .plan_cache
            .borrow_mut()
            .dense_plan(self.plan_cache_on.get(), spec, x.rows, x.cols, || {
                try_plan_dense(spec, x.rows, x.cols)
            })
            .map_err(DeviceError::from)?;
        if cached {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "plan",
                    "plan.cache_hit",
                    "host",
                    &[
                        ("kind", "dense".into()),
                        ("rows", x.rows.into()),
                        ("cols", x.cols.into()),
                        ("tl", plan.tl.into()),
                    ],
                );
            }
            return Ok(plan);
        }
        if fusedml_trace::is_enabled() {
            let why = if x.cols <= self.gpu.spec().warp_size {
                format!(
                    "n={} <= warp size: maximum block, TL=1 (no sync overhead)",
                    x.cols
                )
            } else {
                format!(
                    "TL={} maximizes resident warps net of wasted-warp and \
                     inter-vector sync penalties",
                    plan.tl
                )
            };
            fusedml_trace::instant(
                "plan",
                "plan.dense",
                "host",
                &[
                    ("vs", plan.vs.into()),
                    ("bs", plan.bs.into()),
                    ("tl", plan.tl.into()),
                    ("grid", plan.grid.into()),
                    ("c", plan.c.into()),
                    ("occupancy", plan.occupancy.occupancy.into()),
                    ("why", why.as_str().into()),
                ],
            );
        }
        Ok(plan)
    }

    /// Infallible [`FusedExecutor::try_dense_plan`].
    pub fn dense_plan(&self, x: &GpuDense) -> DensePlan {
        self.try_dense_plan(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `w = alpha * X^T (v ⊙ (X y)) + beta * z`, sparse, fully fused
    /// (zero-fill + one fused kernel).
    pub fn try_pattern_sparse(
        &mut self,
        spec: PatternSpec,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let plan = self.try_sparse_plan(x)?;
        self.try_pattern_sparse_with_plan(&plan, spec, x, v, y, z, w)
    }

    /// Infallible [`FusedExecutor::try_pattern_sparse`].
    pub fn pattern_sparse(
        &mut self,
        spec: PatternSpec,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) {
        self.try_pattern_sparse(spec, x, v, y, z, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`FusedExecutor::pattern_sparse`] with an explicit plan (the
    /// Fig. 6 sweep drives this directly).
    #[allow(clippy::too_many_arguments)]
    pub fn try_pattern_sparse_with_plan(
        &mut self,
        plan: &SparsePlan,
        spec: PatternSpec,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        self.launches.push(try_fill(self.gpu, w, 0.0)?);
        let stats = if plan.use_shared_w {
            try_fused_pattern_shared(self.gpu, plan, spec, x, v, y, z, w)?
        } else {
            try_fused_pattern_global(self.gpu, plan, spec, x, v, y, z, w)?
        };
        self.launches.push(stats);
        Ok(())
    }

    /// Infallible [`FusedExecutor::try_pattern_sparse_with_plan`].
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_sparse_with_plan(
        &mut self,
        plan: &SparsePlan,
        spec: PatternSpec,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) {
        self.try_pattern_sparse_with_plan(plan, spec, x, v, y, z, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// `w = alpha * X^T y` (Table 1's first instantiation; `y` has row
    /// dimension), fused.
    pub fn try_xt_y_sparse(
        &mut self,
        alpha: f64,
        x: &GpuCsr,
        y: &GpuBuffer,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let plan = self.try_sparse_plan(x)?;
        self.launches.push(try_fill(self.gpu, w, 0.0)?);
        let stats = if plan.use_shared_w {
            try_fused_xt_p_shared(self.gpu, &plan, alpha, x, y, w)?
        } else {
            try_fused_xt_p_global(self.gpu, &plan, alpha, x, y, w)?
        };
        self.launches.push(stats);
        Ok(())
    }

    /// Infallible [`FusedExecutor::try_xt_y_sparse`].
    pub fn xt_y_sparse(&mut self, alpha: f64, x: &GpuCsr, y: &GpuBuffer, w: &GpuBuffer) {
        self.try_xt_y_sparse(alpha, x, y, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// `w = alpha * X^T (v ⊙ (X y)) + beta * z`, dense, fused through the
    /// monomorphized (generated) kernel.
    pub fn try_pattern_dense(
        &mut self,
        spec: PatternSpec,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let plan = self.try_dense_plan(x)?;
        self.try_pattern_dense_with_plan(&plan, spec, x, v, y, z, w)
    }

    /// Infallible [`FusedExecutor::try_pattern_dense`].
    pub fn pattern_dense(
        &mut self,
        spec: PatternSpec,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) {
        self.try_pattern_dense(spec, x, v, y, z, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Dense pattern with an explicit plan.
    #[allow(clippy::too_many_arguments)]
    pub fn try_pattern_dense_with_plan(
        &mut self,
        plan: &DensePlan,
        spec: PatternSpec,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        self.launches.push(try_fill(self.gpu, w, 0.0)?);
        self.launches
            .push(try_launch_dense_fused(self.gpu, plan, spec, x, v, y, z, w)?);
        Ok(())
    }

    /// Infallible [`FusedExecutor::try_pattern_dense_with_plan`].
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_dense_with_plan(
        &mut self,
        plan: &DensePlan,
        spec: PatternSpec,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
    ) {
        self.try_pattern_dense_with_plan(plan, spec, x, v, y, z, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{dense_random, powerlaw_sparse, random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn executor_sparse_pattern_end_to_end() {
        let g = gpu();
        let x = uniform_sparse(600, 300, 0.04, 81);
        let y = random_vector(300, 1);
        let v = random_vector(600, 2);
        let z = random_vector(300, 3);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", 300);
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(
            PatternSpec::full(2.0, 0.5),
            &xd,
            Some(&vd),
            &yd,
            Some(&zd),
            &wd,
        );
        let expect = reference::pattern_csr(2.0, &x, Some(&v), &y, 0.5, Some(&z));
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
        // Fused path: fill + ONE kernel, versus the baseline's six.
        assert_eq!(ex.launch_count(), 2);
    }

    #[test]
    fn executor_picks_global_variant_for_wide_matrices() {
        let g = gpu();
        let x = powerlaw_sparse(800, 40_000, 6.0, 0.8, 82);
        let xd = GpuCsr::upload(&g, "x", &x);
        let plan = FusedExecutor::new(&g).sparse_plan(&xd);
        assert!(!plan.use_shared_w);
        let y = random_vector(40_000, 4);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 40_000);
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-11);
    }

    #[test]
    fn executor_xt_y_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(500, 120, 0.06, 83);
        let yh = random_vector(500, 5);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &yh);
        let wd = g.alloc_f64("w", 120);
        let mut ex = FusedExecutor::new(&g);
        ex.xt_y_sparse(3.0, &xd, &yd, &wd);
        let mut expect = reference::csr_tmv(&x, &yh);
        reference::scal(3.0, &mut expect);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn executor_dense_pattern_end_to_end() {
        let g = gpu();
        let x = dense_random(1200, 28, 84);
        let y = random_vector(28, 6);
        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 28);
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_dense(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let expect = reference::pattern_dense(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
        assert_eq!(ex.launch_count(), 2);
    }

    #[test]
    fn fused_beats_baseline_on_simulated_time() {
        // The headline claim, in miniature: fused sparse X^T(Xy) runs
        // faster in simulated time than the cuSPARSE-style composition.
        let g = gpu();
        let x = uniform_sparse(4000, 512, 0.02, 85);
        let y = random_vector(512, 7);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);

        let wd1 = g.alloc_f64("w1", 512);
        let mut fused = FusedExecutor::new(&g);
        g.flush_caches();
        fused.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd1);

        let wd2 = g.alloc_f64("w2", 512);
        let pd = g.alloc_f64("p", 4000);
        let mut base = fusedml_blas::BaselineEngine::new(&g, fusedml_blas::Flavor::CuLibs);
        g.flush_caches();
        base.pattern_sparse(1.0, &xd, None, &yd, 0.0, None, &wd2, &pd);

        assert!(
            fused.total_sim_ms() < base.total_sim_ms(),
            "fused {} ms vs baseline {} ms",
            fused.total_sim_ms(),
            base.total_sim_ms()
        );
        // And the results agree.
        assert!(reference::rel_l2_error(&wd1.to_vec_f64(), &wd2.to_vec_f64()) < 1e-11);
    }

    #[test]
    fn repeated_pattern_calls_plan_once() {
        let g = gpu();
        let x = uniform_sparse(2000, 256, 0.03, 90);
        let y = random_vector(256, 8);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let wd = g.alloc_f64("w", 256);
        let mut ex = FusedExecutor::new(&g);
        ex.set_plan_cache(true); // independent of the process default
        let iterations = 10;
        for _ in 0..iterations {
            ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        }
        let s = ex.plan_stats();
        assert_eq!(s.plans_computed(), 1, "O(1) tuner runs per solve");
        assert_eq!(s.hits, iterations - 1);
        assert_eq!(ex.launch_count(), 2 * iterations as usize);
    }

    #[test]
    fn cached_plan_is_bit_identical_to_fresh_plan() {
        let g = gpu();
        let x = uniform_sparse(3000, 400, 0.02, 91);
        let xd = GpuCsr::upload(&g, "x", &x);
        let ex = FusedExecutor::new(&g);
        ex.set_plan_cache(true);
        let first = ex.try_sparse_plan(&xd).unwrap();
        let cached = ex.try_sparse_plan(&xd).unwrap();
        ex.set_plan_cache(false);
        let fresh = ex.try_sparse_plan(&xd).unwrap();
        assert_eq!(first, cached);
        assert_eq!(cached, fresh, "a cache hit must equal a fresh tuner run");
    }

    #[test]
    fn disabled_executor_cache_replans_every_call() {
        let g = gpu();
        let x = dense_random(900, 24, 92);
        let xd = GpuDense::upload(&g, "x", &x);
        let ex = FusedExecutor::new(&g);
        ex.set_plan_cache(false);
        for _ in 0..3 {
            ex.try_dense_plan(&xd).unwrap();
        }
        let s = ex.plan_stats();
        assert_eq!((s.hits, s.plans_computed()), (0, 3));
    }

    #[test]
    fn invalidation_forces_replan() {
        let g = gpu();
        let x = uniform_sparse(1000, 200, 0.04, 93);
        let xd = GpuCsr::upload(&g, "x", &x);
        let ex = FusedExecutor::new(&g);
        ex.set_plan_cache(true);
        ex.try_sparse_plan(&xd).unwrap();
        ex.invalidate_plan_cache(crate::plancache::Invalidation::MatrixChanged);
        ex.try_sparse_plan(&xd).unwrap();
        let s = ex.plan_stats();
        assert_eq!(s.misses, 2, "post-invalidation call re-runs the tuner");
        assert!(s.invalidations > 0);
    }
}
