//! Property tests on the sparse-format invariants: CSR/CSC/COO round
//! trips, transpose involution, and generator guarantees.

// Needs the real `proptest` crate: gated off in offline builds, where
// `proptest` resolves to a macro-less stub (see the workspace Cargo.toml).
#![cfg(feature = "proptest-tests")]

use fusedml_matrix::gen::{powerlaw_sparse, uniform_sparse};
use fusedml_matrix::{Coo, CsrMatrix, SparseStats};
use proptest::prelude::*;

/// Random COO triplets (with possible duplicates) for structural tests.
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec((0..rows, 0..cols, -10.0f64..10.0), 0..200).prop_map(
            move |triplets| {
                let mut coo = Coo::new(rows, cols);
                for (r, c, v) in triplets {
                    coo.push(r, c, v);
                }
                coo
            },
        )
    })
}

proptest! {
    #[test]
    fn coo_to_csr_preserves_sums(coo in coo_strategy()) {
        let csr = CsrMatrix::from_coo(&coo);
        // Sum of all entries is preserved under duplicate folding.
        let coo_sum: f64 = coo.triplets().iter().map(|(_, _, v)| v).sum();
        let csr_sum: f64 = csr.values().iter().sum();
        prop_assert!((coo_sum - csr_sum).abs() < 1e-9);
        // Invariants hold by construction (from_parts re-validates).
        let _ = CsrMatrix::from_parts(
            csr.rows(),
            csr.cols(),
            csr.row_off().to_vec(),
            csr.col_idx().to_vec(),
            csr.values().to_vec(),
        );
    }

    #[test]
    fn transpose_is_an_involution(coo in coo_strategy()) {
        let csr = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn transpose_swaps_dense_entries(coo in coo_strategy()) {
        let csr = CsrMatrix::from_coo(&coo);
        let d = csr.to_dense();
        let t = csr.transpose().to_dense();
        for r in 0..csr.rows() {
            for c in 0..csr.cols() {
                prop_assert_eq!(d.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn csc_roundtrip_preserves_matrix(coo in coo_strategy()) {
        let csr = CsrMatrix::from_coo(&coo);
        let csc = csr.to_csc();
        prop_assert_eq!(csc.nnz(), csr.nnz());
        prop_assert_eq!(csc.to_dense(), csr.to_dense());
    }

    #[test]
    fn dense_roundtrip(coo in coo_strategy()) {
        let csr = CsrMatrix::from_coo(&coo);
        // from_dense drops explicit zeros; compare through dense form.
        prop_assert_eq!(
            CsrMatrix::from_dense(&csr.to_dense()).to_dense(),
            csr.to_dense()
        );
    }

    #[test]
    fn uniform_generator_is_exact(
        rows in 1usize..200,
        cols in 4usize..200,
        seed in 0u64..1000,
    ) {
        let density = 0.1;
        let x = uniform_sparse(rows, cols, density, seed);
        let per_row = ((cols as f64 * density).round() as usize).min(cols);
        prop_assert_eq!(x.nnz(), rows * per_row);
        let stats = SparseStats::compute(&x);
        prop_assert_eq!(stats.max_nnz_per_row, per_row);
        prop_assert_eq!(stats.min_nnz_per_row, per_row);
    }

    #[test]
    fn powerlaw_generator_bounds(
        rows in 10usize..300,
        seed in 0u64..1000,
    ) {
        let x = powerlaw_sparse(rows, 1000, 6.0, 0.8, seed);
        let stats = SparseStats::compute(&x);
        prop_assert!(stats.min_nnz_per_row >= 1);
        prop_assert!(stats.mean_nnz_per_row >= 1.0);
        // Columns are in range by CSR construction; check determinism.
        prop_assert_eq!(x.clone(), powerlaw_sparse(rows, 1000, 6.0, 0.8, seed));
    }
}
