//! HYB (hybrid ELL + COO) storage, Bell & Garland's remedy for ELL's
//! padding blow-up on skewed rows: the typical prefix of every row lives
//! in a fixed-width ELL part (coalesced, padding-bounded) and the long
//! tail spills into a COO list processed with atomics.

use crate::csr::CsrMatrix;
use crate::ell::EllMatrix;
use serde::{Deserialize, Serialize};

/// A hybrid ELL + COO matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybMatrix {
    ell: EllMatrix,
    /// Overflow triplets `(row, col, value)`, row-sorted.
    coo: Vec<(u32, u32, f64)>,
    cols: usize,
}

impl HybMatrix {
    /// Split `x` at `width` slots per row; entries beyond spill to COO.
    pub fn from_csr(x: &CsrMatrix, width: usize) -> Self {
        let rows = x.rows();
        // Truncate each row to `width` for the ELL part.
        let mut ell_coo = crate::coo::Coo::with_capacity(rows, x.cols(), rows * width);
        let mut overflow = Vec::new();
        for r in 0..rows {
            for (slot, (c, v)) in x.row_entries(r).enumerate() {
                if slot < width {
                    ell_coo.push(r, c as usize, v);
                } else {
                    overflow.push((r as u32, c, v));
                }
            }
        }
        let ell_csr = CsrMatrix::from_coo(&ell_coo);
        let ell = EllMatrix::from_csr_with_width(&ell_csr, width)
            .expect("rows truncated to width by construction");
        HybMatrix {
            ell,
            coo: overflow,
            cols: x.cols(),
        }
    }

    /// The width that keeps the expected padding bounded: Bell & Garland
    /// suggest the largest `K` such that at least `fraction` of rows have
    /// `>= K` entries (they use 1/3).
    pub fn suggested_width(x: &CsrMatrix, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        let mut lens: Vec<usize> = (0..x.rows()).map(|r| x.row_nnz(r)).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let idx = ((x.rows() as f64 * fraction) as usize).min(lens.len().saturating_sub(1));
        lens.get(idx).copied().unwrap_or(0).max(1)
    }

    pub fn ell(&self) -> &EllMatrix {
        &self.ell
    }

    pub fn coo(&self) -> &[(u32, u32, f64)] {
        &self.coo
    }

    pub fn rows(&self) -> usize {
        self.ell.rows()
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.ell.nnz() + self.coo.len()
    }

    /// Fraction of non-zeros in the COO tail.
    pub fn overflow_ratio(&self) -> f64 {
        if self.nnz() == 0 {
            0.0
        } else {
            self.coo.len() as f64 / self.nnz() as f64
        }
    }

    pub fn size_bytes(&self) -> u64 {
        self.ell.size_bytes() + (self.coo.len() * (4 + 4 + 8)) as u64
    }

    /// Reference SpMV `p = X * y`.
    pub fn spmv_ref(&self, y: &[f64]) -> Vec<f64> {
        let mut p = self.ell.spmv_ref(y);
        for &(r, c, v) in &self.coo {
            p[r as usize] += v * y[c as usize];
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{powerlaw_sparse, random_vector, uniform_sparse};
    use crate::reference;

    #[test]
    fn split_preserves_spmv() {
        let x = powerlaw_sparse(300, 150, 6.0, 0.8, 8);
        for width in [1usize, 2, 4, 8] {
            let hyb = HybMatrix::from_csr(&x, width);
            assert_eq!(hyb.nnz(), x.nnz(), "width {width}");
            let y = random_vector(150, 9);
            let a = hyb.spmv_ref(&y);
            let b = reference::csr_mv(&x, &y);
            assert!(
                reference::max_abs_diff(&a, &b) < 1e-12,
                "width {width} mismatch"
            );
        }
    }

    #[test]
    fn overflow_shrinks_with_width() {
        let x = powerlaw_sparse(400, 300, 8.0, 0.8, 10);
        let narrow = HybMatrix::from_csr(&x, 2);
        let wide = HybMatrix::from_csr(&x, 16);
        assert!(narrow.overflow_ratio() > wide.overflow_ratio());
    }

    #[test]
    fn hyb_stores_less_than_ell_on_skewed_data() {
        let x = powerlaw_sparse(1000, 4000, 4.0, 0.8, 11);
        let full_ell = EllMatrix::from_csr(&x);
        let k = HybMatrix::suggested_width(&x, 1.0 / 3.0);
        let hyb = HybMatrix::from_csr(&x, k);
        assert!(
            hyb.size_bytes() < full_ell.size_bytes(),
            "hyb {} vs ell {}",
            hyb.size_bytes(),
            full_ell.size_bytes()
        );
    }

    #[test]
    fn uniform_rows_have_no_overflow_at_their_width() {
        let x = uniform_sparse(100, 200, 0.05, 12); // 10 nnz/row exactly
        let hyb = HybMatrix::from_csr(&x, 10);
        assert_eq!(hyb.overflow_ratio(), 0.0);
        assert_eq!(hyb.ell().padding_ratio(), 0.0);
    }

    #[test]
    fn suggested_width_is_sane() {
        let x = powerlaw_sparse(500, 300, 6.0, 0.8, 13);
        let k = HybMatrix::suggested_width(&x, 1.0 / 3.0);
        assert!(k >= 1);
        let hyb = HybMatrix::from_csr(&x, k);
        // The heuristic keeps both padding and overflow moderate.
        assert!(hyb.ell().padding_ratio() < 0.8);
        assert!(hyb.overflow_ratio() < 0.7);
    }
}
