//! Synthetic data generators standing in for the paper's workloads.
//!
//! * [`uniform_sparse`] — the synthetic sweep data of §4.1/§4.2: fixed row
//!   count, varying column count, uniform sparsity 0.01.
//! * [`powerlaw_sparse`] — the KDD-2010-shaped ultra-sparse matrix (skewed
//!   row lengths, enormous column space) used where the paper reads the real
//!   KDD Cup 2010 data set; see DESIGN.md for the substitution rationale.
//! * [`dense_random`] — the HIGGS-shaped tall dense matrix (n = 28).

use crate::coo::Coo;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Uniform-sparsity CSR matrix: each row draws `round(density * cols)`
/// distinct columns uniformly at random. Mirrors the paper's synthetic
/// setup ("number of rows 500k ... sparsity 0.01").
pub fn uniform_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density));
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = ((cols as f64 * density).round() as usize).min(cols);
    let mut coo = Coo::with_capacity(rows, cols, rows * per_row);
    let mut picked: Vec<u32> = Vec::with_capacity(per_row);
    for r in 0..rows {
        picked.clear();
        while picked.len() < per_row {
            let c = rng.gen_range(0..cols as u32);
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        for &c in &picked {
            coo.push(r, c as usize, rng.gen_range(-1.0..1.0));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Ultra-sparse power-law matrix: row lengths follow a Zipf-like
/// distribution with the requested mean, and column popularity is also
/// skewed (a few very hot features) — the shape of the KDD 2010 data set
/// (mean ~28 nnz/row over a 30M-column space).
pub fn powerlaw_sparse(
    rows: usize,
    cols: usize,
    mean_nnz_per_row: f64,
    skew: f64,
    seed: u64,
) -> CsrMatrix {
    assert!(mean_nnz_per_row >= 1.0);
    assert!(skew > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Row lengths: 1 + Zipf draw scaled to hit the requested mean.
    let zipf_rows =
        Zipf::new((4.0 * mean_nnz_per_row).max(2.0) as u64, 1.0 + skew).expect("valid zipf");
    // Column popularity: a mild Zipf over the column space (exponent well
    // below 1 — sparse feature spaces like KDD's 30M n-gram columns have a
    // heavy tail of rare features; even the hottest column holds well
    // under 1% of all non-zeros), scattered across the index range.
    let zipf_cols = Zipf::new(cols as u64, 0.3 + skew / 4.0).expect("valid zipf");

    let mut coo = Coo::with_capacity(rows, cols, rows * mean_nnz_per_row as usize);
    // Cheap bijective scatter of the popularity rank onto column ids.
    let scatter = |rank: u64| -> usize {
        let h = rank
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_add(seed);
        (h % cols as u64) as usize
    };
    let mut row_cols: Vec<usize> = Vec::new();
    for r in 0..rows {
        let len = (zipf_rows.sample(&mut rng) as usize).max(1);
        row_cols.clear();
        for _ in 0..len {
            let rank = zipf_cols.sample(&mut rng) as u64;
            let c = scatter(rank);
            if !row_cols.contains(&c) {
                row_cols.push(c);
            }
        }
        for &c in &row_cols {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Dense random matrix with entries in `[-1, 1)`.
pub fn dense_random(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Random vector with entries in `[-1, 1)`.
pub fn random_vector(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Random binary label vector in `{-1, +1}` (for the classifiers).
pub fn random_labels(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
        .collect()
}

/// Parameters describing the scaled stand-in for a named real data set.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub rows: usize,
    pub cols: usize,
    /// For sparse sets: target mean nnz/row. Unused for dense.
    pub mean_nnz_per_row: f64,
    pub sparse: bool,
}

/// KDD Cup 2010 stand-in, scaled by `scale` (1.0 = 1/40 of the real set;
/// see DESIGN.md). Real: 15,009,374 x 29,890,095 with 423,865,484 nnz.
pub fn kdd2010_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "KDD2010 (synthetic stand-in)",
        rows: (375_000.0 * scale) as usize,
        cols: (747_000.0 * scale) as usize,
        mean_nnz_per_row: 28.2,
        sparse: true,
    }
}

/// HIGGS stand-in, scaled by `scale` (1.0 = 1/8 of the real set).
/// Real: 11,000,000 x 28 dense.
pub fn higgs_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "HIGGS (synthetic stand-in)",
        rows: (1_375_000.0 * scale) as usize,
        cols: 28,
        mean_nnz_per_row: 28.0,
        sparse: false,
    }
}

impl DatasetSpec {
    /// Materialize the sparse variant.
    pub fn build_sparse(&self, seed: u64) -> CsrMatrix {
        assert!(self.sparse, "{} is dense", self.name);
        powerlaw_sparse(self.rows, self.cols, self.mean_nnz_per_row, 0.8, seed)
    }

    /// Materialize the dense variant.
    pub fn build_dense(&self, seed: u64) -> DenseMatrix {
        assert!(!self.sparse, "{} is sparse", self.name);
        dense_random(self.rows, self.cols, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sparse_has_requested_density() {
        let m = uniform_sparse(100, 200, 0.05, 7);
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 200);
        // 5% of 200 = 10 nnz per row exactly (we draw without replacement).
        assert_eq!(m.nnz(), 1000);
        for r in 0..100 {
            assert_eq!(m.row_nnz(r), 10);
        }
    }

    #[test]
    fn uniform_sparse_deterministic_by_seed() {
        assert_eq!(
            uniform_sparse(50, 64, 0.1, 3),
            uniform_sparse(50, 64, 0.1, 3)
        );
        assert_ne!(
            uniform_sparse(50, 64, 0.1, 3),
            uniform_sparse(50, 64, 0.1, 4)
        );
    }

    #[test]
    fn powerlaw_rows_are_skewed() {
        let m = powerlaw_sparse(2000, 10_000, 8.0, 0.8, 11);
        let mu = m.mean_nnz_per_row();
        assert!(mu >= 1.0, "mean {mu} below minimum");
        let max_row = (0..m.rows()).map(|r| m.row_nnz(r)).max().unwrap();
        let min_row = (0..m.rows()).map(|r| m.row_nnz(r)).min().unwrap();
        assert!(min_row >= 1);
        assert!(
            max_row as f64 > 3.0 * mu,
            "expected skew: max {max_row} vs mean {mu}"
        );
    }

    #[test]
    fn dense_random_in_range() {
        let m = dense_random(10, 10, 5);
        assert!(m.data().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn dataset_specs_scale() {
        let kdd = kdd2010_spec(0.1);
        assert_eq!(kdd.rows, 37_500);
        let higgs = higgs_spec(0.01);
        assert_eq!(higgs.cols, 28);
        assert_eq!(higgs.rows, 13_750);
    }

    #[test]
    fn labels_are_plus_minus_one() {
        let l = random_labels(100, 1);
        assert!(l.iter().all(|&v| v == 1.0 || v == -1.0));
        assert!(l.contains(&1.0) && l.iter().any(|&v| v == -1.0));
    }
}
