//! Matrix statistics feeding the paper's launch-parameter model (§3.3):
//! the analytical tuner needs the mean non-zeros per row and the row-length
//! distribution to choose `VS` and reason about load balance.

use crate::csr::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sparse matrix's row-length distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseStats {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    pub mean_nnz_per_row: f64,
    pub max_nnz_per_row: usize,
    pub min_nnz_per_row: usize,
    /// Population standard deviation of row lengths (load-imbalance proxy).
    pub stddev_nnz_per_row: f64,
    /// nnz / (rows * cols).
    pub density: f64,
}

impl SparseStats {
    pub fn compute(x: &CsrMatrix) -> Self {
        let rows = x.rows();
        let lens: Vec<usize> = (0..rows).map(|r| x.row_nnz(r)).collect();
        let nnz = x.nnz();
        let mean = if rows == 0 {
            0.0
        } else {
            nnz as f64 / rows as f64
        };
        let var = if rows == 0 {
            0.0
        } else {
            lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / rows as f64
        };
        SparseStats {
            rows,
            cols: x.cols(),
            nnz,
            mean_nnz_per_row: mean,
            max_nnz_per_row: lens.iter().copied().max().unwrap_or(0),
            min_nnz_per_row: lens.iter().copied().min().unwrap_or(0),
            stddev_nnz_per_row: var.sqrt(),
            density: x.density(),
        }
    }

    /// Coefficient of variation of row lengths; > 1 indicates heavy skew
    /// (the KDD-like regime).
    pub fn row_length_cv(&self) -> f64 {
        if self.mean_nnz_per_row == 0.0 {
            0.0
        } else {
            self.stddev_nnz_per_row / self.mean_nnz_per_row
        }
    }
}

/// Histogram of row lengths in power-of-two buckets (diagnostics for the
/// KDD-like generator and the tuner's `VS` choice).
pub fn row_length_histogram(x: &CsrMatrix) -> Vec<(usize, usize)> {
    let mut buckets: Vec<(usize, usize)> = Vec::new();
    for r in 0..x.rows() {
        let len = x.row_nnz(r);
        let bucket = if len == 0 { 0 } else { len.next_power_of_two() };
        match buckets.iter_mut().find(|(b, _)| *b == bucket) {
            Some((_, count)) => *count += 1,
            None => buckets.push((bucket, 1)),
        }
    }
    buckets.sort_unstable();
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_sparse;

    #[test]
    fn uniform_matrix_stats() {
        let x = uniform_sparse(100, 50, 0.1, 3);
        let s = SparseStats::compute(&x);
        assert_eq!(s.rows, 100);
        assert_eq!(s.nnz, 500);
        assert_eq!(s.mean_nnz_per_row, 5.0);
        assert_eq!(s.max_nnz_per_row, 5);
        assert_eq!(s.min_nnz_per_row, 5);
        assert_eq!(s.stddev_nnz_per_row, 0.0);
        assert_eq!(s.row_length_cv(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let x = uniform_sparse(10, 64, 0.1, 3); // ~6 nnz/row -> bucket 8
        let h = row_length_histogram(&x);
        assert_eq!(h, vec![(8, 10)]);
    }
}
