//! Compressed Sparse Row storage — the device format of the paper's sparse
//! kernels (`values`, `col_idx`, `row_off` in Algorithms 1 and 2).

use crate::coo::Coo;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::FormatError;
use serde::{Deserialize, Serialize};

/// CSR sparse matrix of f64 with u32 column indices.
///
/// ```
/// use fusedml_matrix::CsrMatrix;
///
/// // [1 0 2]
/// // [0 3 0]
/// let x = CsrMatrix::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]);
/// assert_eq!(x.nnz(), 3);
/// assert_eq!(x.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
/// assert_eq!(x.transpose().to_dense(), x.to_dense().transpose());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `rows + 1` offsets into `col_idx`/`values`.
    row_off: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from raw parts, validating every CSR invariant.
    ///
    /// # Panics
    /// On malformed inputs: wrong offset length, non-monotone offsets,
    /// column index out of range, or unsorted columns within a row. Use
    /// [`CsrMatrix::try_from_parts`] to get the violation as a value.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_off: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        Self::try_from_parts(rows, cols, row_off, col_idx, values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from raw parts, reporting the first violated CSR invariant
    /// instead of panicking — for untrusted inputs (file loaders,
    /// foreign-format converters).
    ///
    /// ```
    /// use fusedml_matrix::{CsrMatrix, FormatError};
    ///
    /// let err = CsrMatrix::try_from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    /// assert_eq!(err, Err(FormatError::ColumnOutOfRange { row: 0, col: 5, cols: 2 }));
    /// ```
    pub fn try_from_parts(
        rows: usize,
        cols: usize,
        row_off: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, FormatError> {
        if row_off.len() != rows + 1 {
            return Err(FormatError::OffsetLength {
                rows,
                len: row_off.len(),
            });
        }
        if row_off[0] != 0 {
            return Err(FormatError::OffsetStart { first: row_off[0] });
        }
        if row_off[rows] != col_idx.len() {
            return Err(FormatError::OffsetEnd {
                last: row_off[rows],
                nnz: col_idx.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(FormatError::LengthMismatch {
                col_idx: col_idx.len(),
                values: values.len(),
            });
        }
        for r in 0..rows {
            if row_off[r] > row_off[r + 1] {
                return Err(FormatError::NonMonotoneOffsets {
                    row: r,
                    prev: row_off[r],
                    next: row_off[r + 1],
                });
            }
        }
        for r in 0..rows {
            let cols_of_row = &col_idx[row_off[r]..row_off[r + 1]];
            for w in cols_of_row.windows(2) {
                if w[0] >= w[1] {
                    return Err(FormatError::UnsortedColumns {
                        row: r,
                        prev: w[0],
                        next: w[1],
                    });
                }
            }
            if let Some(&last) = cols_of_row.last() {
                if last as usize >= cols {
                    return Err(FormatError::ColumnOutOfRange {
                        row: r,
                        col: last,
                        cols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_off,
            col_idx,
            values,
        })
    }

    /// An empty matrix with no stored entries.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_off: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn row_off(&self) -> &[usize] {
        &self.row_off
    }

    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(col, value)` pairs of row `r`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let span = self.row_off[r]..self.row_off[r + 1];
        self.col_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_off[r + 1] - self.row_off[r]
    }

    /// Mean non-zeros per row (the `mu = NNZ / m` of Equation 4).
    pub fn mean_nnz_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// Sparsity = nnz / (rows * cols).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Device byte footprint in CSR form (values f64 + col_idx u32 +
    /// row_off u32).
    pub fn size_bytes(&self) -> u64 {
        (self.nnz() * (8 + 4) + (self.rows + 1) * 4) as u64
    }

    /// Convert to CSC (column-compressed), i.e. compute the explicit
    /// transpose layout — what cuSPARSE's `csr2csc` does.
    pub fn to_csc(&self) -> CscMatrix {
        let mut col_counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            col_counts[c as usize] += 1;
        }
        let mut col_off = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            col_off[c + 1] = col_off[c] + col_counts[c];
        }
        let mut row_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut cursor = col_off.clone();
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let dst = cursor[c as usize];
                row_idx[dst] = r as u32;
                vals[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        CscMatrix::from_parts(self.rows, self.cols, col_off, row_idx, vals)
    }

    /// The transposed matrix, still in CSR form (CSR of `X^T` == CSC of `X`).
    pub fn transpose(&self) -> CsrMatrix {
        let csc = self.to_csc();
        CsrMatrix::from_parts(
            self.cols,
            self.rows,
            csc.col_off().to_vec(),
            csc.row_idx().to_vec(),
            csc.values().to_vec(),
        )
    }

    /// Densify (for testing and small reference computations).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                d.set(r, c as usize, v);
            }
        }
        d
    }

    /// Build from a dense matrix, keeping entries with `|v| > 0`.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let mut row_off = Vec::with_capacity(d.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_off.push(0);
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = d.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_off.push(col_idx.len());
        }
        CsrMatrix {
            rows: d.rows(),
            cols: d.cols(),
            row_off,
            col_idx,
            values,
        }
    }

    /// The contiguous row range `[start, end)` as its own CSR matrix with
    /// rebased offsets — the shard a row-partitioned multi-device layout
    /// places on one device. The column dimension is preserved (row
    /// sharding splits only the row space), and entries are moved
    /// bit-exactly: no reordering, no re-rounding.
    pub fn slice_rows(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(
            start <= end && end <= self.rows,
            "row slice [{start}, {end}) out of bounds for {} rows",
            self.rows
        );
        let base = self.row_off[start];
        let row_off = self.row_off[start..=end]
            .iter()
            .map(|&o| o - base)
            .collect();
        let span = self.row_off[start]..self.row_off[end];
        CsrMatrix {
            rows: end - start,
            cols: self.cols,
            row_off,
            col_idx: self.col_idx[span.clone()].to_vec(),
            values: self.values[span].to_vec(),
        }
    }

    /// Build from COO triplets (sorted and de-duplicated by summing).
    pub fn from_coo(coo: &Coo) -> Self {
        let mut triplets: Vec<(u32, u32, f64)> = coo.triplets().to_vec();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_off = vec![0usize; coo.rows() + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(triplets.len());
        let mut i = 0;
        while i < triplets.len() {
            let (r, c, mut v) = triplets[i];
            i += 1;
            // Duplicate coordinates accumulate.
            while i < triplets.len() && triplets[i].0 == r && triplets[i].1 == c {
                v += triplets[i].2;
                i += 1;
            }
            col_idx.push(c);
            values.push(v);
            row_off[r as usize + 1] = col_idx.len();
        }
        // Empty rows inherit the previous offset.
        for r in 0..coo.rows() {
            row_off[r + 1] = row_off[r + 1].max(row_off[r]);
        }
        CsrMatrix::from_parts(coo.rows(), coo.cols(), row_off, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(
            m.row_entries(2).collect::<Vec<_>>(),
            vec![(0, 3.0), (1, 4.0)]
        );
        assert!((m.mean_nnz_per_row() - 4.0 / 3.0).abs() < 1e-12);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        assert_eq!(CsrMatrix::from_dense(&m.to_dense()), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn csc_preserves_entries() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), m.nnz());
        assert_eq!(csc.to_dense(), m.to_dense());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_columns() {
        CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_column() {
        CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(4, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().rows(), 7);
        assert_eq!(m.mean_nnz_per_row(), 0.0);
    }

    #[test]
    fn slice_rows_rebases_offsets_bit_exactly() {
        let m = sample();
        // Middle slice including the empty row.
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.row_off(), &[0, 0, 2]);
        assert_eq!(
            s.row_entries(1).collect::<Vec<_>>(),
            vec![(0, 3.0), (1, 4.0)]
        );
        // Degenerate slices.
        assert_eq!(m.slice_rows(0, 0).nnz(), 0);
        assert_eq!(m.slice_rows(3, 3).rows(), 0);
        // Full slice is the identity.
        assert_eq!(m.slice_rows(0, 3), m);
        // Concatenating slices covers every entry exactly once.
        let total: usize = (0..3).map(|r| m.slice_rows(r, r + 1).nnz()).sum();
        assert_eq!(total, m.nnz());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_rows_rejects_bad_range() {
        sample().slice_rows(2, 5);
    }

    #[test]
    fn try_from_parts_accepts_valid_input() {
        let m = CsrMatrix::try_from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert_eq!(m, sample());
    }

    #[test]
    fn try_from_parts_reports_each_violation() {
        use crate::error::FormatError as E;
        // Wrong offset length.
        assert_eq!(
            CsrMatrix::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(E::OffsetLength { rows: 2, len: 2 })
        );
        // First offset nonzero.
        assert_eq!(
            CsrMatrix::try_from_parts(1, 2, vec![1, 1], vec![], vec![]),
            Err(E::OffsetStart { first: 1 })
        );
        // Last offset disagrees with nnz.
        assert_eq!(
            CsrMatrix::try_from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]),
            Err(E::OffsetEnd { last: 2, nnz: 1 })
        );
        // col_idx / values mismatch.
        assert_eq!(
            CsrMatrix::try_from_parts(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]),
            Err(E::LengthMismatch {
                col_idx: 1,
                values: 2
            })
        );
        // Decreasing offsets, located at the offending row.
        assert_eq!(
            CsrMatrix::try_from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]),
            Err(E::NonMonotoneOffsets {
                row: 1,
                prev: 2,
                next: 1
            })
        );
        // Duplicate column (not strictly increasing).
        assert_eq!(
            CsrMatrix::try_from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]),
            Err(E::UnsortedColumns {
                row: 0,
                prev: 1,
                next: 1
            })
        );
        // Column index out of range, located at the offending row.
        assert_eq!(
            CsrMatrix::try_from_parts(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 2.0]),
            Err(E::ColumnOutOfRange {
                row: 1,
                col: 7,
                cols: 2
            })
        );
    }
}
