//! Row-major dense matrix, the layout cuBLAS-style kernels and the paper's
//! dense fused kernel (§3.2) operate on.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of f64.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense shape/buffer mismatch");
        DenseMatrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The contiguous row range `[start, end)` as its own dense matrix —
    /// the shard a row-partitioned multi-device layout places on one
    /// device. Entries are copied bit-exactly.
    pub fn slice_rows(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(
            start <= end && end <= self.rows,
            "row slice [{start}, {end}) out of bounds for {} rows",
            self.rows
        );
        DenseMatrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Pad with zero *columns* so `cols` becomes a multiple of `multiple`,
    /// the preprocessing step of §3.2 for the dense fused kernel ("when
    /// n % VS != 0, we pad both matrix X and vector y"). Returns the number
    /// of padding columns added.
    pub fn pad_cols_to_multiple(&mut self, multiple: usize) -> usize {
        assert!(multiple > 0);
        let rem = self.cols % multiple;
        if rem == 0 {
            return 0;
        }
        let pad = multiple - rem;
        let new_cols = self.cols + pad;
        let mut data = vec![0.0; self.rows * new_cols];
        for r in 0..self.rows {
            data[r * new_cols..r * new_cols + self.cols].copy_from_slice(self.row(r));
        }
        self.data = data;
        self.cols = new_cols;
        pad
    }

    /// Device/host byte footprint.
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn pad_cols() {
        let mut m = DenseMatrix::from_fn(2, 5, |_, _| 1.0);
        let pad = m.pad_cols_to_multiple(4);
        assert_eq!(pad, 3);
        assert_eq!(m.cols(), 8);
        assert_eq!(m.get(1, 4), 1.0);
        assert_eq!(m.get(1, 5), 0.0);
        // Already a multiple: no-op.
        assert_eq!(m.pad_cols_to_multiple(4), 0);
        assert_eq!(m.cols(), 8);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_shape() {
        DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
