//! Structural validation errors for the sparse formats.
//!
//! Construction from untrusted parts (raw CSR arrays, width-bounded ELL
//! conversion) reports *which* invariant broke and *where* instead of
//! panicking, so loaders can surface actionable diagnostics. The
//! infallible constructors remain as thin panicking wrappers.

use std::fmt;

/// A violated storage-format invariant, located as precisely as the
/// check allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// `row_off` does not hold exactly `rows + 1` offsets.
    OffsetLength { rows: usize, len: usize },
    /// The first offset is not 0.
    OffsetStart { first: usize },
    /// The final offset disagrees with the entry count.
    OffsetEnd { last: usize, nnz: usize },
    /// `col_idx` and `values` differ in length.
    LengthMismatch { col_idx: usize, values: usize },
    /// Offsets decrease between a row and its successor.
    NonMonotoneOffsets {
        row: usize,
        prev: usize,
        next: usize,
    },
    /// Column indices within a row are not strictly increasing.
    UnsortedColumns { row: usize, prev: u32, next: u32 },
    /// A column index is `>= cols`.
    ColumnOutOfRange { row: usize, col: u32, cols: usize },
    /// A row holds more entries than the requested ELL width.
    RowTooWide {
        row: usize,
        row_nnz: usize,
        width: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::OffsetLength { rows, len } => write!(
                f,
                "row_off must have rows+1 entries: {len} offsets for {rows} rows"
            ),
            FormatError::OffsetStart { first } => {
                write!(f, "row_off must start at 0, found {first}")
            }
            FormatError::OffsetEnd { last, nnz } => write!(
                f,
                "row_off must end at nnz: last offset {last}, {nnz} entries"
            ),
            FormatError::LengthMismatch { col_idx, values } => {
                write!(f, "col_idx/values length mismatch: {col_idx} vs {values}")
            }
            FormatError::NonMonotoneOffsets { row, prev, next } => write!(
                f,
                "row_off must be monotone: row {row} spans {prev}..{next}"
            ),
            FormatError::UnsortedColumns { row, prev, next } => write!(
                f,
                "columns within a row must be strictly increasing: row {row} has {prev} before {next}"
            ),
            FormatError::ColumnOutOfRange { row, col, cols } => write!(
                f,
                "column index {col} out of range for {cols} columns (row {row})"
            ),
            FormatError::RowTooWide {
                row,
                row_nnz,
                width,
            } => write!(
                f,
                "row {row} holds {row_nnz} entries, more than the ELL width {width}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_keep_the_legacy_panic_substrings() {
        // The panicking wrappers format these errors, and downstream
        // should_panic tests match on the historical assert messages.
        let cases: Vec<(FormatError, &str)> = vec![
            (
                FormatError::OffsetLength { rows: 2, len: 2 },
                "row_off must have rows+1 entries",
            ),
            (
                FormatError::OffsetStart { first: 3 },
                "row_off must start at 0",
            ),
            (
                FormatError::OffsetEnd { last: 4, nnz: 5 },
                "row_off must end at nnz",
            ),
            (
                FormatError::LengthMismatch {
                    col_idx: 1,
                    values: 2,
                },
                "col_idx/values length mismatch",
            ),
            (
                FormatError::NonMonotoneOffsets {
                    row: 0,
                    prev: 2,
                    next: 1,
                },
                "row_off must be monotone",
            ),
            (
                FormatError::UnsortedColumns {
                    row: 0,
                    prev: 2,
                    next: 0,
                },
                "strictly increasing",
            ),
            (
                FormatError::ColumnOutOfRange {
                    row: 0,
                    col: 9,
                    cols: 3,
                },
                "column index 9 out of range",
            ),
            (
                FormatError::RowTooWide {
                    row: 1,
                    row_nnz: 5,
                    width: 3,
                },
                "more than the ELL width",
            ),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should contain {needle:?}"
            );
        }
    }
}
