//! Matrix Market (`.mtx`) I/O — the exchange format the paper's real data
//! sets (KDD 2010, HIGGS) circulate in, so the harness can run on the
//! actual inputs when they are available instead of the synthetic
//! stand-ins.
//!
//! Supports the `matrix coordinate real/integer/pattern general|symmetric`
//! and `matrix array real general` headers, which covers the UF/SuiteSparse
//! collection's common cases.

use crate::coo::Coo;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    Io(std::io::Error),
    /// Malformed or unsupported header line.
    BadHeader(String),
    /// Malformed entry at the given 1-based line number.
    BadEntry {
        line: usize,
        reason: String,
    },
    /// Entry count or coordinates disagree with the size line.
    Inconsistent(String),
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::BadHeader(h) => write!(f, "unsupported MatrixMarket header: {h}"),
            MtxError::BadEntry { line, reason } => {
                write!(f, "bad entry on line {line}: {reason}")
            }
            MtxError::Inconsistent(m) => write!(f, "inconsistent matrix: {m}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Read a sparse matrix in MatrixMarket coordinate format.
pub fn read_sparse_mtx<R: Read>(reader: R) -> Result<CsrMatrix, MtxError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines
        .next()
        .ok_or_else(|| MtxError::BadHeader("empty file".into()))?;
    let header = header?;
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MtxError::BadHeader(header));
    }
    if toks[2] != "coordinate" {
        return Err(MtxError::BadHeader(format!(
            "{header} (use read_dense_mtx for array format)"
        )));
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MtxError::BadHeader(format!("field '{other}'"))),
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(MtxError::BadHeader(format!("symmetry '{other}'"))),
    };

    // Size line (after comments).
    let mut size_line = None;
    for (idx, line) in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some((idx + 1, trimmed.to_string()));
        break;
    }
    let (size_lineno, size) =
        size_line.ok_or_else(|| MtxError::Inconsistent("missing size line".into()))?;
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(|t| {
            t.parse().map_err(|_| MtxError::BadEntry {
                line: size_lineno,
                reason: format!("non-integer size token '{t}'"),
            })
        })
        .collect::<Result<_, _>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(MtxError::BadEntry {
            line: size_lineno,
            reason: "size line must be 'rows cols nnz'".into(),
        });
    };
    if rows > u32::MAX as usize || cols > u32::MAX as usize {
        return Err(MtxError::Inconsistent(format!(
            "{rows} x {cols} exceeds the u32 index space"
        )));
    }
    if symmetry == Symmetry::Symmetric && rows != cols {
        return Err(MtxError::Inconsistent(format!(
            "symmetric matrix must be square, got {rows} x {cols}"
        )));
    }

    let mut coo = Coo::with_capacity(rows, cols, nnz);
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let (Some(rt), Some(ct)) = (toks.next(), toks.next()) else {
            return Err(MtxError::BadEntry {
                line: idx + 1,
                reason: "expected 'row col [value]'".into(),
            });
        };
        let parse_idx = |t: &str| {
            t.parse::<usize>().map_err(|_| MtxError::BadEntry {
                line: idx + 1,
                reason: format!("bad index '{t}'"),
            })
        };
        let (r1, c1) = (parse_idx(rt)?, parse_idx(ct)?);
        if r1 == 0 || c1 == 0 || r1 > rows || c1 > cols {
            return Err(MtxError::Inconsistent(format!(
                "coordinate ({r1}, {c1}) outside {rows} x {cols} (1-based)"
            )));
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                let vt = toks.next().ok_or_else(|| MtxError::BadEntry {
                    line: idx + 1,
                    reason: "missing value".into(),
                })?;
                vt.parse::<f64>().map_err(|_| MtxError::BadEntry {
                    line: idx + 1,
                    reason: format!("bad value '{vt}'"),
                })?
            }
        };
        coo.push(r1 - 1, c1 - 1, v);
        if symmetry == Symmetry::Symmetric && r1 != c1 {
            coo.push(c1 - 1, r1 - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MtxError::Inconsistent(format!(
            "size line promised {nnz} entries, found {seen}"
        )));
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Read a dense matrix in MatrixMarket array format (column-major on disk,
/// per the specification).
pub fn read_dense_mtx<R: Read>(reader: R) -> Result<DenseMatrix, MtxError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| MtxError::BadHeader("empty file".into()))?;
    let header = header?;
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5
        || toks[0] != "%%matrixmarket"
        || toks[2] != "array"
        || toks[3] != "real"
        || toks[4] != "general"
    {
        return Err(MtxError::BadHeader(header));
    }

    let mut values: Vec<f64> = Vec::new();
    let mut dims: Option<(usize, usize)> = None;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if dims.is_none() {
            let d: Vec<usize> = trimmed
                .split_whitespace()
                .map(|t| {
                    t.parse().map_err(|_| MtxError::BadEntry {
                        line: idx + 1,
                        reason: format!("bad size token '{t}'"),
                    })
                })
                .collect::<Result<_, _>>()?;
            let [rows, cols] = d[..] else {
                return Err(MtxError::BadEntry {
                    line: idx + 1,
                    reason: "array size line must be 'rows cols'".into(),
                });
            };
            let Some(total) = rows.checked_mul(cols) else {
                return Err(MtxError::Inconsistent(format!(
                    "{rows} x {cols} overflows the addressable size"
                )));
            };
            dims = Some((rows, cols));
            values.reserve(total);
            continue;
        }
        for t in trimmed.split_whitespace() {
            values.push(t.parse::<f64>().map_err(|_| MtxError::BadEntry {
                line: idx + 1,
                reason: format!("bad value '{t}'"),
            })?);
        }
    }
    let (rows, cols) = dims.ok_or_else(|| MtxError::Inconsistent("missing size line".into()))?;
    if values.len() != rows * cols {
        return Err(MtxError::Inconsistent(format!(
            "expected {} values, found {}",
            rows * cols,
            values.len()
        )));
    }
    // Column-major on disk -> row-major in memory.
    Ok(DenseMatrix::from_fn(rows, cols, |r, c| {
        values[c * rows + r]
    }))
}

/// Write a CSR matrix as MatrixMarket `coordinate real general`.
pub fn write_sparse_mtx<W: Write>(w: &mut W, x: &CsrMatrix) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by fusedml")?;
    writeln!(w, "{} {} {}", x.rows(), x.cols(), x.nnz())?;
    for r in 0..x.rows() {
        for (c, v) in x.row_entries(r) {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform_sparse;

    #[test]
    fn sparse_roundtrip() {
        let x = uniform_sparse(30, 20, 0.2, 5);
        let mut buf = Vec::new();
        write_sparse_mtx(&mut buf, &x).unwrap();
        let back = read_sparse_mtx(buf.as_slice()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn parses_pattern_and_comments() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   % a comment\n\
                   \n\
                   3 4 2\n\
                   1 1\n\
                   3 4\n";
        let x = read_sparse_mtx(src.as_bytes()).unwrap();
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.nnz(), 2);
        assert_eq!(x.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(x.row_entries(2).collect::<Vec<_>>(), vec![(3, 1.0)]);
    }

    #[test]
    fn symmetric_mirrors_off_diagonal() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
                   3 3 2\n\
                   2 1 5.0\n\
                   3 3 7.0\n";
        let x = read_sparse_mtx(src.as_bytes()).unwrap();
        assert_eq!(x.nnz(), 3); // (1,0), (0,1), (2,2)
        assert_eq!(x.to_dense().get(0, 1), 5.0);
        assert_eq!(x.to_dense().get(1, 0), 5.0);
        assert_eq!(x.to_dense().get(2, 2), 7.0);
    }

    #[test]
    fn dense_array_is_column_major() {
        let src = "%%MatrixMarket matrix array real general\n\
                   2 3\n\
                   1\n2\n3\n4\n5\n6\n";
        let x = read_dense_mtx(src.as_bytes()).unwrap();
        assert_eq!(x.rows(), 2);
        assert_eq!(x.row(0), &[1.0, 3.0, 5.0]);
        assert_eq!(x.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            read_sparse_mtx("%%MatrixMarket tensor x y z\n".as_bytes()),
            Err(MtxError::BadHeader(_))
        ));
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_sparse_mtx(oob.as_bytes()),
            Err(MtxError::Inconsistent(_))
        ));
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_sparse_mtx(short.as_bytes()),
            Err(MtxError::Inconsistent(_))
        ));
        let badval = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n";
        assert!(matches!(
            read_sparse_mtx(badval.as_bytes()),
            Err(MtxError::BadEntry { .. })
        ));
        // A symmetric header on non-square dimensions used to panic when
        // mirroring an off-diagonal entry out of bounds.
        let rect_sym = "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 3 1.0\n";
        assert!(matches!(
            read_sparse_mtx(rect_sym.as_bytes()),
            Err(MtxError::Inconsistent(_))
        ));
    }

    #[test]
    fn bad_entry_reports_the_line_number() {
        let badval =
            "%%MatrixMarket matrix coordinate real general\n% c\n2 2 2\n1 1 2.0\n2 2 abc\n";
        let Err(MtxError::BadEntry { line, reason }) = read_sparse_mtx(badval.as_bytes()) else {
            panic!("expected BadEntry");
        };
        assert_eq!(line, 5);
        assert!(reason.contains("abc"));
    }

    #[test]
    fn error_messages_render() {
        let e = read_sparse_mtx("bogus\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("header"));
    }
}
