//! Single-threaded CPU reference implementations — the ground truth every
//! simulated kernel is verified against, and the measurement subject of the
//! paper's Table 2 (single-threaded CPU time breakdown).

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// `X * y` for CSR.
pub fn csr_mv(x: &CsrMatrix, y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.rows()];
    csr_mv_into(x, y, &mut out);
    out
}

/// `X * y` for CSR into a caller-provided buffer of length `rows` —
/// allocation-free, so wall-clock measurements can keep every output
/// buffer outside the timed region. Bit-identical to [`csr_mv`].
pub fn csr_mv_into(x: &CsrMatrix, y: &[f64], out: &mut [f64]) {
    assert_eq!(y.len(), x.cols(), "dimension mismatch in X*y");
    assert_eq!(out.len(), x.rows(), "output length mismatch in X*y");
    for (r, o) in out.iter_mut().enumerate() {
        *o = x.row_entries(r).map(|(c, v)| v * y[c as usize]).sum();
    }
}

/// `X^T * p` for CSR (row-wise scatter).
pub fn csr_tmv(x: &CsrMatrix, p: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; x.cols()];
    csr_tmv_into(x, p, &mut w);
    w
}

/// `X^T * p` for CSR into a caller-provided buffer of length `cols`
/// (overwritten, not accumulated into). Allocation-free; bit-identical
/// to [`csr_tmv`].
pub fn csr_tmv_into(x: &CsrMatrix, p: &[f64], w: &mut [f64]) {
    assert_eq!(p.len(), x.rows(), "dimension mismatch in X^T*p");
    assert_eq!(w.len(), x.cols(), "output length mismatch in X^T*p");
    w.fill(0.0);
    for (r, &pr) in p.iter().enumerate() {
        if pr != 0.0 {
            for (c, v) in x.row_entries(r) {
                w[c as usize] += v * pr;
            }
        }
    }
}

/// `X * y` for dense row-major.
pub fn dense_mv(x: &DenseMatrix, y: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.rows()];
    dense_mv_into(x, y, &mut out);
    out
}

/// `X * y` for dense row-major into a caller-provided buffer of length
/// `rows`. Allocation-free; bit-identical to [`dense_mv`].
pub fn dense_mv_into(x: &DenseMatrix, y: &[f64], out: &mut [f64]) {
    assert_eq!(y.len(), x.cols(), "dimension mismatch in X*y");
    assert_eq!(out.len(), x.rows(), "output length mismatch in X*y");
    for (r, o) in out.iter_mut().enumerate() {
        *o = x.row(r).iter().zip(y).map(|(a, b)| a * b).sum();
    }
}

/// `X^T * p` for dense row-major.
pub fn dense_tmv(x: &DenseMatrix, p: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; x.cols()];
    dense_tmv_into(x, p, &mut w);
    w
}

/// `X^T * p` for dense row-major into a caller-provided buffer of length
/// `cols` (overwritten, not accumulated into). Allocation-free;
/// bit-identical to [`dense_tmv`].
pub fn dense_tmv_into(x: &DenseMatrix, p: &[f64], w: &mut [f64]) {
    assert_eq!(p.len(), x.rows(), "dimension mismatch in X^T*p");
    assert_eq!(w.len(), x.cols(), "output length mismatch in X^T*p");
    w.fill(0.0);
    for (r, &pr) in p.iter().enumerate() {
        for (c, wv) in w.iter_mut().enumerate() {
            *wv += x.get(r, c) * pr;
        }
    }
}

/// The full generic pattern of Equation 1:
/// `w = alpha * X^T * (v .* (X * y)) + beta * z`, sparse input.
///
/// `v` and `z` are optional — `None` reproduces the simpler instantiations
/// of Table 1.
pub fn pattern_csr(
    alpha: f64,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    beta: f64,
    z: Option<&[f64]>,
) -> Vec<f64> {
    let mut p = csr_mv(x, y);
    if let Some(v) = v {
        assert_eq!(v.len(), x.rows());
        for (pi, vi) in p.iter_mut().zip(v) {
            *pi *= vi;
        }
    }
    let mut w = csr_tmv(x, &p);
    for wi in w.iter_mut() {
        *wi *= alpha;
    }
    if let Some(z) = z {
        assert_eq!(z.len(), x.cols());
        for (wi, zi) in w.iter_mut().zip(z) {
            *wi += beta * zi;
        }
    }
    w
}

/// The full generic pattern of Equation 1, dense input.
pub fn pattern_dense(
    alpha: f64,
    x: &DenseMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    beta: f64,
    z: Option<&[f64]>,
) -> Vec<f64> {
    let mut p = dense_mv(x, y);
    if let Some(v) = v {
        assert_eq!(v.len(), x.rows());
        for (pi, vi) in p.iter_mut().zip(v) {
            *pi *= vi;
        }
    }
    let mut w = dense_tmv(x, &p);
    for wi in w.iter_mut() {
        *wi *= alpha;
    }
    if let Some(z) = z {
        assert_eq!(z.len(), x.cols());
        for (wi, zi) in w.iter_mut().zip(z) {
            *wi += beta * zi;
        }
    }
    w
}

// ---- BLAS-1 reference ops (Listing 1's vector arithmetic) ----

/// `y += a * x`.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Squared 2-norm (`sum(r * r)` in Listing 1).
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// `x *= a`.
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Maximum absolute difference between two vectors (test helper).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 error `||a - b|| / max(||b||, eps)` (test helper for
/// comparing against atomics-reordered GPU results).
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let norm: f64 = b.iter().map(|x| x * x).sum();
    (diff / norm.max(1e-300)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{dense_random, random_vector, uniform_sparse};

    #[test]
    fn sparse_and_dense_paths_agree() {
        let xs = uniform_sparse(40, 30, 0.2, 9);
        let xd = xs.to_dense();
        let y = random_vector(30, 1);
        let v = random_vector(40, 2);
        let z = random_vector(30, 3);
        let ws = pattern_csr(2.0, &xs, Some(&v), &y, -0.5, Some(&z));
        let wd = pattern_dense(2.0, &xd, Some(&v), &y, -0.5, Some(&z));
        assert!(max_abs_diff(&ws, &wd) < 1e-12);
    }

    #[test]
    fn pattern_reduces_to_simple_instantiations() {
        let x = uniform_sparse(20, 10, 0.3, 4);
        let y = random_vector(10, 5);
        // alpha X^T (X y) with no v/z equals composing the two mat-vecs.
        let w = pattern_csr(1.0, &x, None, &y, 0.0, None);
        let expect = csr_tmv(&x, &csr_mv(&x, &y));
        assert!(max_abs_diff(&w, &expect) < 1e-12);
    }

    #[test]
    fn tmv_matches_explicit_transpose() {
        let x = uniform_sparse(25, 18, 0.15, 6);
        let p = random_vector(25, 7);
        let via_scatter = csr_tmv(&x, &p);
        let via_transpose = csr_mv(&x.transpose(), &p);
        assert!(max_abs_diff(&via_scatter, &via_transpose) < 1e-12);
    }

    #[test]
    fn blas1_ops() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        let mut x = vec![2.0, -4.0];
        scal(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn into_variants_match_allocating_forms_bit_for_bit() {
        let xs = uniform_sparse(35, 22, 0.2, 11);
        let xd = xs.to_dense();
        let y = random_vector(22, 12);
        let p = random_vector(35, 13);

        let mut mv = vec![f64::NAN; 35];
        csr_mv_into(&xs, &y, &mut mv);
        assert_bits_eq(&mv, &csr_mv(&xs, &y));

        // Stale garbage in the output buffer must not leak through: the
        // _into forms overwrite, they do not accumulate.
        let mut tmv = vec![f64::NAN; 22];
        csr_tmv_into(&xs, &p, &mut tmv);
        assert_bits_eq(&tmv, &csr_tmv(&xs, &p));

        let mut dmv = vec![f64::NAN; 35];
        dense_mv_into(&xd, &y, &mut dmv);
        assert_bits_eq(&dmv, &dense_mv(&xd, &y));

        let mut dtmv = vec![f64::NAN; 22];
        dense_tmv_into(&xd, &p, &mut dtmv);
        assert_bits_eq(&dtmv, &dense_tmv(&xd, &p));
    }

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn into_variants_check_output_length() {
        let x = uniform_sparse(4, 3, 0.5, 1);
        let mut out = vec![0.0; 3];
        csr_mv_into(&x, &[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn dense_tmv_matches_transpose_mv() {
        let x = dense_random(12, 7, 3);
        let p = random_vector(12, 4);
        let a = dense_tmv(&x, &p);
        let b = dense_mv(&x.transpose(), &p);
        assert!(max_abs_diff(&a, &b) < 1e-12);
    }
}
