//! Compressed Sparse Column storage — the output of cuSPARSE's `csr2csc`,
//! needed for the explicit-transpose baseline the paper measures against
//! (Fig. 2's amortization study).

use crate::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// CSC sparse matrix of f64 with u32 row indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_off: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from raw parts, validating the CSC invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        col_off: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(col_off.len(), cols + 1, "col_off must have cols+1 entries");
        assert_eq!(col_off[0], 0);
        assert_eq!(*col_off.last().unwrap(), row_idx.len());
        assert_eq!(row_idx.len(), values.len());
        for c in 0..cols {
            assert!(col_off[c] <= col_off[c + 1], "col_off must be monotone");
        }
        for c in 0..cols {
            let rows_of_col = &row_idx[col_off[c]..col_off[c + 1]];
            for w in rows_of_col.windows(2) {
                assert!(
                    w[0] < w[1],
                    "rows within a column must be strictly increasing"
                );
            }
            if let Some(&last) = rows_of_col.last() {
                assert!((last as usize) < rows, "row index {last} out of range");
            }
        }
        CscMatrix {
            rows,
            cols,
            col_off,
            row_idx,
            values,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn col_off(&self) -> &[usize] {
        &self.col_off
    }

    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(row, value)` pairs of column `c`.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let span = self.col_off[c]..self.col_off[c + 1];
        self.row_idx[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for (r, v) in self.col_entries(c) {
                d.set(r as usize, c, v);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    #[test]
    fn csc_from_csr_matches() {
        let csr = CsrMatrix::from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![5.0, 6.0, 7.0]);
        let csc = csr.to_csc();
        assert_eq!(csc.col_entries(0).collect::<Vec<_>>(), vec![(0, 5.0)]);
        assert_eq!(csc.col_entries(1).collect::<Vec<_>>(), vec![(1, 7.0)]);
        assert_eq!(csc.col_entries(2).collect::<Vec<_>>(), vec![(0, 6.0)]);
        assert_eq!(csc.to_dense(), csr.to_dense());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_bad_offsets() {
        CscMatrix::from_parts(2, 2, vec![0, 2, 0], vec![], vec![]);
    }
}
