//! Coordinate-format triplets, the natural output of the synthetic data
//! generators before compression to CSR.

use serde::{Deserialize, Serialize};

/// A bag of `(row, col, value)` triplets. Duplicates are allowed and are
/// summed on conversion to CSR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    rows: usize,
    cols: usize,
    triplets: Vec<(u32, u32, f64)>,
}

impl Coo {
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Coo {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut c = Self::new(rows, cols);
        c.triplets.reserve(cap);
        c
    }

    /// Add one entry.
    ///
    /// # Panics
    /// If the coordinate is out of bounds.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "coordinate out of bounds");
        self.triplets.push((r as u32, c as u32, v));
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    pub fn triplets(&self) -> &[(u32, u32, f64)] {
        &self.triplets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    #[test]
    fn coo_to_csr_sums_duplicates() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, -1.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_entries(0).collect::<Vec<_>>(), vec![(1, 3.5)]);
        assert_eq!(csr.row_entries(1).collect::<Vec<_>>(), vec![(0, -1.0)]);
    }

    #[test]
    fn empty_rows_handled() {
        let mut coo = Coo::new(4, 3);
        coo.push(3, 2, 9.0);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(3), 1);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_checks_bounds() {
        Coo::new(1, 1).push(1, 0, 1.0);
    }
}
