//! # fusedml-matrix
//!
//! Matrix substrate for the kernel-fusion reproduction: dense row-major and
//! sparse (CSR/CSC/COO) formats, synthetic workload generators shaped like
//! the paper's data sets, summary statistics for the launch-parameter
//! tuner, and single-threaded CPU reference implementations of every
//! operation (the ground truth all simulated kernels are checked against).

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod error;
pub mod gen;
pub mod hyb;
pub mod io;
pub mod reference;
pub mod stats;

pub use coo::Coo;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use ell::EllMatrix;
pub use error::FormatError;
pub use hyb::HybMatrix;
pub use stats::SparseStats;
