//! ELLPACK (ELL) sparse storage — the other format of Bell & Garland \[3\],
//! whose CSR-vector kernel the paper's fused kernels build on.
//!
//! Every row is padded to a fixed width `K`; slots are stored
//! **column-major** (`data[slot * rows + row]`), so one-thread-per-row
//! SpMV reads perfectly coalesced. The cost is padding: ELL is great for
//! uniform row lengths (the paper's synthetic sweeps) and terrible for
//! power-law rows (the KDD regime) — which is exactly the trade the
//! extension experiment `repro ell` measures.

use crate::csr::CsrMatrix;
use crate::error::FormatError;
use serde::{Deserialize, Serialize};

/// Column sentinel marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

/// An ELLPACK matrix with column-major slot storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    /// Slots per row.
    width: usize,
    /// `width * rows` column indices, slot-major; `ELL_PAD` in padding.
    col_idx: Vec<u32>,
    /// `width * rows` values, slot-major; 0.0 in padding.
    values: Vec<f64>,
    /// True non-zeros (excluding padding).
    nnz: usize,
}

impl EllMatrix {
    /// Convert from CSR with `K = max row length`.
    pub fn from_csr(x: &CsrMatrix) -> Self {
        let width = (0..x.rows()).map(|r| x.row_nnz(r)).max().unwrap_or(0);
        Self::from_csr_with_width(x, width).expect("max width always fits")
    }

    /// Convert from CSR with an explicit width; `None` if any row exceeds
    /// it (use [`crate::hyb::HybMatrix`] to spill instead).
    pub fn from_csr_with_width(x: &CsrMatrix, width: usize) -> Option<Self> {
        Self::try_from_csr_with_width(x, width).ok()
    }

    /// Convert from CSR with an explicit width, reporting *which* row
    /// overflowed when the width is too small — for callers picking a
    /// width from external configuration rather than from the matrix.
    pub fn try_from_csr_with_width(x: &CsrMatrix, width: usize) -> Result<Self, FormatError> {
        let rows = x.rows();
        let mut col_idx = vec![ELL_PAD; width * rows];
        let mut values = vec![0.0; width * rows];
        for r in 0..rows {
            if x.row_nnz(r) > width {
                return Err(FormatError::RowTooWide {
                    row: r,
                    row_nnz: x.row_nnz(r),
                    width,
                });
            }
            for (slot, (c, v)) in x.row_entries(r).enumerate() {
                col_idx[slot * rows + r] = c;
                values[slot * rows + r] = v;
            }
        }
        Ok(EllMatrix {
            rows,
            cols: x.cols(),
            width,
            col_idx,
            values,
            nnz: x.nnz(),
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn nnz(&self) -> usize {
        self.nnz
    }

    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Stored slots (including padding).
    pub fn slots(&self) -> usize {
        self.width * self.rows
    }

    /// Fraction of stored slots that are padding, in [0, 1).
    pub fn padding_ratio(&self) -> f64 {
        if self.slots() == 0 {
            0.0
        } else {
            1.0 - self.nnz as f64 / self.slots() as f64
        }
    }

    /// Device byte footprint (values + column indices, padding included).
    pub fn size_bytes(&self) -> u64 {
        (self.slots() * (8 + 4)) as u64
    }

    /// Entry at `(row, slot)`, `None` for padding.
    #[inline]
    pub fn entry(&self, row: usize, slot: usize) -> Option<(u32, f64)> {
        let i = slot * self.rows + row;
        let c = self.col_idx[i];
        (c != ELL_PAD).then(|| (c, self.values[i]))
    }

    /// Reference SpMV `p = X * y`.
    pub fn spmv_ref(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                (0..self.width)
                    .filter_map(|s| self.entry(r, s))
                    .map(|(c, v)| v * y[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Back to CSR (exact; drops padding).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = crate::coo::Coo::with_capacity(self.rows, self.cols, self.nnz);
        for r in 0..self.rows {
            for s in 0..self.width {
                if let Some((c, v)) = self.entry(r, s) {
                    coo.push(r, c as usize, v);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{powerlaw_sparse, random_vector, uniform_sparse};
    use crate::reference;

    #[test]
    fn csr_roundtrip() {
        let x = uniform_sparse(50, 40, 0.1, 3);
        let ell = EllMatrix::from_csr(&x);
        assert_eq!(ell.nnz(), x.nnz());
        assert_eq!(ell.to_csr(), x);
        // Uniform rows: zero padding.
        assert_eq!(ell.padding_ratio(), 0.0);
    }

    #[test]
    fn spmv_matches_csr() {
        let x = powerlaw_sparse(120, 80, 5.0, 0.8, 4);
        let ell = EllMatrix::from_csr(&x);
        let y = random_vector(80, 5);
        let a = ell.spmv_ref(&y);
        let b = reference::csr_mv(&x, &y);
        assert!(reference::max_abs_diff(&a, &b) < 1e-12);
    }

    #[test]
    fn powerlaw_pads_heavily() {
        let x = powerlaw_sparse(500, 2000, 4.0, 0.8, 6);
        let ell = EllMatrix::from_csr(&x);
        assert!(
            ell.padding_ratio() > 0.4,
            "skewed rows should pad: ratio {}",
            ell.padding_ratio()
        );
        assert!(ell.size_bytes() > x.size_bytes());
    }

    #[test]
    fn bounded_width_rejects_long_rows() {
        let x = powerlaw_sparse(100, 200, 6.0, 0.8, 7);
        let max = (0..100).map(|r| x.row_nnz(r)).max().unwrap();
        assert!(EllMatrix::from_csr_with_width(&x, max).is_some());
        assert!(EllMatrix::from_csr_with_width(&x, max - 1).is_none());
    }

    #[test]
    fn bounded_width_error_names_the_overflowing_row() {
        let x = CsrMatrix::from_parts(2, 3, vec![0, 1, 4], vec![0, 0, 1, 2], vec![1.0; 4]);
        let err = EllMatrix::try_from_csr_with_width(&x, 2).unwrap_err();
        assert_eq!(
            err,
            crate::error::FormatError::RowTooWide {
                row: 1,
                row_nnz: 3,
                width: 2
            }
        );
        assert!(err.to_string().contains("row 1"));
        assert!(EllMatrix::try_from_csr_with_width(&x, 3).is_ok());
    }

    #[test]
    fn column_major_layout() {
        // [10 20; 30 0]: slot 0 holds rows' first entries adjacently.
        let x = CsrMatrix::from_parts(2, 2, vec![0, 2, 3], vec![0, 1, 0], vec![10.0, 20.0, 30.0]);
        let ell = EllMatrix::from_csr(&x);
        assert_eq!(ell.width(), 2);
        assert_eq!(&ell.values()[0..2], &[10.0, 30.0]); // slot 0, rows 0..2
        assert_eq!(ell.values()[2], 20.0); // slot 1, row 0
        assert_eq!(ell.col_idx()[3], ELL_PAD); // slot 1, row 1: padding
    }

    #[test]
    fn empty_matrix() {
        let x = CsrMatrix::empty(5, 5);
        let ell = EllMatrix::from_csr(&x);
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.spmv_ref(&[0.0; 5]), vec![0.0; 5]);
    }
}
