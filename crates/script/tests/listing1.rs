//! End-to-end: the paper's Listing 1 runs verbatim through the script
//! frontend, produces the same weights as the hand-written LR-CG, and the
//! fused engine transparently dispatches one fused kernel per iteration.

use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_ml::{lr_cg, CpuBackend, LrCgOptions};
use fusedml_script::{count_fused, optimize, parse, EngineMode, Interpreter, Value, LISTING_1};

fn problem() -> (fusedml_matrix::CsrMatrix, Vec<f64>) {
    let x = uniform_sparse(400, 60, 0.15, 7);
    let w_true = random_vector(60, 8);
    let labels = reference::csr_mv(&x, &w_true);
    (x, labels)
}

fn script_weights(
    interp: &mut Interpreter,
    x: &fusedml_matrix::CsrMatrix,
    labels: &[f64],
) -> Vec<f64> {
    interp.bind_sparse("V", x.clone());
    interp.bind_vector("y", labels.to_vec());
    interp.run(LISTING_1).expect("listing 1 runs");
    match &interp.outputs()["w"] {
        Value::Vector(w) => (**w).clone(),
        other => panic!("expected vector output, got {other:?}"),
    }
}

#[test]
fn listing1_host_matches_handwritten_lr_cg() {
    let (x, labels) = problem();
    let mut interp = Interpreter::host_only();
    let w_script = script_weights(&mut interp, &x, &labels);

    let mut backend = CpuBackend::new_sparse(x.clone());
    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 1e-6,
        max_iterations: 100,
    };
    let r = lr_cg(&mut backend, &labels, opts);
    assert!(
        reference::rel_l2_error(&w_script, &r.weights) < 1e-8,
        "script vs handwritten: {}",
        reference::rel_l2_error(&w_script, &r.weights)
    );
}

#[test]
fn listing1_fused_gpu_matches_host() {
    let (x, labels) = problem();
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);

    let mut host = Interpreter::host_only();
    let w_host = script_weights(&mut host, &x, &labels);

    let mut fused = Interpreter::on_gpu(&gpu, EngineMode::FusedGpu);
    let w_fused = script_weights(&mut fused, &x, &labels);

    assert!(reference::rel_l2_error(&w_fused, &w_host) < 1e-7);
    // One fused evaluation per CG iteration plus the init t(V)%*%y.
    assert!(fused.stats.fused_evals >= 10, "{:?}", fused.stats);
    assert!(fused.stats.sim_ms > 0.0);
}

#[test]
fn fused_engine_beats_baseline_engine() {
    let (x, labels) = {
        let x = uniform_sparse(5000, 400, 0.02, 9);
        let w_true = random_vector(400, 10);
        let labels = reference::csr_mv(&x, &w_true);
        (x, labels)
    };
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);

    let mut fused = Interpreter::on_gpu(&gpu, EngineMode::FusedGpu);
    let w_fused = script_weights(&mut fused, &x, &labels);

    gpu.flush_caches();
    let mut base = Interpreter::on_gpu(&gpu, EngineMode::BaselineGpu);
    let w_base = script_weights(&mut base, &x, &labels);

    assert!(reference::rel_l2_error(&w_fused, &w_base) < 1e-7);
    assert_eq!(base.stats.fused_evals, 0, "baseline must not fuse");
    assert!(fused.stats.fused_evals > 0);
    assert!(
        fused.stats.sim_ms < base.stats.sim_ms,
        "fused {} ms vs baseline {} ms",
        fused.stats.sim_ms,
        base.stats.sim_ms
    );
    assert!(fused.stats.launches < base.stats.launches);
}

#[test]
fn optimizer_reports_fusions_in_listing1() {
    let prog = optimize(&parse(LISTING_1).unwrap());
    assert_eq!(count_fused(&prog), 3);
}

#[test]
fn hits_script_runs_on_all_engines() {
    // HITS as a DML script: the X^T(Xy) instantiation.
    let src = r#"
        A = read("A");
        a = read("a0");
        i = 0;
        while (i < 10) {
            a = t(A) %*% (A %*% a);
            norm = sum(a * a) ^ 0.5;
            a = a / norm;
            i = i + 1;
        }
        write(a, "authorities");
    "#;
    let graph = uniform_sparse(200, 200, 0.05, 11);
    let a0 = vec![1.0 / (200f64).sqrt(); 200];
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);

    let run = |interp: &mut Interpreter| -> Vec<f64> {
        interp.bind_sparse("A", graph.clone());
        interp.bind_vector("a0", a0.clone());
        interp.run(src).unwrap();
        match &interp.outputs()["authorities"] {
            Value::Vector(v) => (**v).clone(),
            other => panic!("{other:?}"),
        }
    };

    let mut host = Interpreter::host_only();
    let w_host = run(&mut host);
    let mut fused = Interpreter::on_gpu(&gpu, EngineMode::FusedGpu);
    let w_fused = run(&mut fused);
    let mut base = Interpreter::on_gpu(&gpu, EngineMode::BaselineGpu);
    let w_base = run(&mut base);

    assert!(reference::rel_l2_error(&w_fused, &w_host) < 1e-8);
    assert!(reference::rel_l2_error(&w_base, &w_host) < 1e-8);
    assert_eq!(fused.stats.fused_evals, 10);
    // Unit norm.
    let n: f64 = w_host.iter().map(|v| v * v).sum();
    assert!((n - 1.0).abs() < 1e-9);
}

#[test]
fn dense_matrices_work_through_scripts() {
    let x = fusedml_matrix::gen::dense_random(300, 28, 12);
    let w_true = random_vector(28, 13);
    let labels = reference::dense_mv(&x, &w_true);
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);

    let mut fused = Interpreter::on_gpu(&gpu, EngineMode::FusedGpu);
    fused.bind_dense("V", x.clone());
    fused.bind_vector("y", labels.clone());
    fused.run(LISTING_1).unwrap();
    let Value::Vector(w) = &fused.outputs()["w"] else {
        panic!()
    };
    assert!(
        reference::rel_l2_error(w, &w_true) < 1e-3,
        "err {}",
        reference::rel_l2_error(w, &w_true)
    );
    assert!(fused.stats.fused_evals > 0);
}

#[test]
fn runaway_loop_is_stopped() {
    let mut interp = Interpreter::host_only();
    interp.max_statements = 1000;
    let err = interp
        .run("i = 0\nwhile (1 > 0) { i = i + 1 }")
        .unwrap_err();
    assert!(err.message.contains("budget"));
}

#[test]
fn type_errors_carry_line_numbers() {
    let mut interp = Interpreter::host_only();
    interp.bind_vector("y", vec![1.0, 2.0]);
    let err = interp.run("y = read(\"y\")\nz = y %*% 3").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("%*%"));
}
