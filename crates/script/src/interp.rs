//! The mini-DML interpreter.
//!
//! Numeric semantics follow R/DML for the supported subset: scalars
//! broadcast over vectors, `%*%` multiplies matrices and vectors, `t(p)
//! %*% q` of two vectors is a dot product. Three execution engines share
//! the same semantics and differ only in what the hot operators cost:
//!
//! * [`EngineMode::FusedGpu`] — the program is run through the fusion
//!   optimizer first; `FusedPattern` nodes execute on the simulated device
//!   via the paper's fused kernels (§4.4's "transparently selects").
//! * [`EngineMode::BaselineGpu`] — no fusion; every matrix product is an
//!   operator-level kernel (cuSPARSE/cuBLAS composition).
//! * [`EngineMode::HostOnly`] — reference CPU execution, no device costs.

use crate::ast::{BinOp, Expr, FusedPattern, Program, Stmt, UnaryOp};
use crate::optimizer::optimize;
use crate::parser::{parse, ParseError};
use crate::value::{HostMatrix, MatrixVal, Value};
use fusedml_blas::{BaselineEngine, Flavor, GpuCsr, GpuDense};
use fusedml_core::{FusedExecutor, PatternSpec};
use fusedml_gpu_sim::Gpu;
use fusedml_matrix::{reference, CsrMatrix, DenseMatrix};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// How the interpreter executes matrix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    FusedGpu,
    BaselineGpu,
    HostOnly,
}

/// Execution statistics of one script run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Simulated device milliseconds (0 in host-only mode).
    pub sim_ms: f64,
    /// Device kernel launches.
    pub launches: usize,
    /// Fused-pattern kernel evaluations.
    pub fused_evals: usize,
    /// Operator-level matrix-vector products.
    pub matmul_evals: usize,
    /// Statements executed (loop bodies counted per iteration).
    pub statements: usize,
}

/// A script runtime error with the source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError {
            line: e.line,
            message: e.message,
        }
    }
}

enum DeviceMat {
    Sparse(GpuCsr),
    Dense(GpuDense),
}

/// The interpreter. Bind inputs with the `bind_*` methods, then
/// [`Interpreter::run`]; `write(x, "name")` results land in
/// [`Interpreter::outputs`].
pub struct Interpreter<'g> {
    mode: EngineMode,
    gpu: Option<&'g Gpu>,
    inputs: HashMap<String, Value>,
    vars: HashMap<String, Value>,
    outputs: HashMap<String, Value>,
    device_cache: HashMap<u64, DeviceMat>,
    next_matrix_id: u64,
    /// Safety valve against runaway `while` loops.
    pub max_statements: usize,
    pub stats: RunStats,
}

impl<'g> Interpreter<'g> {
    /// Host-only interpreter (reference semantics, no device).
    pub fn host_only() -> Self {
        Self::new(EngineMode::HostOnly, None)
    }

    /// Device-backed interpreter.
    pub fn on_gpu(gpu: &'g Gpu, mode: EngineMode) -> Self {
        assert_ne!(mode, EngineMode::HostOnly, "use host_only()");
        Self::new(mode, Some(gpu))
    }

    fn new(mode: EngineMode, gpu: Option<&'g Gpu>) -> Self {
        Interpreter {
            mode,
            gpu,
            inputs: HashMap::new(),
            vars: HashMap::new(),
            outputs: HashMap::new(),
            device_cache: HashMap::new(),
            next_matrix_id: 0,
            max_statements: 1_000_000,
            stats: RunStats::default(),
        }
    }

    /// Bind a sparse matrix for `read("name")`.
    pub fn bind_sparse(&mut self, name: &str, x: CsrMatrix) {
        let id = self.fresh_id();
        self.inputs.insert(
            name.to_string(),
            Value::Matrix(Rc::new(MatrixVal {
                id,
                data: HostMatrix::Sparse(x),
            })),
        );
    }

    /// Bind a dense matrix for `read("name")`.
    pub fn bind_dense(&mut self, name: &str, x: DenseMatrix) {
        let id = self.fresh_id();
        self.inputs.insert(
            name.to_string(),
            Value::Matrix(Rc::new(MatrixVal {
                id,
                data: HostMatrix::Dense(x),
            })),
        );
    }

    /// Bind a (column-)vector for `read("name")`.
    pub fn bind_vector(&mut self, name: &str, v: Vec<f64>) {
        self.inputs.insert(name.to_string(), Value::vector(v));
    }

    /// Bind a scalar for `read("name")`.
    pub fn bind_scalar(&mut self, name: &str, v: f64) {
        self.inputs.insert(name.to_string(), Value::Scalar(v));
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_matrix_id += 1;
        self.next_matrix_id
    }

    /// Values passed to `write(x, "name")`.
    pub fn outputs(&self) -> &HashMap<String, Value> {
        &self.outputs
    }

    /// Variable lookup after a run (diagnostics).
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Parse, (maybe) optimize, and execute a script.
    pub fn run(&mut self, src: &str) -> Result<(), ScriptError> {
        let prog = parse(src)?;
        let prog = match self.mode {
            EngineMode::FusedGpu => optimize(&prog),
            _ => prog,
        };
        self.run_program(&prog)
    }

    /// Execute an already-parsed program (no optimizer pass).
    pub fn run_program(&mut self, prog: &Program) -> Result<(), ScriptError> {
        self.exec_block(&prog.statements)
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<(), ScriptError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<(), ScriptError> {
        self.stats.statements += 1;
        if self.stats.statements > self.max_statements {
            return Err(ScriptError {
                line: stmt_line(s),
                message: format!(
                    "statement budget ({}) exhausted — non-terminating loop?",
                    self.max_statements
                ),
            });
        }
        match s {
            Stmt::Assign { name, value, line } => {
                let v = self.eval(value, *line)?;
                self.vars.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Expr { value, line } => {
                self.eval(value, *line)?;
                Ok(())
            }
            Stmt::While { cond, body, line } => loop {
                let c = self.eval(cond, *line)?;
                let go = c.truthy().ok_or_else(|| ScriptError {
                    line: *line,
                    message: format!("while condition must be scalar, got {}", c.type_name()),
                })?;
                if !go {
                    return Ok(());
                }
                self.exec_block(body)?;
                self.stats.statements += 1;
                if self.stats.statements > self.max_statements {
                    return Err(ScriptError {
                        line: *line,
                        message: "statement budget exhausted in while loop".into(),
                    });
                }
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let c = self.eval(cond, *line)?;
                let go = c.truthy().ok_or_else(|| ScriptError {
                    line: *line,
                    message: format!("if condition must be scalar, got {}", c.type_name()),
                })?;
                if go {
                    self.exec_block(then_body)
                } else {
                    self.exec_block(else_body)
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr, line: usize) -> Result<Value, ScriptError> {
        match e {
            Expr::Number(v) => Ok(Value::Scalar(*v)),
            Expr::Str(s) => Ok(Value::Str(Rc::new(s.clone()))),
            Expr::Ident(name) => self.vars.get(name).cloned().ok_or_else(|| ScriptError {
                line,
                message: format!("undefined variable '{name}'"),
            }),
            Expr::Unary(op, a) => {
                let v = self.eval(a, line)?;
                self.unary(*op, v, line)
            }
            Expr::Binary(op, a, b) => {
                let l = self.eval(a, line)?;
                let r = self.eval(b, line)?;
                self.binary(*op, l, r, line)
            }
            Expr::Call { name, args } => self.call(name, args, line),
            Expr::FusedPattern(p) => self.eval_fused(p, line),
        }
    }

    fn unary(&mut self, op: UnaryOp, v: Value, line: usize) -> Result<Value, ScriptError> {
        match (op, v) {
            (UnaryOp::Neg, Value::Scalar(x)) => Ok(Value::Scalar(-x)),
            (UnaryOp::Neg, Value::Vector(x)) => Ok(Value::vector(x.iter().map(|v| -v).collect())),
            (UnaryOp::Not, Value::Scalar(x)) => Ok(Value::Scalar(if x == 0.0 { 1.0 } else { 0.0 })),
            (op, v) => Err(ScriptError {
                line,
                message: format!("cannot apply {op:?} to {}", v.type_name()),
            }),
        }
    }

    fn binary(&mut self, op: BinOp, l: Value, r: Value, line: usize) -> Result<Value, ScriptError> {
        use BinOp::*;
        if op == MatMul {
            return self.matmul(l, r, line);
        }
        match (l, r) {
            (Value::Scalar(a), Value::Scalar(b)) => Ok(Value::Scalar(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Pow => a.powf(b),
                Eq => (a == b) as i32 as f64,
                Ne => (a != b) as i32 as f64,
                Lt => (a < b) as i32 as f64,
                Le => (a <= b) as i32 as f64,
                Gt => (a > b) as i32 as f64,
                Ge => (a >= b) as i32 as f64,
                And => ((a != 0.0) && (b != 0.0)) as i32 as f64,
                Or => ((a != 0.0) || (b != 0.0)) as i32 as f64,
                MatMul => unreachable!(),
            })),
            (Value::Vector(a), Value::Vector(b)) => {
                if a.len() != b.len() {
                    return Err(ScriptError {
                        line,
                        message: format!(
                            "element-wise {op} on vectors of length {} and {}",
                            a.len(),
                            b.len()
                        ),
                    });
                }
                let f = elementwise_fn(op).ok_or_else(|| ScriptError {
                    line,
                    message: format!("operator {op} not supported on vectors"),
                })?;
                Ok(Value::vector(
                    a.iter().zip(b.iter()).map(|(x, y)| f(*x, *y)).collect(),
                ))
            }
            (Value::Scalar(a), Value::Vector(b)) => {
                let f = elementwise_fn(op).ok_or_else(|| ScriptError {
                    line,
                    message: format!("operator {op} not supported on vectors"),
                })?;
                Ok(Value::vector(b.iter().map(|y| f(a, *y)).collect()))
            }
            (Value::Vector(a), Value::Scalar(b)) => {
                let f = elementwise_fn(op).ok_or_else(|| ScriptError {
                    line,
                    message: format!("operator {op} not supported on vectors"),
                })?;
                Ok(Value::vector(a.iter().map(|x| f(*x, b)).collect()))
            }
            (l, r) => Err(ScriptError {
                line,
                message: format!(
                    "operator {op} not defined on {} and {}",
                    l.type_name(),
                    r.type_name()
                ),
            }),
        }
    }

    /// `%*%` over the supported operand shapes.
    fn matmul(&mut self, l: Value, r: Value, line: usize) -> Result<Value, ScriptError> {
        match (l, r) {
            // X %*% y
            (Value::Matrix(x), Value::Vector(y)) => {
                if x.data.cols() != y.len() {
                    return Err(ScriptError {
                        line,
                        message: format!(
                            "X %*% y: {} columns vs vector length {}",
                            x.data.cols(),
                            y.len()
                        ),
                    });
                }
                self.stats.matmul_evals += 1;
                self.device_mv(&x, &y, line)
            }
            // t(X) %*% p  (unfused / baseline path)
            (Value::Transposed(inner), r) => match (*inner, r) {
                (Value::Matrix(x), Value::Vector(p)) => {
                    if x.data.rows() != p.len() {
                        return Err(ScriptError {
                            line,
                            message: format!(
                                "t(X) %*% p: {} rows vs vector length {}",
                                x.data.rows(),
                                p.len()
                            ),
                        });
                    }
                    self.stats.matmul_evals += 1;
                    self.device_tmv(&x, &p, line)
                }
                // t(p) %*% q: dot product.
                (Value::Vector(p), Value::Vector(q)) => {
                    if p.len() != q.len() {
                        return Err(ScriptError {
                            line,
                            message: "dot product length mismatch".into(),
                        });
                    }
                    self.charge_dot(p.len());
                    Ok(Value::Scalar(reference::dot(&p, &q)))
                }
                (l, r) => Err(ScriptError {
                    line,
                    message: format!(
                        "%*% not defined on t({}) and {}",
                        l.type_name(),
                        r.type_name()
                    ),
                }),
            },
            (l, r) => Err(ScriptError {
                line,
                message: format!("%*% not defined on {} and {}", l.type_name(), r.type_name()),
            }),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[crate::ast::Arg],
        line: usize,
    ) -> Result<Value, ScriptError> {
        let err = |msg: String| ScriptError { line, message: msg };
        match name {
            "read" => {
                let key = self.string_arg(args, 0, line)?;
                self.inputs
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| err(format!("no input bound for read(\"{key}\")")))
            }
            "write" => {
                if args.len() != 2 {
                    return Err(err("write(x, \"name\") takes two arguments".into()));
                }
                let v = self.eval(&args[0].value, line)?;
                let key = self.string_arg(args, 1, line)?;
                self.outputs.insert(key, v);
                Ok(Value::Scalar(0.0))
            }
            "t" => {
                if args.len() != 1 {
                    return Err(err("t(x) takes one argument".into()));
                }
                let v = self.eval(&args[0].value, line)?;
                Ok(Value::Transposed(Box::new(v)))
            }
            "sum" => {
                let v = self.positional_arg(args, 0, line)?;
                match v {
                    Value::Vector(x) => {
                        self.charge_dot(x.len());
                        Ok(Value::Scalar(x.iter().sum()))
                    }
                    Value::Scalar(x) => Ok(Value::Scalar(x)),
                    other => Err(err(format!("sum() of {}", other.type_name()))),
                }
            }
            "nrow" | "ncol" => {
                let v = self.positional_arg(args, 0, line)?;
                match v {
                    Value::Matrix(m) => Ok(Value::Scalar(if name == "nrow" {
                        m.data.rows() as f64
                    } else {
                        m.data.cols() as f64
                    })),
                    Value::Vector(x) => Ok(Value::Scalar(if name == "nrow" {
                        x.len() as f64
                    } else {
                        1.0
                    })),
                    other => Err(err(format!("{name}() of {}", other.type_name()))),
                }
            }
            "matrix" => {
                // matrix(fill, rows=R, cols=C) with C == 1 (column vector).
                let fill = self
                    .positional_arg(args, 0, line)?
                    .as_scalar()
                    .ok_or_else(|| err("matrix() fill value must be scalar".into()))?;
                let rows = self.named_scalar(args, "rows", line)?;
                let cols = self.named_scalar(args, "cols", line)?;
                if cols != 1.0 && rows != 1.0 {
                    return Err(err("matrix(): only row/column vectors are supported".into()));
                }
                let len = (rows * cols) as usize;
                Ok(Value::vector(vec![fill; len]))
            }
            "sqrt" | "abs" | "exp" | "log" => {
                let v = self.positional_arg(args, 0, line)?;
                let f = match name {
                    "sqrt" => f64::sqrt,
                    "abs" => f64::abs,
                    "exp" => f64::exp,
                    _ => f64::ln,
                };
                match v {
                    Value::Scalar(x) => Ok(Value::Scalar(f(x))),
                    Value::Vector(x) => Ok(Value::vector(x.iter().map(|v| f(*v)).collect())),
                    other => Err(err(format!("{name}() of {}", other.type_name()))),
                }
            }
            "min" | "max" => {
                let a = self
                    .positional_arg(args, 0, line)?
                    .as_scalar()
                    .ok_or_else(|| err(format!("{name}() takes scalars")))?;
                let b = self
                    .positional_arg(args, 1, line)?
                    .as_scalar()
                    .ok_or_else(|| err(format!("{name}() takes scalars")))?;
                Ok(Value::Scalar(if name == "min" {
                    a.min(b)
                } else {
                    a.max(b)
                }))
            }
            other => Err(err(format!("unknown function '{other}'"))),
        }
    }

    fn positional_arg(
        &mut self,
        args: &[crate::ast::Arg],
        idx: usize,
        line: usize,
    ) -> Result<Value, ScriptError> {
        let arg = args.get(idx).ok_or_else(|| ScriptError {
            line,
            message: format!("missing argument {idx}"),
        })?;
        self.eval(&arg.value, line)
    }

    fn string_arg(
        &mut self,
        args: &[crate::ast::Arg],
        idx: usize,
        line: usize,
    ) -> Result<String, ScriptError> {
        match self.positional_arg(args, idx, line)? {
            Value::Str(s) => Ok((*s).clone()),
            other => Err(ScriptError {
                line,
                message: format!("expected a string argument, got {}", other.type_name()),
            }),
        }
    }

    fn named_scalar(
        &mut self,
        args: &[crate::ast::Arg],
        name: &str,
        line: usize,
    ) -> Result<f64, ScriptError> {
        let arg = args
            .iter()
            .find(|a| a.name.as_deref() == Some(name))
            .ok_or_else(|| ScriptError {
                line,
                message: format!("missing named argument '{name}'"),
            })?;
        let value = arg.value.clone();
        self.eval(&value, line)?
            .as_scalar()
            .ok_or_else(|| ScriptError {
                line,
                message: format!("argument '{name}' must be scalar"),
            })
    }

    // ------------- device dispatch -------------

    fn device_matrix(&mut self, m: &Rc<MatrixVal>) -> Option<&DeviceMat> {
        let gpu = self.gpu?;
        let id = m.id;
        self.device_cache
            .entry(id)
            .or_insert_with(|| match &m.data {
                HostMatrix::Sparse(x) => DeviceMat::Sparse(GpuCsr::upload(gpu, "script.X", x)),
                HostMatrix::Dense(x) => DeviceMat::Dense(GpuDense::upload(gpu, "script.X", x)),
            });
        self.device_cache.get(&id)
    }

    /// `X %*% y` with per-mode cost accounting.
    fn device_mv(
        &mut self,
        x: &Rc<MatrixVal>,
        y: &[f64],
        _line: usize,
    ) -> Result<Value, ScriptError> {
        if self.mode == EngineMode::HostOnly || self.gpu.is_none() {
            return Ok(Value::vector(host_mv(&x.data, y)));
        }
        let gpu = self.gpu.expect("checked");
        self.device_matrix(x);
        let yd = gpu.upload_f64("script.y", y);
        let out = gpu.alloc_f64("script.p", x.data.rows());
        let mut engine = BaselineEngine::new(gpu, Flavor::CuLibs);
        match self.device_cache.get(&x.id).expect("cached") {
            DeviceMat::Sparse(xd) => engine.csrmv(&xd.clone(), &yd, &out),
            DeviceMat::Dense(xd) => engine.gemv(&xd.clone(), &yd, &out),
        }
        self.stats.sim_ms += engine.total_sim_ms();
        self.stats.launches += engine.launch_count();
        Ok(Value::vector(out.to_vec_f64()))
    }

    /// `t(X) %*% p` — the baseline's slow path.
    fn device_tmv(
        &mut self,
        x: &Rc<MatrixVal>,
        p: &[f64],
        _line: usize,
    ) -> Result<Value, ScriptError> {
        if self.mode == EngineMode::HostOnly || self.gpu.is_none() {
            return Ok(Value::vector(host_tmv(&x.data, p)));
        }
        let gpu = self.gpu.expect("checked");
        self.device_matrix(x);
        let pd = gpu.upload_f64("script.p", p);
        let out = gpu.alloc_f64("script.w", x.data.cols());
        let mut engine = BaselineEngine::new(gpu, Flavor::CuLibs);
        match self.device_cache.get(&x.id).expect("cached") {
            DeviceMat::Sparse(xd) => engine.csrmv_t(&xd.clone(), &pd, &out),
            DeviceMat::Dense(xd) => engine.gemv_t(&xd.clone(), &pd, &out),
        }
        self.stats.sim_ms += engine.total_sim_ms();
        self.stats.launches += engine.launch_count();
        Ok(Value::vector(out.to_vec_f64()))
    }

    fn charge_dot(&mut self, _n: usize) {
        // BLAS-1 on the device would be one launch; charge it when a GPU
        // is attached so launch counts compare fairly across modes.
        if self.gpu.is_some() && self.mode != EngineMode::HostOnly {
            self.stats.launches += 1;
            self.stats.sim_ms += 0.005; // launch overhead class
        }
    }

    /// Execute a `FusedPattern` node.
    fn eval_fused(&mut self, p: &FusedPattern, line: usize) -> Result<Value, ScriptError> {
        let x_val = self.eval(&p.x, line)?;

        // `t(p) %*% q` where "X" is actually a vector: a dot product that
        // the structural matcher could not distinguish — fall back.
        if let Value::Vector(pv) = &x_val {
            if !p.inner_mv && p.v.is_none() {
                let y = self.eval(&p.y, line)?;
                let q = y.as_vector().ok_or_else(|| ScriptError {
                    line,
                    message: "dot product needs two vectors".into(),
                })?;
                if pv.len() != q.len() {
                    return Err(ScriptError {
                        line,
                        message: "dot product length mismatch".into(),
                    });
                }
                self.charge_dot(q.len());
                let mut d = reference::dot(pv, q);
                if let Some(a) = &p.alpha {
                    d *= self.scalar_operand(a, line)?;
                }
                if let Some(z) = &p.z {
                    let beta = match &p.beta {
                        Some(b) => self.scalar_operand(b, line)?,
                        None => 1.0,
                    };
                    d += beta * self.scalar_operand(z, line)?;
                }
                return Ok(Value::Scalar(d));
            }
        }

        let Value::Matrix(x) = x_val else {
            return Err(ScriptError {
                line,
                message: format!("fused pattern over {}", x_val.type_name()),
            });
        };

        let mut alpha = match &p.alpha {
            Some(a) => self.scalar_operand(a, line)?,
            None => 1.0,
        };
        let y = self.eval(&p.y, line)?;
        let y = y
            .as_vector()
            .ok_or_else(|| ScriptError {
                line,
                message: format!("pattern operand y must be a vector, got {}", y.type_name()),
            })?
            .to_vec();

        // v: a vector, or a scalar that folds into alpha.
        let mut v: Option<Vec<f64>> = None;
        if let Some(ve) = &p.v {
            match self.eval(ve, line)? {
                Value::Scalar(s) => alpha *= s,
                Value::Vector(x) => v = Some((*x).clone()),
                other => {
                    return Err(ScriptError {
                        line,
                        message: format!(
                            "pattern operand v must be vector/scalar, got {}",
                            other.type_name()
                        ),
                    })
                }
            }
        }

        // beta / z, swapping if the script wrote `z * beta`.
        let (mut beta, mut z): (f64, Option<Vec<f64>>) = (0.0, None);
        if let Some(ze) = &p.z {
            let z_val = self.eval(ze, line)?;
            let b_val = match &p.beta {
                Some(be) => self.eval(be, line)?,
                None => Value::Scalar(1.0),
            };
            match (b_val, z_val) {
                (Value::Scalar(b), Value::Vector(zv)) => {
                    beta = b;
                    z = Some((*zv).clone());
                }
                (Value::Vector(zv), Value::Scalar(b)) => {
                    beta = b;
                    z = Some((*zv).clone());
                }
                (Value::Scalar(b1), Value::Scalar(b2)) => {
                    // scalar + scalar tail: fold into nothing vector-like —
                    // semantically this is a scalar added to a vector,
                    // which the dialect does not define.
                    return Err(ScriptError {
                        line,
                        message: format!(
                            "additive tail must involve a vector (got scalars {b1} and {b2})"
                        ),
                    });
                }
                (b, zv) => {
                    return Err(ScriptError {
                        line,
                        message: format!(
                            "additive tail beta*z of {} and {}",
                            b.type_name(),
                            zv.type_name()
                        ),
                    })
                }
            }
        }

        self.stats.fused_evals += 1;
        let spec = PatternSpec {
            alpha,
            with_v: v.is_some(),
            beta,
            with_z: z.is_some(),
        };

        // Host-only (or no GPU): reference evaluation.
        if self.mode == EngineMode::HostOnly || self.gpu.is_none() {
            let w = host_fused(
                &x.data,
                &spec,
                p.inner_mv,
                v.as_deref(),
                &y,
                z.as_deref(),
                line,
            )?;
            return Ok(Value::vector(w));
        }

        let gpu = self.gpu.expect("checked");
        self.device_matrix(&x);
        let mut ex = FusedExecutor::new(gpu);
        let yd = gpu.upload_f64("script.y", &y);
        let vd = v.as_ref().map(|v| gpu.upload_f64("script.v", v));
        let zd = z.as_ref().map(|z| gpu.upload_f64("script.z", z));
        let wd = gpu.alloc_f64("script.w", x.data.cols());

        match self.device_cache.get(&x.id).expect("cached") {
            DeviceMat::Sparse(xd) => {
                let xd = xd.clone();
                if p.inner_mv {
                    check_dim(y.len(), x.data.cols(), "y", line)?;
                    ex.pattern_sparse(spec, &xd, vd.as_ref(), &yd, zd.as_ref(), &wd);
                } else {
                    check_dim(y.len(), x.data.rows(), "y", line)?;
                    // alpha * X^T y (+ beta z as a follow-up axpy).
                    ex.xt_y_sparse(alpha, &xd, &yd, &wd);
                    if let (Some(zd), true) = (zd.as_ref(), spec.with_z) {
                        let s = fusedml_blas::level1::axpy(gpu, beta, zd, &wd);
                        ex.launches.push(s);
                    }
                }
            }
            DeviceMat::Dense(xd) => {
                let xd = xd.clone();
                if p.inner_mv {
                    check_dim(y.len(), x.data.cols(), "y", line)?;
                    ex.pattern_dense(spec, &xd, vd.as_ref(), &yd, zd.as_ref(), &wd);
                } else {
                    check_dim(y.len(), x.data.rows(), "y", line)?;
                    for s in fusedml_blas::gemv_t(gpu, &xd, &yd, &wd) {
                        ex.launches.push(s);
                    }
                    if alpha != 1.0 {
                        let s = fusedml_blas::level1::scal(gpu, alpha, &wd);
                        ex.launches.push(s);
                    }
                    if let (Some(zd), true) = (zd.as_ref(), spec.with_z) {
                        let s = fusedml_blas::level1::axpy(gpu, beta, zd, &wd);
                        ex.launches.push(s);
                    }
                }
            }
        }
        self.stats.sim_ms += ex.total_sim_ms();
        self.stats.launches += ex.launch_count();
        Ok(Value::vector(wd.to_vec_f64()))
    }

    fn scalar_operand(&mut self, e: &Expr, line: usize) -> Result<f64, ScriptError> {
        let v = self.eval(e, line)?;
        v.as_scalar().ok_or_else(|| ScriptError {
            line,
            message: format!("expected a scalar operand, got {}", v.type_name()),
        })
    }
}

fn check_dim(got: usize, want: usize, what: &str, line: usize) -> Result<(), ScriptError> {
    if got != want {
        return Err(ScriptError {
            line,
            message: format!("pattern operand {what}: length {got}, expected {want}"),
        });
    }
    Ok(())
}

fn stmt_line(s: &Stmt) -> usize {
    match s {
        Stmt::Assign { line, .. }
        | Stmt::While { line, .. }
        | Stmt::If { line, .. }
        | Stmt::Expr { line, .. } => *line,
    }
}

fn elementwise_fn(op: BinOp) -> Option<fn(f64, f64) -> f64> {
    Some(match op {
        BinOp::Add => |a, b| a + b,
        BinOp::Sub => |a, b| a - b,
        BinOp::Mul => |a, b| a * b,
        BinOp::Div => |a, b| a / b,
        BinOp::Pow => |a, b| a.powf(b),
        _ => return None,
    })
}

fn host_mv(x: &HostMatrix, y: &[f64]) -> Vec<f64> {
    match x {
        HostMatrix::Sparse(x) => reference::csr_mv(x, y),
        HostMatrix::Dense(x) => reference::dense_mv(x, y),
    }
}

fn host_tmv(x: &HostMatrix, p: &[f64]) -> Vec<f64> {
    match x {
        HostMatrix::Sparse(x) => reference::csr_tmv(x, p),
        HostMatrix::Dense(x) => reference::dense_tmv(x, p),
    }
}

fn host_fused(
    x: &HostMatrix,
    spec: &PatternSpec,
    inner_mv: bool,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    line: usize,
) -> Result<Vec<f64>, ScriptError> {
    if inner_mv {
        check_dim(y.len(), x.cols(), "y", line)?;
        Ok(match x {
            HostMatrix::Sparse(x) => reference::pattern_csr(spec.alpha, x, v, y, spec.beta, z),
            HostMatrix::Dense(x) => reference::pattern_dense(spec.alpha, x, v, y, spec.beta, z),
        })
    } else {
        check_dim(y.len(), x.rows(), "y", line)?;
        let mut w = host_tmv(x, y);
        reference::scal(spec.alpha, &mut w);
        if let Some(z) = z {
            check_dim(z.len(), x.cols(), "z", line)?;
            reference::axpy(spec.beta, z, &mut w);
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_matrix::gen::uniform_sparse;

    fn eval_scalar(src: &str) -> f64 {
        let mut i = Interpreter::host_only();
        i.run(&format!("result = {src}\nwrite(result, \"r\")"))
            .unwrap();
        i.outputs()["r"].as_scalar().unwrap()
    }

    #[test]
    fn scalar_arithmetic_table() {
        assert_eq!(eval_scalar("1 + 2 * 3"), 7.0);
        assert_eq!(eval_scalar("(1 + 2) * 3"), 9.0);
        assert_eq!(eval_scalar("2 ^ 10"), 1024.0);
        assert_eq!(eval_scalar("7 / 2"), 3.5);
        assert_eq!(eval_scalar("-3 + 1"), -2.0);
        assert_eq!(eval_scalar("10 - 4 - 3"), 3.0); // left associative
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_scalar("1 < 2"), 1.0);
        assert_eq!(eval_scalar("2 <= 1"), 0.0);
        assert_eq!(eval_scalar("1 == 1 & 2 > 1"), 1.0);
        assert_eq!(eval_scalar("0 | 1"), 1.0);
        assert_eq!(eval_scalar("!1"), 0.0);
        assert_eq!(eval_scalar("3 != 3"), 0.0);
    }

    #[test]
    fn vector_broadcasting() {
        let mut i = Interpreter::host_only();
        i.bind_vector("v", vec![1.0, 2.0, 3.0]);
        i.run(
            "v = read(\"v\")\n\
             a = 2 * v + 1\n\
             b = v * v\n\
             write(sum(a), \"sa\")\n\
             write(sum(b), \"sb\")",
        )
        .unwrap();
        assert_eq!(i.outputs()["sa"].as_scalar().unwrap(), 15.0); // 3+5+7
        assert_eq!(i.outputs()["sb"].as_scalar().unwrap(), 14.0); // 1+4+9
    }

    #[test]
    fn builtins() {
        let mut i = Interpreter::host_only();
        i.bind_sparse("X", uniform_sparse(6, 4, 0.5, 1));
        i.run(
            "X = read(\"X\")\n\
             write(nrow(X), \"m\")\n\
             write(ncol(X), \"n\")\n\
             z = matrix(2.5, rows=ncol(X), cols=1)\n\
             write(sum(z), \"sz\")\n\
             write(sqrt(16), \"sq\")\n\
             write(max(min(3, 5), 1), \"mm\")",
        )
        .unwrap();
        assert_eq!(i.outputs()["m"].as_scalar().unwrap(), 6.0);
        assert_eq!(i.outputs()["n"].as_scalar().unwrap(), 4.0);
        assert_eq!(i.outputs()["sz"].as_scalar().unwrap(), 10.0);
        assert_eq!(i.outputs()["sq"].as_scalar().unwrap(), 4.0);
        assert_eq!(i.outputs()["mm"].as_scalar().unwrap(), 3.0);
    }

    #[test]
    fn if_else_branches() {
        let mut i = Interpreter::host_only();
        i.run(
            "x = 5\n\
             if (x > 3) { y = 1 } else { y = 2 }\n\
             if (x < 3) { z = 1 } else { z = 2 }\n\
             write(y + z, \"r\")",
        )
        .unwrap();
        assert_eq!(i.outputs()["r"].as_scalar().unwrap(), 3.0);
    }

    #[test]
    fn undefined_variable_error() {
        let mut i = Interpreter::host_only();
        let err = i.run("a = nope + 1").unwrap_err();
        assert!(err.message.contains("undefined variable"));
    }

    #[test]
    fn vector_length_mismatch_error() {
        let mut i = Interpreter::host_only();
        i.bind_vector("a", vec![1.0, 2.0]);
        i.bind_vector("b", vec![1.0, 2.0, 3.0]);
        let err = i
            .run("a = read(\"a\")\nb = read(\"b\")\nc = a + b")
            .unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn missing_input_error() {
        let mut i = Interpreter::host_only();
        let err = i.run("x = read(\"ghost\")").unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn transpose_dot_product() {
        let mut i = Interpreter::host_only();
        i.bind_vector("p", vec![1.0, 2.0, 3.0]);
        i.bind_vector("q", vec![4.0, 5.0, 6.0]);
        i.run("p = read(\"p\")\nq = read(\"q\")\nwrite(t(p) %*% q, \"d\")")
            .unwrap();
        assert_eq!(i.outputs()["d"].as_scalar().unwrap(), 32.0);
    }
}
