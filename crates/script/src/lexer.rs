//! Lexer for the mini-DML dialect — the language of the paper's Listing 1
//! (SystemML's DML), restricted to the constructs its ML scripts use.

use std::fmt;

/// A token with its 1-based line number (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Number(f64),
    Str(String),
    // operators
    MatMul, // %*%
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Assign, // =
    Eq,     // ==
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    And, // &
    Or,  // |
    Not, // !
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    // keywords
    While,
    If,
    Else,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(v) => write!(f, "number {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::MatMul => write!(f, "'%*%'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Caret => write!(f, "'^'"),
            TokenKind::Assign => write!(f, "'='"),
            TokenKind::Eq => write!(f, "'=='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::And => write!(f, "'&'"),
            TokenKind::Or => write!(f, "'|'"),
            TokenKind::Not => write!(f, "'!'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::While => write!(f, "'while'"),
            TokenKind::If => write!(f, "'if'"),
            TokenKind::Else => write!(f, "'else'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error: unexpected character or malformed literal.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a script. `#` starts a line comment (as in DML).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' => {
                chars.next();
                let ok = chars.next() == Some('*') && chars.next() == Some('%');
                if !ok {
                    return Err(LexError {
                        line,
                        message: "expected '%*%' (matrix multiply)".into(),
                    });
                }
                push!(TokenKind::MatMul);
            }
            '+' => {
                chars.next();
                push!(TokenKind::Plus);
            }
            '-' => {
                chars.next();
                push!(TokenKind::Minus);
            }
            '*' => {
                chars.next();
                push!(TokenKind::Star);
            }
            '/' => {
                chars.next();
                push!(TokenKind::Slash);
            }
            '^' => {
                chars.next();
                push!(TokenKind::Caret);
            }
            '(' => {
                chars.next();
                push!(TokenKind::LParen);
            }
            ')' => {
                chars.next();
                push!(TokenKind::RParen);
            }
            '{' => {
                chars.next();
                push!(TokenKind::LBrace);
            }
            '}' => {
                chars.next();
                push!(TokenKind::RBrace);
            }
            ',' => {
                chars.next();
                push!(TokenKind::Comma);
            }
            ';' => {
                chars.next();
                push!(TokenKind::Semicolon);
            }
            '&' => {
                chars.next();
                push!(TokenKind::And);
            }
            '|' => {
                chars.next();
                push!(TokenKind::Or);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Eq);
                } else {
                    push!(TokenKind::Assign);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Ne);
                } else {
                    push!(TokenKind::Not);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Le);
                } else {
                    push!(TokenKind::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Ge);
                } else {
                    push!(TokenKind::Gt);
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                push!(TokenKind::Str(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' {
                        s.push(c);
                        chars.next();
                        // allow a sign right after an exponent marker
                        if (s.ends_with('e') || s.ends_with('E'))
                            && matches!(chars.peek(), Some('+') | Some('-'))
                        {
                            s.push(chars.next().expect("peeked"));
                        }
                    } else {
                        break;
                    }
                }
                let v: f64 = s.parse().map_err(|_| LexError {
                    line,
                    message: format!("malformed number '{s}'"),
                })?;
                push!(TokenKind::Number(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "while" => push!(TokenKind::While),
                    "if" => push!(TokenKind::If),
                    "else" => push!(TokenKind::Else),
                    _ => push!(TokenKind::Ident(s)),
                }
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_listing1_fragment() {
        let ks = kinds("q = ((t(V) %*% (V %*% p)) + eps * p);");
        assert!(ks.contains(&TokenKind::MatMul));
        assert!(ks.contains(&TokenKind::Ident("t".into())));
        assert!(ks.contains(&TokenKind::Ident("eps".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn comments_and_numbers() {
        let ks = kinds("x = 0.001 # tolerance\ny = 1e-6\nz = 2.5E+3");
        assert!(ks.contains(&TokenKind::Number(0.001)));
        assert!(ks.contains(&TokenKind::Number(1e-6)));
        assert!(ks.contains(&TokenKind::Number(2.5e3)));
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("a <= b & c != d | !e == f");
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::Ne));
        assert!(ks.contains(&TokenKind::Not));
        assert!(ks.contains(&TokenKind::Eq));
    }

    #[test]
    fn string_literals_and_keywords() {
        let ks = kinds("while (i < 10) { write(w, \"out\"); }");
        assert!(ks.contains(&TokenKind::While));
        assert!(ks.contains(&TokenKind::Str("out".into())));
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a = 1\nb = 2\nc = 3").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a = @").is_err());
        assert!(lex("%x%").is_err());
        assert!(lex("\"unclosed").is_err());
    }
}
