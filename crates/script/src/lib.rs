//! # fusedml-script
//!
//! A mini-DML (SystemML's scripting language) frontend: lexer, parser, and
//! a **fusion-detecting optimizer** that recognizes instances of the
//! paper's generic pattern
//!
//! ```text
//! w = alpha * t(X) %*% (v * (X %*% y)) + beta * z
//! ```
//!
//! in expression trees and rewrites them to a single fused-kernel node —
//! the compiler half of §4.4's claim that the integrated system
//! "transparently selects our fused GPU kernel". The interpreter executes
//! scripts (the paper's Listing 1 runs verbatim) on three engines: fused
//! GPU, operator-level baseline GPU, and host-only reference.
//!
//! ```
//! use fusedml_script::{EngineMode, Interpreter};
//! use fusedml_matrix::gen::uniform_sparse;
//!
//! let mut host = Interpreter::host_only();
//! host.bind_sparse("X", uniform_sparse(20, 10, 0.3, 1));
//! host.bind_vector("y", vec![1.0; 10]);
//! host.run(r#"
//!     X = read("X"); y = read("y");
//!     w = t(X) %*% (X %*% y);
//!     write(sum(w * w), "norm");
//! "#).unwrap();
//! assert!(host.outputs()["norm"].as_scalar().unwrap() > 0.0);
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod value;

pub use ast::{Expr, FusedPattern, Program, Stmt};
pub use interp::{EngineMode, Interpreter, RunStats, ScriptError};
pub use optimizer::{count_fused, optimize};
pub use parser::{parse, ParseError};
pub use value::Value;

/// The paper's Listing 1 (linear regression conjugate gradient), shipped
/// with the crate so examples and tests can run it verbatim.
pub const LISTING_1: &str = include_str!("listing1.dml");
