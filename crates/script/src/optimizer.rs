//! The fusion rewriter: recognizes instances of the generic pattern
//!
//! ```text
//! w = alpha * t(X) %*% (v * (X %*% y)) + beta * z
//! ```
//!
//! (and its Table-1 sub-instantiations, including plain `t(X) %*% y`) in
//! parsed expression trees and replaces them with a single
//! [`FusedPattern`] node — the compiler-side half of the paper's §4.4:
//! "an end-to-end GPU accelerated ML system that transparently selects our
//! fused GPU kernel".
//!
//! Matching is purely structural, so it is conservative: the two
//! occurrences of `X` must be the *same expression* (`t(V) %*% (V %*% p)`
//! fuses; `t(A) %*% (B %*% p)` does not). Scalar-versus-vector ambiguities
//! that types would normally resolve (`eps * p` vs `p * eps`) are deferred
//! to the interpreter, which inspects runtime values.

use crate::ast::{BinOp, Expr, FusedPattern, Program, Stmt, UnaryOp};

/// Rewrite a whole program.
pub fn optimize(prog: &Program) -> Program {
    Program {
        statements: prog.statements.iter().map(rewrite_stmt).collect(),
    }
}

/// Count the fused-pattern nodes in a program (diagnostics / tests).
pub fn count_fused(prog: &Program) -> usize {
    let mut count = 0;
    for s in &prog.statements {
        for e in stmt_exprs(s) {
            e.walk(&mut |e| {
                if matches!(e, Expr::FusedPattern(_)) {
                    count += 1;
                }
            });
        }
    }
    count
}

fn stmt_exprs(s: &Stmt) -> Vec<&Expr> {
    match s {
        Stmt::Assign { value, .. } | Stmt::Expr { value, .. } => vec![value],
        Stmt::While { cond, body, .. } => {
            let mut v = vec![cond];
            v.extend(body.iter().flat_map(stmt_exprs));
            v
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let mut v = vec![cond];
            v.extend(then_body.iter().flat_map(stmt_exprs));
            v.extend(else_body.iter().flat_map(stmt_exprs));
            v
        }
    }
}

fn rewrite_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assign { name, value, line } => Stmt::Assign {
            name: name.clone(),
            value: rewrite(value),
            line: *line,
        },
        Stmt::Expr { value, line } => Stmt::Expr {
            value: rewrite(value),
            line: *line,
        },
        Stmt::While { cond, body, line } => Stmt::While {
            cond: rewrite(cond),
            body: body.iter().map(rewrite_stmt).collect(),
            line: *line,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => Stmt::If {
            cond: rewrite(cond),
            then_body: then_body.iter().map(rewrite_stmt).collect(),
            else_body: else_body.iter().map(rewrite_stmt).collect(),
            line: *line,
        },
    }
}

/// Top-down rewrite: try to match the widest pattern at this node before
/// descending, so the outer `t(X) %*% (...)` sees the un-rewritten inner
/// `X %*% y`.
pub fn rewrite(e: &Expr) -> Expr {
    if let Some(p) = match_pattern(e) {
        // Recursively optimize the operand expressions (a `+ z` tail may
        // itself contain a fusable pattern).
        return Expr::FusedPattern(Box::new(FusedPattern {
            alpha: p.alpha.as_ref().map(rewrite),
            x: p.x.clone(), // matrix operand: left as-is (an identifier in practice)
            v: p.v.as_ref().map(rewrite),
            y: rewrite(&p.y),
            beta: p.beta.as_ref().map(rewrite),
            z: p.z.as_ref().map(rewrite),
            inner_mv: p.inner_mv,
        }));
    }
    match e {
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rewrite(a))),
        Expr::Binary(op, a, b) => Expr::Binary(*op, Box::new(rewrite(a)), Box::new(rewrite(b))),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| crate::ast::Arg {
                    name: a.name.clone(),
                    value: rewrite(&a.value),
                })
                .collect(),
        },
        other => other.clone(),
    }
}

/// Does this expression contain a `%*%` (or an already-fused node)?
fn contains_matmul(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |e| {
        if matches!(e, Expr::Binary(BinOp::MatMul, _, _) | Expr::FusedPattern(_)) {
            found = true;
        }
    });
    found
}

/// Try to match the full pattern (with optional additive tail) at `e`.
fn match_pattern(e: &Expr) -> Option<FusedPattern> {
    // 1. `core + tail` / `core - tail` / `tail + core`.
    if let Expr::Binary(op @ (BinOp::Add | BinOp::Sub), l, r) = e {
        let candidates: &[(&Expr, &Expr, bool)] = match op {
            // core - tail: beta negated. tail - core is NOT the pattern
            // (that would negate alpha, which `match_core` cannot express
            // without wrapping — skip it; the parts still fuse separately).
            BinOp::Sub => &[(l, r, true)],
            _ => &[(l, r, false), (r, l, false)],
        };
        for (core, tail, negate) in candidates {
            if let Some(mut p) = match_core(core) {
                if p.z.is_none() {
                    let (beta, z) = split_beta_z(tail);
                    p.beta = Some(if *negate {
                        Expr::Unary(UnaryOp::Neg, Box::new(beta))
                    } else {
                        beta
                    });
                    p.z = Some(z);
                    return Some(p);
                }
            }
        }
    }
    // 2. Bare core.
    match_core(e)
}

/// `tail` as `(beta, z)`: `beta * z` when it is a product (the interpreter
/// swaps the roles at runtime if the types turn out reversed), else
/// `(1, tail)`.
fn split_beta_z(tail: &Expr) -> (Expr, Expr) {
    if let Expr::Binary(BinOp::Mul, a, b) = tail {
        ((**a).clone(), (**b).clone())
    } else {
        (Expr::Number(1.0), tail.clone())
    }
}

/// Match `[alpha *] [-] t(X) %*% RHS` where RHS is `[v *] (X %*% y)` or a
/// plain vector (the `t(X) %*% y` instantiation).
fn match_core(e: &Expr) -> Option<FusedPattern> {
    let (alpha, body) = peel_scalar_wrappers(e);

    let Expr::Binary(BinOp::MatMul, lhs, rhs) = body else {
        return None;
    };
    let x = lhs.as_transpose()?.clone();

    // Full form: rhs = [v *] (X %*% y) with the same X.
    if let Some((v, y)) = match_inner(rhs, &x) {
        return Some(FusedPattern {
            alpha,
            x,
            v,
            y,
            beta: None,
            z: None,
            inner_mv: true,
        });
    }

    // XtY form: rhs is any expression without the inner matmul over X.
    Some(FusedPattern {
        alpha,
        x,
        v: None,
        y: (**rhs).clone(),
        beta: None,
        z: None,
        inner_mv: false,
    })
}

/// `[v *] (X %*% y)` with a structurally identical `X`.
fn match_inner(rhs: &Expr, x: &Expr) -> Option<(Option<Expr>, Expr)> {
    if let Expr::Binary(BinOp::MatMul, a, y) = rhs {
        if **a == *x {
            return Some((None, (**y).clone()));
        }
    }
    if let Expr::Binary(BinOp::Mul, a, b) = rhs {
        // v * (X %*% y) or (X %*% y) * v.
        for (v, mm) in [(a, b), (b, a)] {
            if let Expr::Binary(BinOp::MatMul, xx, y) = &**mm {
                if **xx == *x && !contains_matmul(v) {
                    return Some((Some((**v).clone()), (**y).clone()));
                }
            }
        }
    }
    None
}

/// Strip `-e` and `s * e` wrappers around the transposed matmul,
/// accumulating the scalar factor. Returns `(alpha, body)`.
fn peel_scalar_wrappers(e: &Expr) -> (Option<Expr>, &Expr) {
    match e {
        Expr::Unary(UnaryOp::Neg, inner) => {
            let (alpha, body) = peel_scalar_wrappers(inner);
            let neg = match alpha {
                None => Expr::Number(-1.0),
                Some(a) => Expr::Unary(UnaryOp::Neg, Box::new(a)),
            };
            (Some(neg), body)
        }
        Expr::Binary(BinOp::Mul, a, b) => {
            // One side must hold the t(X) matmul, the other is the scalar.
            let a_has = is_tmatmul_head(a);
            let b_has = is_tmatmul_head(b);
            match (a_has, b_has) {
                (false, true) if !contains_matmul(a) => (Some((**a).clone()), &**b),
                (true, false) if !contains_matmul(b) => (Some((**b).clone()), &**a),
                _ => (None, e),
            }
        }
        _ => (None, e),
    }
}

/// Is this expression (ignoring further wrappers) a `t(..) %*% ..`?
fn is_tmatmul_head(e: &Expr) -> bool {
    matches!(e, Expr::Binary(BinOp::MatMul, lhs, _) if lhs.as_transpose().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn first_expr(src: &str) -> Expr {
        let prog = optimize(&parse(src).unwrap());
        match prog.statements.into_iter().next().unwrap() {
            Stmt::Assign { value, .. } | Stmt::Expr { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn fused(src: &str) -> FusedPattern {
        match first_expr(src) {
            Expr::FusedPattern(p) => *p,
            other => panic!("expected fusion for `{src}`, got {other:?}"),
        }
    }

    #[test]
    fn fuses_every_table1_instantiation() {
        // a * X^T y
        let p = fused("w = 3 * (t(X) %*% y)");
        assert!(p.alpha.is_some() && p.v.is_none() && p.z.is_none());

        // X^T (X y)
        let p = fused("w = t(X) %*% (X %*% y)");
        assert_eq!(p.y, Expr::Ident("y".into()));
        assert!(p.v.is_none() && p.z.is_none());

        // X^T (v . (X y))
        let p = fused("w = t(X) %*% (v * (X %*% y))");
        assert_eq!(p.v, Some(Expr::Ident("v".into())));

        // X^T (X y) + b z
        let p = fused("w = t(X) %*% (X %*% y) + b * z");
        assert_eq!(p.z, Some(Expr::Ident("z".into())));
        assert_eq!(p.beta, Some(Expr::Ident("b".into())));

        // full
        let p = fused("w = a * (t(X) %*% (v * (X %*% y))) + b * z");
        assert!(p.alpha.is_some() && p.v.is_some() && p.beta.is_some() && p.z.is_some());
    }

    #[test]
    fn fuses_listing1_hot_statement() {
        let p = fused("q = ((t(V) %*% (V %*% p)) + eps * p)");
        assert_eq!(p.x, Expr::Ident("V".into()));
        assert_eq!(p.y, Expr::Ident("p".into()));
        assert_eq!(p.beta, Some(Expr::Ident("eps".into())));
        assert_eq!(p.z, Some(Expr::Ident("p".into())));
    }

    #[test]
    fn fuses_negated_xty() {
        // Listing 1 line 3: r = -(t(V) %*% y)
        let p = fused("r = -(t(V) %*% y)");
        assert_eq!(p.alpha, Some(Expr::Number(-1.0)));
        assert!(p.v.is_none());
    }

    #[test]
    fn does_not_fuse_mismatched_matrices() {
        // Different matrices: not Equation 1. The inner matmul remains a
        // matmul; only the outer t(A)%*%(...) may become an XtY-with-
        // -vector node, whose `y` still contains the inner product.
        let e = first_expr("w = t(A) %*% (B %*% y)");
        match e {
            Expr::FusedPattern(p) => {
                assert!(p.v.is_none());
                assert!(contains_matmul(&p.y), "inner B%*%y must survive");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subtraction_tail_negates_beta() {
        let p = fused("w = t(X) %*% (X %*% y) - b * z");
        match p.beta {
            Some(Expr::Unary(UnaryOp::Neg, inner)) => {
                assert_eq!(*inner, Expr::Ident("b".into()))
            }
            other => panic!("expected negated beta, got {other:?}"),
        }
    }

    #[test]
    fn plain_arithmetic_untouched() {
        let e = first_expr("x = a + b * c");
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
        assert_eq!(count_fused(&optimize(&parse("x = a + b * c").unwrap())), 0);
    }

    #[test]
    fn listing1_gets_exactly_three_fusions() {
        // r = -(t(V)%*%y); q = t(V)%*%(V%*%p) + eps*p; alpha's t(p)%*%q
        // (a dot product, resolved at runtime).
        let prog = optimize(&parse(include_str!("listing1.dml")).unwrap());
        assert_eq!(count_fused(&prog), 3);
    }

    #[test]
    fn tail_on_the_left_also_fuses() {
        let p = fused("w = b * z + t(X) %*% (X %*% y)");
        assert_eq!(p.z, Some(Expr::Ident("z".into())));
    }
}
