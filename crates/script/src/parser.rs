//! Recursive-descent parser for the mini-DML dialect.
//!
//! Precedence (loosest to tightest), mirroring R/DML:
//! `|` < `&` < comparisons < `+ -` < `* / %*%` < unary `- !` < `^` < call.

use crate::ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
use crate::lexer::{lex, LexError, Token, TokenKind};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a whole script.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let statements = p.statements_until(TokenKind::Eof)?;
    Ok(Program { statements })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        let t = self.next();
        if t.kind == kind {
            Ok(t)
        } else {
            Err(ParseError {
                line: t.line,
                message: format!("expected {kind}, found {}", t.kind),
            })
        }
    }

    fn statements_until(&mut self, end: TokenKind) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            while self.eat(&TokenKind::Semicolon) {}
            if self.peek().kind == end {
                self.next();
                return Ok(out);
            }
            if self.peek().kind == TokenKind::Eof {
                let t = self.peek();
                return Err(ParseError {
                    line: t.line,
                    message: format!("expected {end} before end of input"),
                });
            }
            out.push(self.statement()?);
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        match self.peek().kind.clone() {
            TokenKind::While => {
                self.next();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::LBrace)?;
                let body = self.statements_until(TokenKind::RBrace)?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::If => {
                self.next();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::LBrace)?;
                let then_body = self.statements_until(TokenKind::RBrace)?;
                let else_body = if self.eat(&TokenKind::Else) {
                    self.expect(TokenKind::LBrace)?;
                    self.statements_until(TokenKind::RBrace)?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            TokenKind::Ident(name)
                // Assignment (ident '=') or expression statement.
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) => {
                    self.next(); // ident
                    self.next(); // '='
                    let value = self.expr()?;
                    Ok(Stmt::Assign { name, value, line })
                }
            _ => {
                let value = self.expr()?;
                Ok(Stmt::Expr { value, line })
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::MatMul => BinOp::MatMul,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind {
            TokenKind::Minus => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)))
            }
            TokenKind::Not => {
                self.next();
                let e = self.unary_expr()?;
                Ok(Expr::Unary(UnaryOp::Not, Box::new(e)))
            }
            _ => self.pow_expr(),
        }
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.postfix_expr()?;
        if self.eat(&TokenKind::Caret) {
            // Right-associative.
            let exp = self.unary_expr()?;
            Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.next();
        match t.kind {
            TokenKind::Number(v) => Ok(Expr::Number(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Ident(name) => {
                if self.peek().kind == TokenKind::LParen {
                    self.next();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.call_arg()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(ParseError {
                line: t.line,
                message: format!("expected an expression, found {other}"),
            }),
        }
    }

    fn call_arg(&mut self) -> Result<Arg, ParseError> {
        // Named argument: ident '=' expr (but not '==').
        if let TokenKind::Ident(name) = self.peek().kind.clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) {
                self.next();
                self.next();
                let value = self.expr()?;
                return Ok(Arg {
                    name: Some(name),
                    value,
                });
            }
        }
        Ok(Arg {
            name: None,
            value: self.expr()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_of(src: &str) -> Expr {
        let prog = parse(src).unwrap();
        match prog.statements.into_iter().next().unwrap() {
            Stmt::Assign { value, .. } | Stmt::Expr { value, .. } => value,
            other => panic!("unexpected statement {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr_of("x = a + b * c");
        let Expr::Binary(BinOp::Add, _, rhs) = e else {
            panic!("expected +, got {e:?}")
        };
        assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn matmul_binds_like_mul() {
        let e = expr_of("q = t(V) %*% y + z");
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn pow_is_right_associative_and_tight() {
        let e = expr_of("x = tolerance ^ 2");
        assert!(matches!(e, Expr::Binary(BinOp::Pow, _, _)));
        let e = expr_of("x = -a ^ 2"); // -(a^2) in R
        let Expr::Unary(UnaryOp::Neg, inner) = e else {
            panic!("expected unary neg")
        };
        assert!(matches!(*inner, Expr::Binary(BinOp::Pow, _, _)));
    }

    #[test]
    fn named_arguments() {
        let e = expr_of("w = matrix(0, rows=ncol(V), cols=1)");
        let Expr::Call { name, args } = e else {
            panic!()
        };
        assert_eq!(name, "matrix");
        assert_eq!(args.len(), 3);
        assert_eq!(args[1].name.as_deref(), Some("rows"));
        assert!(matches!(args[1].value, Expr::Call { .. }));
    }

    #[test]
    fn while_and_if_blocks() {
        let prog = parse(
            "i = 0\n\
             while (i < 10 & nr2 > t) {\n\
               i = i + 1;\n\
               if (i == 5) { j = 1 } else { j = 2 }\n\
             }",
        )
        .unwrap();
        assert_eq!(prog.statements.len(), 2);
        let Stmt::While { body, .. } = &prog.statements[1] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
        assert!(matches!(body[1], Stmt::If { .. }));
    }

    #[test]
    fn parses_full_listing1() {
        let src = include_str!("listing1.dml");
        let prog = parse(src).unwrap();
        assert!(prog.statements.len() > 10);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("a = 1\nb = *").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unclosed_block_is_an_error() {
        assert!(parse("while (a < b) { x = 1").is_err());
    }
}
