//! AST of the mini-DML dialect, plus the fused-pattern node the optimizer
//! introduces (§4.4: the integrated system "transparently selects our
//! fused GPU kernel" for matching subexpressions).

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    Str(String),
    Ident(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call; arguments may be named (`matrix(0, rows=n, cols=1)`).
    Call {
        name: String,
        args: Vec<Arg>,
    },
    /// Inserted by the optimizer: one fused evaluation of
    /// `alpha * t(X) %*% (v * (X %*% y)) + beta * z`.
    FusedPattern(Box<FusedPattern>),
}

/// The operands of a recognized Equation-1 instance. `alpha`/`beta` are
/// arbitrary scalar subexpressions; `v`/`z` are optional.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedPattern {
    pub alpha: Option<Expr>,
    pub x: Expr,
    pub v: Option<Expr>,
    pub y: Expr,
    pub beta: Option<Expr>,
    pub z: Option<Expr>,
    /// `true` for the composite forms (`y` has column dimension and the
    /// kernel computes `X^T (v ⊙ (X y))`); `false` for the plain
    /// `t(X) %*% y` instantiation (`y` has row dimension).
    pub inner_mv: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Present for named arguments.
    pub name: Option<String>,
    pub value: Expr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    MatMul,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::MatMul => "%*%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr`
    Assign {
        name: String,
        value: Expr,
        line: usize,
    },
    /// `while (cond) { body }`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: usize,
    },
    /// `if (cond) { then } [else { otherwise }]`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: usize,
    },
    /// Bare expression statement (e.g. `write(w, "w")`).
    Expr { value: Expr, line: usize },
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub statements: Vec<Stmt>,
}

impl Expr {
    /// `t(<inner>)` matcher used by the optimizer.
    pub fn as_transpose(&self) -> Option<&Expr> {
        if let Expr::Call { name, args } = self {
            if name == "t" && args.len() == 1 && args[0].name.is_none() {
                return Some(&args[0].value);
            }
        }
        None
    }

    /// Walk every sub-expression (including self), depth-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.value.walk(f);
                }
            }
            Expr::FusedPattern(p) => {
                if let Some(a) = &p.alpha {
                    a.walk(f);
                }
                p.x.walk(f);
                if let Some(v) = &p.v {
                    v.walk(f);
                }
                p.y.walk(f);
                if let Some(b) = &p.beta {
                    b.walk(f);
                }
                if let Some(z) = &p.z {
                    z.walk(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_matcher() {
        let t = Expr::Call {
            name: "t".into(),
            args: vec![Arg {
                name: None,
                value: Expr::Ident("X".into()),
            }],
        };
        assert_eq!(t.as_transpose(), Some(&Expr::Ident("X".into())));
        let not_t = Expr::Call {
            name: "sum".into(),
            args: vec![Arg {
                name: None,
                value: Expr::Ident("X".into()),
            }],
        };
        assert!(not_t.as_transpose().is_none());
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Ident("a".into())),
            Box::new(Expr::Unary(UnaryOp::Neg, Box::new(Expr::Number(2.0)))),
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }
}
