//! Runtime values of the mini-DML interpreter.

use fusedml_matrix::{CsrMatrix, DenseMatrix};
use std::fmt;
use std::rc::Rc;

/// A matrix value with a stable identity used to cache its device copy.
#[derive(Debug)]
pub struct MatrixVal {
    pub id: u64,
    pub data: HostMatrix,
}

#[derive(Debug)]
pub enum HostMatrix {
    Sparse(CsrMatrix),
    Dense(DenseMatrix),
}

impl HostMatrix {
    pub fn rows(&self) -> usize {
        match self {
            HostMatrix::Sparse(x) => x.rows(),
            HostMatrix::Dense(x) => x.rows(),
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            HostMatrix::Sparse(x) => x.cols(),
            HostMatrix::Dense(x) => x.cols(),
        }
    }
}

/// A runtime value. Vectors are column vectors (DML's n x 1 matrices).
#[derive(Debug, Clone)]
pub enum Value {
    Scalar(f64),
    Vector(Rc<Vec<f64>>),
    Matrix(Rc<MatrixVal>),
    /// Lazy transpose marker produced by `t(..)` (only ever consumed by
    /// `%*%` in the supported dialect).
    Transposed(Box<Value>),
    Str(Rc<String>),
}

impl Value {
    pub fn vector(v: Vec<f64>) -> Self {
        Value::Vector(Rc::new(v))
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Vector(_) => "vector",
            Value::Matrix(_) => "matrix",
            Value::Transposed(_) => "transposed",
            Value::Str(_) => "string",
        }
    }

    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Truthiness for `while`/`if` conditions (scalars only).
    pub fn truthy(&self) -> Option<bool> {
        self.as_scalar().map(|v| v != 0.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(v) => write!(f, "{v}"),
            Value::Vector(v) => write!(f, "vector[{}]", v.len()),
            Value::Matrix(m) => write!(f, "matrix[{}x{}]", m.data.rows(), m.data.cols()),
            Value::Transposed(v) => write!(f, "t({v})"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_and_accessors() {
        assert_eq!(Value::Scalar(0.0).truthy(), Some(false));
        assert_eq!(Value::Scalar(2.0).truthy(), Some(true));
        assert_eq!(Value::vector(vec![1.0]).truthy(), None);
        assert_eq!(Value::Scalar(3.5).as_scalar(), Some(3.5));
        assert_eq!(
            Value::vector(vec![1.0, 2.0]).as_vector(),
            Some(&[1.0, 2.0][..])
        );
    }

    #[test]
    fn display_forms() {
        let m = Value::Matrix(Rc::new(MatrixVal {
            id: 1,
            data: HostMatrix::Dense(DenseMatrix::zeros(2, 3)),
        }));
        assert_eq!(m.to_string(), "matrix[2x3]");
        assert_eq!(Value::vector(vec![0.0; 5]).to_string(), "vector[5]");
    }
}
