//! Hybrid CPU/GPU execution — the paper's stated future work ("a cost
//! model that based on a complete system profile decides on hybrid
//! executions involving CPUs and GPUs").
//!
//! [`HybridExecutor`] probes both sides cheaply — one simulated device
//! iteration and the analytical CPU roofline — feeds the measurements into
//! [`CostModel::place_iterative`](crate::costmodel::CostModel), and runs
//! the full loop wherever the break-even analysis points, including the
//! one-time transfer in the decision.

use crate::costmodel::{CostModel, Placement, PlacementDecision};
use crate::session::{run_cpu, run_device, DataSet, EngineKind, SessionConfig};
use crate::transfer::TransferModel;
use fusedml_gpu_sim::{Counters, CpuSpec, Gpu};
use serde::{Deserialize, Serialize};

/// Outcome of a hybrid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridReport {
    /// Where the loop ran.
    pub placement: Placement,
    /// The break-even analysis that made the call.
    pub decision: PlacementDecision,
    /// Milliseconds actually spent (simulated/modelled) on the chosen side.
    pub executed_ms: f64,
    /// What the rejected side would have cost (from the decision's
    /// estimate), for regret analysis.
    pub rejected_ms: f64,
    /// Hardware event counters of the executed run (all-zero when the
    /// loop was placed on the host, whose analytical model counts no
    /// microarchitectural events).
    pub counters: Counters,
}

/// Cost-model-driven CPU/GPU placement for iterative pattern workloads.
pub struct HybridExecutor<'g> {
    gpu: &'g Gpu,
    model: CostModel,
}

impl<'g> HybridExecutor<'g> {
    pub fn new(gpu: &'g Gpu) -> Self {
        HybridExecutor {
            gpu,
            model: CostModel::new(CpuSpec::core_i7_8threads(), TransferModel::native()),
        }
    }

    pub fn with_model(gpu: &'g Gpu, model: CostModel) -> Self {
        HybridExecutor { gpu, model }
    }

    /// Run LR-CG for `iterations` steps wherever the cost model says.
    ///
    /// The probe runs two device iterations and two CPU iterations to
    /// measure marginal per-iteration cost, then the full loop executes on
    /// the winning side.
    pub fn run_lr_cg(&self, data: &DataSet, labels: &[f64], iterations: usize) -> HybridReport {
        // Probe marginal per-iteration costs (2 vs 4 iterations isolates
        // the fixed setup from the loop body).
        let probe = |iters: usize| {
            run_device(
                self.gpu,
                data,
                labels,
                &SessionConfig::native(EngineKind::Fused, iters),
            )
        };
        let d2 = probe(2);
        let d4 = probe(4);
        let dev_iters = (d4.iterations - d2.iterations).max(1) as f64;
        let per_iter_device_ms = (d4.kernel_ms - d2.kernel_ms) / dev_iters;

        let c2 = run_cpu(data, labels, 2);
        let c4 = run_cpu(data, labels, 4);
        let per_iter_host_ms = (c4 - c2) / 2.0;

        let decision = self.model.place_iterative(
            data.matrix_bytes(),
            data.needs_conversion(),
            per_iter_device_ms,
            per_iter_host_ms,
            2, // scalar readbacks per CG iteration
            iterations,
        );

        let (executed_ms, rejected_ms, counters) = match decision.placement {
            Placement::Device => {
                let r = run_device(
                    self.gpu,
                    data,
                    labels,
                    &SessionConfig::native(EngineKind::Fused, iterations),
                );
                (r.total_ms, decision.host_ms, r.counters)
            }
            Placement::Host => {
                let ms = run_cpu(data, labels, iterations);
                (ms, decision.device_ms, Counters::new())
            }
        };

        HybridReport {
            placement: decision.placement,
            decision,
            executed_ms,
            rejected_ms,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn dataset(m: usize, n: usize) -> (DataSet, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.05, 41);
        let w = random_vector(n, 42);
        let labels = reference::csr_mv(&x, &w);
        (DataSet::Sparse(x), labels)
    }

    #[test]
    fn long_loops_on_large_data_go_to_the_device() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (data, labels) = dataset(8000, 512);
        let hx = HybridExecutor::new(&g);
        let r = hx.run_lr_cg(&data, &labels, 60);
        assert_eq!(r.placement, Placement::Device);
        assert!(r.executed_ms > 0.0);
        // The decision's estimate for the chosen side should not be wildly
        // off from what actually executed.
        assert!(
            r.executed_ms < 3.0 * r.decision.device_ms + 1.0,
            "estimate {} vs executed {}",
            r.decision.device_ms,
            r.executed_ms
        );
    }

    #[test]
    fn single_iteration_stays_on_the_host() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        // Expensive transfer (dense-sized data), one iteration: CPU wins.
        let x = fusedml_matrix::gen::dense_random(20_000, 64, 43);
        let labels = reference::dense_mv(&x, &random_vector(64, 44));
        let data = DataSet::Dense(x);
        let hx = HybridExecutor::new(&g);
        let r = hx.run_lr_cg(&data, &labels, 1);
        assert_eq!(r.placement, Placement::Host);
    }

    #[test]
    fn decision_is_consistent_with_estimates() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (data, labels) = dataset(4000, 256);
        let hx = HybridExecutor::new(&g);
        let r = hx.run_lr_cg(&data, &labels, 30);
        match r.placement {
            Placement::Device => assert!(r.decision.device_ms <= r.decision.host_ms),
            Placement::Host => assert!(r.decision.host_ms <= r.decision.device_ms),
        }
    }
}
