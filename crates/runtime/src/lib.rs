//! # fusedml-runtime
//!
//! A miniature SystemML-like runtime (§4.4): the GPU memory manager
//! (allocate / LRU-evict / host-device consistency), host↔device transfer
//! models (raw PCIe and the JVM-integration regime with JNI + format
//! conversion), a host-vs-device cost model, and end-to-end execution
//! sessions that reproduce Tables 5 and 6.

// Hot-path code must report faults through typed errors (or panic with an
// explicit message via the infallible wrappers), never through bare
// unwrap/expect. Tests and benches are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod costmodel;
pub mod hybrid;
pub mod memman;
pub mod recovery;
pub mod serve;
pub mod session;
pub mod shard_recovery;
pub mod streamed_backend;
pub mod streaming;
pub mod transfer;

pub use costmodel::{CostModel, Placement, PlacementDecision};
pub use hybrid::{HybridExecutor, HybridReport};
pub use memman::{MemError, MemStats, MemoryManager};
pub use recovery::{
    run_lr_cg_with_recovery, BackendTier, LadderError, LadderOutcome, RecoveryAction,
    RecoveryEvent, RecoveryPolicy, RecoveryTier,
};
pub use serve::{
    clean_run, serve, CleanRun, RequestOutcome, RequestStatus, ServeConfig, ServeError,
    ServeReport, ServeRequest, ServeTier, TenantSpec, TenantSummary, WorkloadClass,
};
pub use session::{
    run_cpu, run_device, run_device_fault_tolerant, run_sharded_fault_tolerant, DataSet,
    EndToEndReport, EngineKind, FaultCountsReport, FaultTolerantReport, SessionConfig,
    ShardedSessionReport,
};
pub use shard_recovery::{run_lr_cg_sharded_with_recovery, ShardTier, ShardedOutcome};
pub use streamed_backend::StreamedBackend;
pub use streaming::{
    choose_stream_plan, stream_pattern_sparse, try_stream_pattern_sparse, SparseStreamer,
    StreamConfig, StreamError, StreamReport,
};
pub use transfer::TransferModel;
