//! # fusedml-runtime
//!
//! A miniature SystemML-like runtime (§4.4): the GPU memory manager
//! (allocate / LRU-evict / host-device consistency), host↔device transfer
//! models (raw PCIe and the JVM-integration regime with JNI + format
//! conversion), a host-vs-device cost model, and end-to-end execution
//! sessions that reproduce Tables 5 and 6.

pub mod costmodel;
pub mod hybrid;
pub mod memman;
pub mod session;
pub mod streaming;
pub mod transfer;

pub use costmodel::{CostModel, Placement, PlacementDecision};
pub use hybrid::{HybridExecutor, HybridReport};
pub use streaming::{stream_pattern_sparse, StreamReport};
pub use memman::{MemError, MemStats, MemoryManager};
pub use session::{run_cpu, run_device, DataSet, EndToEndReport, EngineKind, SessionConfig};
pub use transfer::TransferModel;
