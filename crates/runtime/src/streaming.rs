//! Out-of-core (streaming) execution — the extension §3 sketches: "In
//! situations where such an amortization is not feasible, the developed
//! methods can easily be adapted to a streaming design for 'out-of-core'
//! computation."
//!
//! The matrix is split into row chunks; each chunk is transferred over
//! PCIe and its fused pattern contribution accumulated into `w` on the
//! device. Because the generic pattern is a sum of independent per-row
//! contributions (`w = Σ_r alpha * X[r,:]^T (v_r * (X[r,:] y)) (+ beta z
//! once)`), chunked evaluation is exact. Transfers of chunk `k+1` overlap
//! the kernel of chunk `k` (double buffering), so the modelled wall time
//! is `max(transfer, compute)` per chunk plus the pipeline fill.

use crate::transfer::TransferModel;
use fusedml_blas::GpuCsr;
use fusedml_core::{FusedExecutor, PatternSpec};
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer};
use fusedml_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Why a streamed evaluation could not run. Shape and spec mismatches are
/// caller bugs reported as typed errors at the public entry (they were
/// `assert!` panics before); device faults propagate from the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// `rows_per_chunk` was zero.
    InvalidChunk,
    /// An operand's length does not match the matrix shape.
    ShapeMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// A `PatternSpec` flag disagrees with the operands provided.
    SpecMismatch { what: &'static str, enabled: bool },
    /// The device failed while evaluating a chunk.
    Device(DeviceError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidChunk => write!(f, "chunk size must be positive"),
            StreamError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} length mismatch: expected {expected}, got {got}"),
            StreamError::SpecMismatch { what, enabled } => write!(
                f,
                "PatternSpec.with_{what} is {enabled} but the {what} operand is {}",
                if *enabled { "absent" } else { "present" }
            ),
            StreamError::Device(e) => write!(f, "device fault during streamed chunk: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for StreamError {
    fn from(e: DeviceError) -> Self {
        StreamError::Device(e)
    }
}

/// Report of a streamed pattern evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    pub chunks: usize,
    /// Total bytes moved host -> device.
    pub h2d_bytes: u64,
    /// Sum of per-chunk transfer times.
    pub transfer_ms: f64,
    /// Sum of per-chunk kernel times.
    pub kernel_ms: f64,
    /// Modelled wall time with double buffering: transfers overlap the
    /// previous chunk's kernel.
    pub overlapped_ms: f64,
    /// Wall time without overlap (single buffer), for comparison.
    pub serial_ms: f64,
}

/// Evaluate `w = alpha * X^T (v ⊙ (X y)) + beta z` for a matrix too large
/// to keep on the device, streaming `rows_per_chunk` rows at a time.
/// Returns the result vector (downloaded to host) and the cost report.
///
/// `v` (if present) is indexed by global row, so it is sliced alongside
/// the chunks; `y`, `z` and `w` live on the device for the whole run.
#[allow(clippy::too_many_arguments)] // the pattern's full operand set
pub fn stream_pattern_sparse(
    gpu: &Gpu,
    spec: PatternSpec,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    rows_per_chunk: usize,
    transfer: &TransferModel,
) -> (Vec<f64>, StreamReport) {
    try_stream_pattern_sparse(gpu, spec, x, v, y, z, rows_per_chunk, transfer)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`stream_pattern_sparse`]: invalid shapes or spec/operand
/// disagreements come back as [`StreamError`] instead of panicking, and
/// device faults mid-stream propagate as [`StreamError::Device`].
#[allow(clippy::too_many_arguments)] // the pattern's full operand set
pub fn try_stream_pattern_sparse(
    gpu: &Gpu,
    spec: PatternSpec,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    rows_per_chunk: usize,
    transfer: &TransferModel,
) -> Result<(Vec<f64>, StreamReport), StreamError> {
    if rows_per_chunk == 0 {
        return Err(StreamError::InvalidChunk);
    }
    if y.len() != x.cols() {
        return Err(StreamError::ShapeMismatch {
            what: "y",
            expected: x.cols(),
            got: y.len(),
        });
    }
    if let Some(v) = v {
        if v.len() != x.rows() {
            return Err(StreamError::ShapeMismatch {
                what: "v",
                expected: x.rows(),
                got: v.len(),
            });
        }
    }
    if let Some(z) = z {
        if z.len() != x.cols() {
            return Err(StreamError::ShapeMismatch {
                what: "z",
                expected: x.cols(),
                got: z.len(),
            });
        }
    }
    if spec.with_v != v.is_some() {
        return Err(StreamError::SpecMismatch {
            what: "v",
            enabled: spec.with_v,
        });
    }
    if spec.with_z != z.is_some() {
        return Err(StreamError::SpecMismatch {
            what: "z",
            enabled: spec.with_z,
        });
    }

    let n = x.cols();
    let yd = gpu.upload_f64("stream.y", y);
    let zd = z.map(|z| gpu.upload_f64("stream.z", z));
    let wd = gpu.alloc_f64("stream.w", n);
    let w_chunk = gpu.alloc_f64("stream.w_chunk", n);

    let mut report = StreamReport {
        chunks: 0,
        h2d_bytes: 0,
        transfer_ms: 0.0,
        kernel_ms: 0.0,
        overlapped_ms: 0.0,
        serial_ms: 0.0,
    };
    // y (+z) also cross the bus once.
    let vec_bytes = (y.len() * 8 + z.map_or(0, |z| z.len() * 8)) as u64;
    report.h2d_bytes += vec_bytes;
    let lead_in = transfer.h2d_ms(vec_bytes, false);
    report.transfer_ms += lead_in;
    if fusedml_trace::is_enabled() {
        fusedml_trace::sim_span(
            "stream",
            "vectors.h2d",
            "pcie",
            lead_in,
            &[("bytes", vec_bytes.into())],
        );
    }

    let mut ex = FusedExecutor::new(gpu);
    let mut prev_kernel_ms = 0.0f64;
    let mut overlapped = lead_in;

    let mut row0 = 0usize;
    while row0 < x.rows() {
        let rows = rows_per_chunk.min(x.rows() - row0);
        let chunk = slice_rows(x, row0, rows);
        let chunk_bytes = chunk.size_bytes() + if v.is_some() { rows as u64 * 8 } else { 0 };

        let xd = GpuCsr::upload(gpu, "stream.chunk", &chunk);
        let vd = v.map(|v| gpu.upload_f64("stream.v_chunk", &v[row0..row0 + rows]));

        // Each chunk contributes alpha * X_k^T (v_k ⊙ (X_k y)); the beta*z
        // term is applied once at the end.
        let chunk_spec = PatternSpec {
            alpha: spec.alpha,
            with_v: spec.with_v,
            beta: 0.0,
            with_z: false,
        };
        ex.reset();
        ex.try_pattern_sparse(chunk_spec, &xd, vd.as_ref(), &yd, None, &w_chunk)?;
        try_accumulate(gpu, &mut ex, &w_chunk, &wd)?;
        let kernel_ms = ex.total_sim_ms();

        let t_ms = transfer.h2d_ms(chunk_bytes, false);
        if fusedml_trace::is_enabled() {
            fusedml_trace::sim_span(
                "stream",
                "chunk.h2d",
                "pcie",
                t_ms,
                &[
                    ("chunk", report.chunks.into()),
                    ("rows", rows.into()),
                    ("bytes", chunk_bytes.into()),
                ],
            );
        }
        report.chunks += 1;
        report.h2d_bytes += chunk_bytes;
        report.transfer_ms += t_ms;
        report.kernel_ms += kernel_ms;
        // Double buffering: this chunk's transfer overlaps the previous
        // chunk's kernel.
        overlapped += t_ms.max(prev_kernel_ms);
        prev_kernel_ms = kernel_ms;

        gpu.free(&xd.row_off);
        gpu.free(&xd.col_idx);
        gpu.free(&xd.values);
        // The per-chunk v slice must be released with the chunk; this used
        // to leak one device buffer per chunk when `with_v` was set.
        if let Some(vd) = &vd {
            gpu.free(vd);
        }
        row0 += rows;
    }
    overlapped += prev_kernel_ms; // drain the pipeline

    // beta * z once, on device.
    if let (Some(zd), true) = (&zd, spec.with_z) {
        ex.reset();
        let s = fusedml_blas::level1::try_axpy(gpu, spec.beta, zd, &wd)?;
        report.kernel_ms += s.sim_ms();
        overlapped += s.sim_ms();
    }

    report.overlapped_ms = overlapped;
    report.serial_ms = report.transfer_ms + report.kernel_ms;

    let w = wd.to_vec_f64();
    // Release the long-lived device vectors too: a streaming evaluation
    // should leave device memory exactly where it found it.
    gpu.free(&yd);
    if let Some(zd) = &zd {
        gpu.free(zd);
    }
    gpu.free(&w_chunk);
    gpu.free(&wd);
    Ok((w, report))
}

/// Extract rows `[row0, row0 + rows)` as a standalone CSR matrix.
fn slice_rows(x: &CsrMatrix, row0: usize, rows: usize) -> CsrMatrix {
    let start = x.row_off()[row0];
    let end = x.row_off()[row0 + rows];
    let row_off: Vec<usize> = x.row_off()[row0..=row0 + rows]
        .iter()
        .map(|&o| o - start)
        .collect();
    CsrMatrix::from_parts(
        rows,
        x.cols(),
        row_off,
        x.col_idx()[start..end].to_vec(),
        x.values()[start..end].to_vec(),
    )
}

/// `w += w_chunk` on device (one elementwise kernel), charging the cost to
/// the executor's ledger.
fn try_accumulate(
    gpu: &Gpu,
    ex: &mut FusedExecutor,
    src: &GpuBuffer,
    dst: &GpuBuffer,
) -> Result<(), DeviceError> {
    let s = fusedml_blas::level1::try_axpy(gpu, 1.0, src, dst)?;
    ex.launches.push(s);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn streamed_result_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(1000, 200, 0.05, 31);
        let y = random_vector(200, 1);
        let v = random_vector(1000, 2);
        let z = random_vector(200, 3);
        let spec = PatternSpec::full(1.5, -0.5);
        let (w, report) = stream_pattern_sparse(
            &g,
            spec,
            &x,
            Some(&v),
            &y,
            Some(&z),
            137, // deliberately not dividing 1000
            &TransferModel::native(),
        );
        let expect = reference::pattern_csr(1.5, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
        assert_eq!(report.chunks, 8);
        assert!(report.h2d_bytes > x.size_bytes());
    }

    #[test]
    fn single_chunk_equals_whole_matrix() {
        let g = gpu();
        let x = uniform_sparse(400, 100, 0.05, 32);
        let y = random_vector(100, 4);
        let (w, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            10_000,
            &TransferModel::native(),
        );
        assert_eq!(report.chunks, 1);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
    }

    #[test]
    fn overlap_beats_serial_execution() {
        let g = gpu();
        let x = uniform_sparse(8000, 256, 0.05, 33);
        let y = random_vector(256, 5);
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            1000,
            &TransferModel::native(),
        );
        assert!(report.chunks == 8);
        assert!(
            report.overlapped_ms < report.serial_ms,
            "overlap {} vs serial {}",
            report.overlapped_ms,
            report.serial_ms
        );
        // Overlapped time is bounded below by the slower pipeline stage.
        assert!(report.overlapped_ms >= report.transfer_ms.max(report.kernel_ms) * 0.99);
    }

    #[test]
    fn chunk_slicing_preserves_rows() {
        let x = uniform_sparse(50, 30, 0.2, 34);
        let s = slice_rows(&x, 10, 15);
        assert_eq!(s.rows(), 15);
        assert_eq!(s.cols(), 30);
        for r in 0..15 {
            assert_eq!(
                s.row_entries(r).collect::<Vec<_>>(),
                x.row_entries(10 + r).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let g = gpu();
        let x = uniform_sparse(10, 10, 0.2, 35);
        let y = random_vector(10, 6);
        stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            0,
            &TransferModel::native(),
        );
    }

    #[test]
    fn streaming_releases_all_device_memory() {
        // Regression: the per-chunk v slice leaked one device buffer per
        // chunk (and the long-lived vectors were never freed), so memory
        // grew linearly with the chunk count under with_v=true.
        let g = gpu();
        let x = uniform_sparse(1000, 150, 0.05, 40);
        let y = random_vector(150, 41);
        let v = random_vector(1000, 42);
        let before = g.allocated_bytes();
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec {
                alpha: 1.0,
                with_v: true,
                beta: 0.0,
                with_z: false,
            },
            &x,
            Some(&v),
            &y,
            None,
            100,
            &TransferModel::native(),
        );
        assert_eq!(report.chunks, 10);
        assert_eq!(
            g.allocated_bytes(),
            before,
            "streaming leaked {} bytes across {} chunks",
            g.allocated_bytes() - before,
            report.chunks
        );
    }

    #[test]
    fn pool_reuses_chunk_staging_after_warmup() {
        // Regression: every chunk used to allocate fresh backing stores for
        // its CSR staging and v slice; with the buffer pool, steady-state
        // chunks recycle the previous chunk's blocks, and a second
        // identical evaluation allocates nothing at all.
        let g = gpu();
        let x = uniform_sparse(1200, 150, 0.05, 60);
        let y = random_vector(150, 61);
        let v = random_vector(1200, 62);
        let spec = PatternSpec {
            alpha: 1.0,
            with_v: true,
            beta: 0.0,
            with_z: false,
        };
        let run = || {
            stream_pattern_sparse(
                &g,
                spec,
                &x,
                Some(&v),
                &y,
                None,
                128,
                &TransferModel::native(),
            )
        };
        run(); // warm-up populates the pool buckets
        let warm = g.pool_stats();
        assert!(
            warm.hits > 0,
            "steady-state chunks must recycle earlier chunk staging"
        );
        let (w, _) = run();
        let hot = g.pool_stats();
        assert_eq!(
            hot.misses, warm.misses,
            "second identical run must cause zero net allocator traffic"
        );
        assert!(hot.hits > warm.hits);
        // Recycled staging must not perturb the result.
        let expect = reference::pattern_csr(1.0, &x, Some(&v), &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
    }

    #[test]
    fn invalid_inputs_yield_typed_errors() {
        let g = gpu();
        let x = uniform_sparse(20, 12, 0.3, 36);
        let y = random_vector(12, 7);
        let t = TransferModel::native();

        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &y, None, 0, &t)
            .unwrap_err();
        assert_eq!(e, StreamError::InvalidChunk);

        let bad_y = random_vector(5, 8);
        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &bad_y, None, 4, &t)
            .unwrap_err();
        assert_eq!(
            e,
            StreamError::ShapeMismatch {
                what: "y",
                expected: 12,
                got: 5
            }
        );

        let bad_v = random_vector(3, 9);
        let spec_v = PatternSpec {
            alpha: 1.0,
            with_v: true,
            beta: 0.0,
            with_z: false,
        };
        let e =
            try_stream_pattern_sparse(&g, spec_v, &x, Some(&bad_v), &y, None, 4, &t).unwrap_err();
        assert!(matches!(e, StreamError::ShapeMismatch { what: "v", .. }));

        // Spec says with_v but no v operand supplied.
        let e = try_stream_pattern_sparse(&g, spec_v, &x, None, &y, None, 4, &t).unwrap_err();
        assert_eq!(
            e,
            StreamError::SpecMismatch {
                what: "v",
                enabled: true
            }
        );

        // z operand supplied but spec has with_z=false.
        let z = random_vector(12, 10);
        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &y, Some(&z), 4, &t)
            .unwrap_err();
        assert_eq!(
            e,
            StreamError::SpecMismatch {
                what: "z",
                enabled: false
            }
        );
    }

    /// Parametrized sweep over chunk sizes (dividing and non-dividing,
    /// larger than the matrix) and every v/z operand combination: the
    /// streamed result must match the single-shot reference and the
    /// overlap model must never exceed the serial model.
    #[test]
    fn streaming_correct_across_chunkings_and_operands() {
        let g = gpu();
        let m = 730;
        let n = 96;
        let x = uniform_sparse(m, n, 0.05, 50);
        let y = random_vector(n, 51);
        let v = random_vector(m, 52);
        let z = random_vector(n, 53);

        for rows_per_chunk in [1usize, 97, 365, 730, 731, 10_000] {
            for (with_v, with_z) in [(false, false), (true, false), (false, true), (true, true)] {
                let spec = PatternSpec {
                    alpha: 1.25,
                    with_v,
                    beta: if with_z { -0.75 } else { 0.0 },
                    with_z,
                };
                let before = g.allocated_bytes();
                let (w, report) = stream_pattern_sparse(
                    &g,
                    spec,
                    &x,
                    with_v.then_some(&v[..]),
                    &y,
                    with_z.then_some(&z[..]),
                    rows_per_chunk,
                    &TransferModel::native(),
                );
                let expect = reference::pattern_csr(
                    1.25,
                    &x,
                    with_v.then_some(&v),
                    &y,
                    spec.beta,
                    with_z.then_some(&z),
                );
                assert!(
                    reference::rel_l2_error(&w, &expect) < 1e-10,
                    "chunk={rows_per_chunk} v={with_v} z={with_z}"
                );
                assert_eq!(report.chunks, m.div_ceil(rows_per_chunk.min(m)));
                assert!(
                    report.overlapped_ms <= report.serial_ms + 1e-9,
                    "chunk={rows_per_chunk}: overlap {} > serial {}",
                    report.overlapped_ms,
                    report.serial_ms
                );
                assert_eq!(g.allocated_bytes(), before, "chunk={rows_per_chunk} leaked");
            }
        }
    }
}
