//! Out-of-core (streaming) execution — the extension §3 sketches: "In
//! situations where such an amortization is not feasible, the developed
//! methods can easily be adapted to a streaming design for 'out-of-core'
//! computation."
//!
//! The matrix is split into row chunks; each chunk crosses PCIe through a
//! multi-queue [`CopyEngine`] and its fused pattern contribution is
//! evaluated on device. The pipeline schedule is a genuine event model
//! ([`pipeline_wall`]): up to `depth` staged chunks may be in flight, each
//! H2D queue serializes its own transfers at a static bandwidth share, and
//! kernels serialize on the single compute engine — `depth = 1` is exactly
//! the serial model, `depth = 2` is classic double buffering, deeper
//! pipelines ride out slow transfers.
//!
//! Two things make consecutive solver iterations cheap:
//!
//! * **Chunk residency** — a byte-budgeted cache of device-resident chunks
//!   ([`StreamConfig::resident_bytes_cap`]). Admission is epoch-based: an
//!   entry may only be evicted by a *later* pass, never by the pass that
//!   last touched it, so a partial budget converges to a stable resident
//!   prefix instead of thrashing on every scan. Resident chunks skip the
//!   copy engine entirely.
//! * **Launch-plan hoisting** — per-chunk launch plans are memoized in a
//!   [`PlanCache`] keyed by chunk shape, so a streamed pass plans once per
//!   *distinct chunk shape* (body + remainder = at most two), not once per
//!   chunk, and later passes plan not at all.
//!
//! Numerics follow the sharded executor's bit-identity contract: each
//! chunk's kernel writes only the per-row products `u_r = v_r * (X[r,:] y)`
//! (with the intra-row reduction order pinned by the *full* matrix's VS),
//! and the epilogue `w[c] (+)= alpha * u_r * X[r,c]` runs on the host in
//! ascending global row order with `beta * z` applied once at
//! initialization. Chunk size, pipeline depth, queue count and residency
//! budget therefore change the cost model only — the result bits never
//! move.

use crate::transfer::TransferModel;
use fusedml_blas::{level1, try_csrmv, vector_size_for_mean_nnz, GpuCsr, SpmvStyle};
use fusedml_core::sparse_fused::try_fused_xt_p_shared;
use fusedml_core::sparse_large::try_fused_xt_p_global;
use fusedml_core::{
    try_fused_pattern_shard, try_plan_sparse_with_vs, PatternSpec, PlanCache, PlanCacheStats,
    SparsePlan, StreamPlan,
};
use fusedml_gpu_sim::{
    estimate_fused_kernel, pipeline_wall, ChainOp, ChunkCost, CopyEngine, CopyEngineSpec,
    CopyEngineStats, Counters, DeviceError, DeviceSpec, Gpu, GpuBuffer, LaunchStats,
};
use fusedml_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a streamed evaluation could not run. Shape and spec mismatches are
/// caller bugs reported as typed errors at the public entry (they were
/// `assert!` panics before); device faults propagate from the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// `rows_per_chunk` was zero.
    InvalidChunk,
    /// The pipeline depth was zero.
    InvalidDepth,
    /// The copy engine was configured with zero queues.
    InvalidQueues,
    /// An operand's length does not match the matrix shape.
    ShapeMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// A `PatternSpec` flag disagrees with the operands provided.
    SpecMismatch { what: &'static str, enabled: bool },
    /// The device failed while evaluating a chunk.
    Device(DeviceError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidChunk => write!(f, "chunk size must be positive"),
            StreamError::InvalidDepth => write!(f, "pipeline depth must be positive"),
            StreamError::InvalidQueues => write!(f, "copy engine needs at least one queue"),
            StreamError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} length mismatch: expected {expected}, got {got}"),
            StreamError::SpecMismatch { what, enabled } => write!(
                f,
                "PatternSpec.with_{what} is {enabled} but the {what} operand is {}",
                if *enabled { "absent" } else { "present" }
            ),
            StreamError::Device(e) => write!(f, "device fault during streamed chunk: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for StreamError {
    fn from(e: DeviceError) -> Self {
        StreamError::Device(e)
    }
}

/// How a [`SparseStreamer`] chunks, pipelines and caches. `None` fields
/// are filled in by the cost-model search ([`choose_stream_plan`]),
/// memoized under the plan cache's streaming key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Rows per streamed chunk; `None` lets the cost search choose.
    pub rows_per_chunk: Option<usize>,
    /// Staged chunks in flight (1 = serial, 2 = double buffering);
    /// `None` lets the cost search choose.
    pub depth: Option<usize>,
    /// Independent H2D copy-engine queues (each gets a static
    /// `bandwidth / queues` share of the link).
    pub queues: usize,
    /// Byte budget for device-resident chunks (0 = re-stream everything).
    pub resident_bytes_cap: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            rows_per_chunk: None,
            depth: None,
            queues: 1,
            resident_bytes_cap: 0,
        }
    }
}

impl StreamConfig {
    /// Everything chosen by the cost-model search.
    pub fn auto() -> Self {
        StreamConfig::default()
    }

    /// Pin the chunk size and pipeline depth explicitly.
    pub fn fixed(rows_per_chunk: usize, depth: usize) -> Self {
        StreamConfig {
            rows_per_chunk: Some(rows_per_chunk),
            depth: Some(depth),
            ..StreamConfig::default()
        }
    }

    pub fn with_queues(mut self, queues: usize) -> Self {
        self.queues = queues;
        self
    }

    pub fn with_residency(mut self, resident_bytes_cap: u64) -> Self {
        self.resident_bytes_cap = resident_bytes_cap;
        self
    }
}

/// Report of a streamed pattern evaluation.
///
/// The pipeline fields added by the copy-engine rework carry serde
/// defaults so reports serialized before the rework still deserialize
/// (they were produced by the fixed depth-2 double-buffer model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    pub chunks: usize,
    /// Total bytes moved host -> device.
    pub h2d_bytes: u64,
    /// Sum of per-chunk transfer times (including the lead-in vectors).
    pub transfer_ms: f64,
    /// Sum of per-chunk kernel times.
    pub kernel_ms: f64,
    /// Modelled wall time of the pipeline schedule: up to `depth` staged
    /// chunks in flight, per-queue transfer serialization, kernels
    /// serialized on the compute engine.
    pub overlapped_ms: f64,
    /// Wall time without overlap (single buffer), for comparison.
    pub serial_ms: f64,
    /// Pipeline depth the schedule ran at (pre-rework reports: 2).
    #[serde(default = "legacy_depth")]
    pub depth: usize,
    /// Residency byte budget in effect (pre-rework reports: 0).
    #[serde(default)]
    pub resident_bytes_cap: u64,
    /// Chunks served from device residency instead of the bus.
    #[serde(default)]
    pub residency_hits: u64,
    /// Compute-engine idle time inside [`Self::overlapped_ms`] (initial
    /// fill included): the bubble a deeper pipeline or residency removes.
    #[serde(default)]
    pub bubble_ms: f64,
}

/// Serde default for [`StreamReport::depth`], and the depth the one-shot
/// [`stream_pattern_sparse`] wrapper runs at: reports from before the
/// copy-engine rework came out of the hard-coded double-buffer model.
fn legacy_depth() -> usize {
    2
}

/// Per-process flow-id source so concurrent streamers never share arrows.
static NEXT_FLOW_ID: AtomicU64 = AtomicU64::new(1);

/// How many steady-state (warm-residency) passes the cost search prices
/// against one cold pass: solvers run many iterations over the same
/// matrix, so the fuse-across-iteration schedule should optimize for the
/// warm loop, not the first touch.
const SEARCH_STEADY_PASSES: f64 = 9.0;

/// Deepest pipeline the search considers.
const SEARCH_MAX_DEPTH: usize = 4;

/// CSR bytes of a row slice with `rows` rows and `nnz` nonzeros (8-byte
/// value and 4-byte column index per nonzero, `rows + 1` 4-byte offsets)
/// — the same accounting [`ChainOp`] uses.
fn csr_slice_bytes(rows: usize, nnz: u64) -> u64 {
    nnz * 12 + (rows as u64 + 1) * 4
}

/// Cost-model search for the streaming configuration: sweep chunk sizes
/// (power-of-two fractions of the matrix) and pipeline depths, price each
/// candidate with the fused-kernel estimate plus the copy-engine pipeline
/// schedule, and score one cold pass plus `SEARCH_STEADY_PASSES` warm
/// passes under the residency budget. Deterministic in its arguments; the
/// caller memoizes it under the plan cache's streaming key.
pub fn choose_stream_plan(
    device: &DeviceSpec,
    rows: usize,
    cols: usize,
    nnz: u64,
    engine: &CopyEngineSpec,
    resident_bytes_cap: u64,
) -> StreamPlan {
    let rows = rows.max(1);
    let lead_ms = engine.h2d_ms(cols as u64 * 8);
    let mut candidates: Vec<usize> = (0..=6).map(|s| rows.div_ceil(1 << s)).collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates.reverse(); // largest chunks first: ties keep the coarsest

    let mut best: Option<(f64, StreamPlan)> = None;
    for &rpc in &candidates {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        let mut resident_bytes = 0u64;
        let mut feasible = true;
        let mut row0 = 0usize;
        while row0 < rows {
            let c_rows = rpc.min(rows - row0);
            let c_nnz = ((nnz as u128 * c_rows as u128) / rows as u128).max(1) as u64;
            let Some(est) = estimate_fused_kernel(
                device,
                &[
                    ChainOp::SpMv {
                        rows: c_rows,
                        cols,
                        nnz: c_nnz,
                    },
                    ChainOp::Map {
                        len: c_rows,
                        side_inputs: 1,
                        flops_per_elem: 1,
                    },
                    ChainOp::SpTmv {
                        rows: c_rows,
                        cols,
                        nnz: c_nnz,
                    },
                ],
            ) else {
                feasible = false;
                break;
            };
            let kernel_ms = est.modeled_ms();
            let bytes = csr_slice_bytes(c_rows, c_nnz);
            let transfer_ms = engine.h2d_ms(bytes);
            cold.push(ChunkCost {
                transfer_ms,
                kernel_ms,
            });
            // Warm pass: the greedy resident prefix stays on device.
            let resident = resident_bytes + bytes <= resident_bytes_cap;
            if resident {
                resident_bytes += bytes;
            }
            warm.push(ChunkCost {
                transfer_ms: if resident { 0.0 } else { transfer_ms },
                kernel_ms,
            });
            row0 += c_rows;
        }
        if !feasible {
            continue;
        }
        let lead = ChunkCost {
            transfer_ms: lead_ms,
            kernel_ms: 0.0,
        };
        let mut cold_sched = vec![lead];
        cold_sched.extend_from_slice(&cold);
        let mut warm_sched = vec![lead];
        warm_sched.extend_from_slice(&warm);
        for depth in 1..=SEARCH_MAX_DEPTH {
            let cold_wall = pipeline_wall(depth, engine.queues, 0.0, &cold_sched).wall_ms;
            let warm_wall = pipeline_wall(depth, engine.queues, 0.0, &warm_sched).wall_ms;
            let score = cold_wall + SEARCH_STEADY_PASSES * warm_wall;
            if best.map_or(true, |(b, _)| score + 1e-12 < b) {
                best = Some((
                    score,
                    StreamPlan {
                        rows_per_chunk: rpc,
                        depth,
                        modeled_ms: cold_wall,
                    },
                ));
            }
        }
    }
    best.map(|(_, plan)| plan).unwrap_or(StreamPlan {
        rows_per_chunk: rows,
        depth: 2,
        modeled_ms: 0.0,
    })
}

/// A host-side row chunk plus its global row offset.
struct HostChunk {
    start: usize,
    host: CsrMatrix,
}

/// A chunk kept device-resident under the residency budget.
struct ResidentChunk {
    dev: GpuCsr,
    bytes: u64,
    /// Pass (epoch) that last touched the entry. Entries touched in the
    /// *current* pass are never evicted — that admission guard is what
    /// turns LRU into a stable resident prefix instead of scan-thrash.
    last_used: u64,
}

/// Persistent streaming executor over one CSR matrix: chunk residency,
/// multi-queue copy-engine pipeline, hoisted per-shape launch plans, and
/// the sharded bit-identity contract for all three matrix products a
/// solver needs (pattern / `X y` / `alpha X^T u`).
pub struct SparseStreamer<'g> {
    gpu: &'g Gpu,
    transfer: TransferModel,
    engine: CopyEngine,
    depth: usize,
    queues: usize,
    resident_bytes_cap: u64,
    rows: usize,
    cols: usize,
    /// Equation-4 VS from the *full* matrix's mean nnz/row, pinned for
    /// every chunk so chunking never changes the intra-row reduction
    /// order (the bit-identity contract).
    base_vs: usize,
    chunks: Vec<HostChunk>,
    resident: Vec<Option<ResidentChunk>>,
    resident_bytes: u64,
    epoch: u64,
    residency_hits_total: u64,
    plans: PlanCache,
    plans_on: bool,
    y_rep: GpuBuffer,
    w_partial: GpuBuffer,
    /// Every launch since the last [`SparseStreamer::reset`].
    pub launches: Vec<LaunchStats>,
    /// Modelled pipeline wall milliseconds since the last reset.
    wall_ms: f64,
    released: bool,
}

impl<'g> SparseStreamer<'g> {
    /// Chunk `x` and set up the streaming pipeline. `None` config fields
    /// are resolved by [`choose_stream_plan`], memoized under the plan
    /// cache's streaming key so a long solver loop searches once.
    pub fn try_new(
        gpu: &'g Gpu,
        x: &CsrMatrix,
        transfer: TransferModel,
        cfg: StreamConfig,
    ) -> Result<Self, StreamError> {
        if cfg.queues == 0 {
            return Err(StreamError::InvalidQueues);
        }
        if cfg.rows_per_chunk == Some(0) {
            return Err(StreamError::InvalidChunk);
        }
        if cfg.depth == Some(0) {
            return Err(StreamError::InvalidDepth);
        }
        let (rows, cols) = (x.rows(), x.cols());
        let base_vs = vector_size_for_mean_nnz(x.mean_nnz_per_row());
        let engine_spec = CopyEngineSpec::new(cfg.queues, transfer.pcie.clone());
        let mut plans = PlanCache::new();
        let plans_on = fusedml_core::plan_cache_enabled();

        let (rows_per_chunk, depth) = match (cfg.rows_per_chunk, cfg.depth) {
            (Some(rpc), Some(d)) => (rpc, d),
            (rpc, d) => {
                let (searched, _hit) = plans.stream_plan(
                    plans_on,
                    gpu.spec(),
                    rows,
                    cols,
                    x.nnz() as u64,
                    base_vs,
                    cfg.queues,
                    cfg.resident_bytes_cap,
                    || {
                        Ok::<_, StreamError>(choose_stream_plan(
                            gpu.spec(),
                            rows,
                            cols,
                            x.nnz() as u64,
                            &engine_spec,
                            cfg.resident_bytes_cap,
                        ))
                    },
                )?;
                (
                    rpc.unwrap_or(searched.rows_per_chunk),
                    d.unwrap_or(searched.depth),
                )
            }
        };

        let step = rows_per_chunk.min(rows.max(1));
        let mut chunks = Vec::new();
        let mut row0 = 0usize;
        while row0 < rows {
            let c_rows = step.min(rows - row0);
            chunks.push(HostChunk {
                start: row0,
                host: slice_rows(x, row0, c_rows),
            });
            row0 += c_rows;
        }
        let resident = (0..chunks.len()).map(|_| None).collect();

        let y_rep = gpu.try_alloc_f64("stream.y", cols)?;
        let w_partial = gpu.try_alloc_f64("stream.w_partial", cols)?;
        Ok(SparseStreamer {
            gpu,
            transfer,
            engine: CopyEngine::new(engine_spec),
            depth,
            queues: cfg.queues,
            resident_bytes_cap: cfg.resident_bytes_cap,
            rows,
            cols,
            base_vs,
            chunks,
            resident,
            resident_bytes: 0,
            epoch: 0,
            residency_hits_total: 0,
            plans,
            plans_on,
            y_rep,
            w_partial,
            launches: Vec::new(),
            wall_ms: 0.0,
            released: false,
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Chunk count of the resolved schedule.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Rows per body chunk of the resolved schedule.
    pub fn rows_per_chunk(&self) -> usize {
        self.chunks
            .first()
            .map_or(self.rows.max(1), |c| c.host.rows())
    }

    /// Pipeline depth of the resolved schedule.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The VS every chunk kernel is pinned to.
    pub fn base_vs(&self) -> usize {
        self.base_vs
    }

    /// Bytes currently held by device-resident chunks.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Chunks served from residency since construction.
    pub fn residency_hits_total(&self) -> u64 {
        self.residency_hits_total
    }

    /// Copy-engine traffic since construction.
    pub fn copy_stats(&self) -> CopyEngineStats {
        self.engine.stats()
    }

    /// Enable/disable launch-plan memoization (mirrors the sharded
    /// executor; the default follows the process-wide setting).
    pub fn set_plan_cache(&mut self, enabled: bool) {
        self.plans_on = enabled;
    }

    /// Merged plan-cache traffic (per-chunk launch plans + the memoized
    /// streaming configuration).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Traffic of the per-chunk launch-plan side alone: `plans_computed`
    /// here is the number of distinct chunk shapes planned (at most two —
    /// body and remainder), not the number of chunks.
    pub fn chunk_plan_stats(&self) -> PlanCacheStats {
        self.plans.sparse_stats()
    }

    /// Traffic of the memoized streaming-configuration side alone.
    pub fn stream_plan_stats(&self) -> PlanCacheStats {
        self.plans.stream_stats()
    }

    /// Zero the plan-cache traffic counters (entries stay warm).
    pub fn reset_plan_stats(&mut self) {
        self.plans.reset_stats();
    }

    /// Modelled wall milliseconds since the last [`Self::reset`].
    pub fn wall_ms(&self) -> f64 {
        self.wall_ms
    }

    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Hardware counters merged over every launch since the last reset.
    pub fn counters_total(&self) -> Counters {
        let mut total = Counters::default();
        for l in &self.launches {
            total.merge(&l.counters);
        }
        total
    }

    /// Clear the per-run ledger (launches + wall). Residency, plans and
    /// copy-engine totals persist — they are cross-iteration state.
    pub fn reset(&mut self) {
        self.launches.clear();
        self.wall_ms = 0.0;
    }

    /// Release every device allocation (persistent vectors and resident
    /// chunks). The streamer must not be used afterwards; dropping calls
    /// this automatically.
    pub fn release(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        self.gpu.free(&self.y_rep);
        self.gpu.free(&self.w_partial);
        for i in 0..self.resident.len() {
            self.evict(i);
        }
    }

    fn free_csr(&self, dev: &GpuCsr) {
        self.gpu.free(&dev.row_off);
        self.gpu.free(&dev.col_idx);
        self.gpu.free(&dev.values);
    }

    fn evict(&mut self, i: usize) {
        if let Some(rc) = self.resident[i].take() {
            self.resident_bytes -= rc.bytes;
            self.free_csr(&rc.dev);
        }
    }

    /// Device handle for chunk `i`: resident hit (zero transfer), a new
    /// admission under the byte budget, or a transient upload the caller
    /// frees after the kernel. Returns `(dev, h2d_bytes, hit, transient)`.
    fn try_acquire_chunk(&mut self, i: usize) -> Result<(GpuCsr, u64, bool, bool), StreamError> {
        if let Some(rc) = &mut self.resident[i] {
            rc.last_used = self.epoch;
            self.residency_hits_total += 1;
            return Ok((rc.dev.clone(), 0, true, false));
        }
        let dev = GpuCsr::try_upload(self.gpu, "stream.chunk", &self.chunks[i].host)?;
        let bytes = dev.size_bytes();
        if bytes <= self.resident_bytes_cap {
            // Make room from entries no pass is currently using. Entries
            // touched this epoch are off limits: the pass that admitted
            // the prefix must not be the one that evicts it.
            while self.resident_bytes + bytes > self.resident_bytes_cap {
                let victim = self
                    .resident
                    .iter()
                    .enumerate()
                    .filter_map(|(j, rc)| rc.as_ref().map(|rc| (rc.last_used, j)))
                    .filter(|&(lu, _)| lu < self.epoch)
                    .min();
                match victim {
                    Some((_, j)) => self.evict(j),
                    None => break,
                }
            }
            if self.resident_bytes + bytes <= self.resident_bytes_cap {
                self.resident_bytes += bytes;
                self.resident[i] = Some(ResidentChunk {
                    dev: dev.clone(),
                    bytes,
                    last_used: self.epoch,
                });
                return Ok((dev, bytes, false, false));
            }
        }
        Ok((dev, bytes, false, true))
    }

    /// Launch plan for a chunk with `c_rows` rows, memoized by shape:
    /// every equal-sized chunk shares one entry, so a pass computes at
    /// most two plans (body + remainder) no matter how many chunks it has.
    fn chunk_plan(&mut self, c_rows: usize) -> Result<SparsePlan, StreamError> {
        let spec = self.gpu.spec();
        let (n, vs) = (self.cols, self.base_vs);
        let (plan, _cached) = self
            .plans
            .sparse_plan(self.plans_on, spec, c_rows, n, vs, || {
                try_plan_sparse_with_vs(spec, c_rows, n, vs)
            })
            .map_err(DeviceError::from)?;
        Ok(plan)
    }

    /// Charge one H2D transfer on `queue`: bus time from the copy engine
    /// (per-queue bandwidth share) plus the host-side JNI/format-conversion
    /// overhead the PCIe-only engine does not model (zero for native).
    fn charge_h2d(&self, queue: usize, bytes: u64) -> f64 {
        let bus = self.engine.charge_h2d(queue, bytes);
        let host_extra = self.transfer.h2d_ms(bytes, false) - self.transfer.pcie.transfer_ms(bytes);
        bus + host_extra.max(0.0)
    }

    fn new_report(&self) -> StreamReport {
        StreamReport {
            chunks: 0,
            h2d_bytes: 0,
            transfer_ms: 0.0,
            kernel_ms: 0.0,
            overlapped_ms: 0.0,
            serial_ms: 0.0,
            depth: self.depth,
            resident_bytes_cap: self.resident_bytes_cap,
            residency_hits: 0,
            bubble_ms: 0.0,
        }
    }

    /// Run the event-driven pipeline schedule over this pass's chunk
    /// costs and fill in the derived report fields. The lead-in vector
    /// transfer enters the schedule as a zero-kernel chunk so every
    /// kernel start implicitly waits for its operands — which also keeps
    /// `depth = 1` exactly equal to the serial model.
    fn finish(
        &mut self,
        mut report: StreamReport,
        lead_ms: f64,
        lead_bytes: u64,
        costs: &[ChunkCost],
    ) -> StreamReport {
        let mut sched = Vec::with_capacity(costs.len() + 1);
        if lead_bytes > 0 {
            sched.push(ChunkCost {
                transfer_ms: lead_ms,
                kernel_ms: 0.0,
            });
        }
        sched.extend_from_slice(costs);
        let pm = pipeline_wall(self.depth, self.queues, 0.0, &sched);
        report.overlapped_ms = pm.wall_ms;
        report.bubble_ms = pm.bubble_ms;
        report.serial_ms = report.transfer_ms + report.kernel_ms;
        self.wall_ms += pm.wall_ms;
        report
    }

    /// `w = alpha * X^T (v (.) (X y)) + beta * z`, streamed. Host-slice
    /// API with the canonical ascending-row epilogue; see the module docs
    /// for the bit-identity contract.
    pub fn try_pattern_host(
        &mut self,
        spec: PatternSpec,
        v: Option<&[f64]>,
        y: &[f64],
        z: Option<&[f64]>,
        w: &mut [f64],
    ) -> Result<StreamReport, StreamError> {
        if y.len() != self.cols {
            return Err(StreamError::ShapeMismatch {
                what: "y",
                expected: self.cols,
                got: y.len(),
            });
        }
        if let Some(v) = v {
            if v.len() != self.rows {
                return Err(StreamError::ShapeMismatch {
                    what: "v",
                    expected: self.rows,
                    got: v.len(),
                });
            }
        }
        if let Some(z) = z {
            if z.len() != self.cols {
                return Err(StreamError::ShapeMismatch {
                    what: "z",
                    expected: self.cols,
                    got: z.len(),
                });
            }
        }
        if w.len() != self.cols {
            return Err(StreamError::ShapeMismatch {
                what: "w",
                expected: self.cols,
                got: w.len(),
            });
        }
        if spec.with_v != v.is_some() {
            return Err(StreamError::SpecMismatch {
                what: "v",
                enabled: spec.with_v,
            });
        }
        if spec.with_z != z.is_some() {
            return Err(StreamError::SpecMismatch {
                what: "z",
                enabled: spec.with_z,
            });
        }

        self.epoch += 1;
        let mut report = self.new_report();
        self.y_rep.copy_from_f64(y);
        let lead_bytes = (self.cols * 8) as u64;
        let lead_ms = self.charge_h2d(0, lead_bytes);
        report.h2d_bytes += lead_bytes;
        report.transfer_ms += lead_ms;
        if fusedml_trace::is_enabled() {
            fusedml_trace::sim_span(
                "stream",
                "vectors.h2d",
                "pcie",
                lead_ms,
                &[("bytes", lead_bytes.into())],
            );
        }

        // Canonical epilogue initialization: beta * z before any chunk
        // contribution, so the summation order is chunking-invariant.
        for (c, wc) in w.iter_mut().enumerate() {
            *wc = match z {
                Some(z) => spec.beta * z[c],
                None => 0.0,
            };
        }

        let mut costs = Vec::with_capacity(self.chunks.len());
        let mut next_q = 1usize; // queue 0 carried the lead-in
        for i in 0..self.chunks.len() {
            let (start, c_rows) = (self.chunks[i].start, self.chunks[i].host.rows());
            let flow_id = if fusedml_trace::is_enabled() {
                let id = NEXT_FLOW_ID.fetch_add(1, Ordering::Relaxed);
                // Arrow root on the host track: binds to the enclosing
                // solver-iteration wall span in the export.
                fusedml_trace::wall_flow_start("stream", "iter.flow", "host", id);
                id
            } else {
                0
            };

            let (dev, x_bytes, hit, transient) = self.try_acquire_chunk(i)?;
            if hit {
                report.residency_hits += 1;
            }
            let vd = match v {
                Some(v) => Some(
                    self.gpu
                        .try_upload_f64("stream.v_chunk", &v[start..start + c_rows])?,
                ),
                None => None,
            };
            let chunk_bytes = x_bytes + if v.is_some() { c_rows as u64 * 8 } else { 0 };
            let t_ms = if chunk_bytes > 0 {
                let q = next_q % self.queues;
                next_q += 1;
                self.charge_h2d(q, chunk_bytes)
            } else {
                0.0
            };
            if fusedml_trace::is_enabled() && chunk_bytes > 0 {
                fusedml_trace::sim_flow_step("stream", "chunk.h2d", "pcie", flow_id);
                fusedml_trace::sim_span(
                    "stream",
                    "chunk.h2d",
                    "pcie",
                    t_ms,
                    &[
                        ("chunk", i.into()),
                        ("rows", c_rows.into()),
                        ("bytes", chunk_bytes.into()),
                        ("resident_hit", u64::from(hit).into()),
                    ],
                );
            }

            let plan = self.chunk_plan(c_rows)?;
            let ud = self.gpu.try_alloc_f64("stream.u", c_rows)?;
            let run = (|| -> Result<f64, StreamError> {
                let fill = level1::try_fill(self.gpu, &self.w_partial, 0.0)?;
                if fusedml_trace::is_enabled() {
                    // Arrow head lands on the chunk's fused kernel span.
                    fusedml_trace::sim_flow_end(
                        "stream",
                        "chunk.kernel",
                        self.gpu.track(),
                        flow_id,
                    );
                }
                let ks = try_fused_pattern_shard(
                    self.gpu,
                    &plan,
                    &dev,
                    vd.as_ref(),
                    &self.y_rep,
                    &ud,
                    &self.w_partial,
                    spec.alpha,
                )?;
                let kernel_ms = fill.sim_ms() + ks.sim_ms();
                self.launches.push(fill);
                self.launches.push(ks);
                Ok(kernel_ms)
            })();
            let u = ud.to_vec_f64();
            self.gpu.free(&ud);
            if let Some(vd) = &vd {
                self.gpu.free(vd);
            }
            if transient {
                self.free_csr(&dev);
            }
            let kernel_ms = run?;

            // Canonical epilogue: ascending global rows, so every bit of
            // w is independent of the chunk layout.
            let chunk = &self.chunks[i].host;
            for (r, &ur) in u.iter().enumerate().take(c_rows) {
                for (c, xv) in chunk.row_entries(r) {
                    w[c as usize] += spec.alpha * ur * xv;
                }
            }

            costs.push(ChunkCost {
                transfer_ms: t_ms,
                kernel_ms,
            });
            report.chunks += 1;
            report.h2d_bytes += chunk_bytes;
            report.transfer_ms += t_ms;
            report.kernel_ms += kernel_ms;
        }
        Ok(self.finish(report, lead_ms, lead_bytes, &costs))
    }

    /// `out = X * y` (length m), streamed: row-local work, so trivially
    /// chunking-invariant.
    pub fn try_mv_host(&mut self, y: &[f64], out: &mut [f64]) -> Result<StreamReport, StreamError> {
        if y.len() != self.cols {
            return Err(StreamError::ShapeMismatch {
                what: "y",
                expected: self.cols,
                got: y.len(),
            });
        }
        if out.len() != self.rows {
            return Err(StreamError::ShapeMismatch {
                what: "out",
                expected: self.rows,
                got: out.len(),
            });
        }
        self.epoch += 1;
        let mut report = self.new_report();
        self.y_rep.copy_from_f64(y);
        let lead_bytes = (self.cols * 8) as u64;
        let lead_ms = self.charge_h2d(0, lead_bytes);
        report.h2d_bytes += lead_bytes;
        report.transfer_ms += lead_ms;

        let mut costs = Vec::with_capacity(self.chunks.len());
        let mut next_q = 1usize;
        let vs = self.base_vs;
        for i in 0..self.chunks.len() {
            let (start, c_rows) = (self.chunks[i].start, self.chunks[i].host.rows());
            let (dev, x_bytes, hit, transient) = self.try_acquire_chunk(i)?;
            if hit {
                report.residency_hits += 1;
            }
            let t_ms = if x_bytes > 0 {
                let q = next_q % self.queues;
                next_q += 1;
                self.charge_h2d(q, x_bytes)
            } else {
                0.0
            };
            let p = self.gpu.try_alloc_f64("stream.p", c_rows)?;
            let run = (|| -> Result<f64, StreamError> {
                // VS fixed from the full matrix (see `base_vs`).
                let s = try_csrmv(self.gpu, &dev, &self.y_rep, &p, SpmvStyle::Vector { vs })?;
                let kernel_ms = s.sim_ms();
                self.launches.push(s);
                Ok(kernel_ms)
            })();
            let p_host = p.to_vec_f64();
            self.gpu.free(&p);
            if transient {
                self.free_csr(&dev);
            }
            let kernel_ms = run?;
            out[start..start + c_rows].copy_from_slice(&p_host);

            costs.push(ChunkCost {
                transfer_ms: t_ms,
                kernel_ms,
            });
            report.chunks += 1;
            report.h2d_bytes += x_bytes;
            report.transfer_ms += t_ms;
            report.kernel_ms += kernel_ms;
        }
        Ok(self.finish(report, lead_ms, lead_bytes, &costs))
    }

    /// `out = alpha * X^T * u` (length n), streamed, with the canonical
    /// ascending-row host epilogue.
    pub fn try_tmv_host(
        &mut self,
        alpha: f64,
        u: &[f64],
        out: &mut [f64],
    ) -> Result<StreamReport, StreamError> {
        if u.len() != self.rows {
            return Err(StreamError::ShapeMismatch {
                what: "u",
                expected: self.rows,
                got: u.len(),
            });
        }
        if out.len() != self.cols {
            return Err(StreamError::ShapeMismatch {
                what: "out",
                expected: self.cols,
                got: out.len(),
            });
        }
        self.epoch += 1;
        let mut report = self.new_report();

        let mut costs = Vec::with_capacity(self.chunks.len());
        for i in 0..self.chunks.len() {
            let (start, c_rows) = (self.chunks[i].start, self.chunks[i].host.rows());
            let (dev, x_bytes, hit, transient) = self.try_acquire_chunk(i)?;
            if hit {
                report.residency_hits += 1;
            }
            let vd = self
                .gpu
                .try_upload_f64("stream.v_chunk", &u[start..start + c_rows])?;
            let chunk_bytes = x_bytes + c_rows as u64 * 8;
            // No lead-in transfer here (u streams with the chunks), so
            // chunk i maps straight onto queue i.
            let q = i % self.queues;
            let t_ms = self.charge_h2d(q, chunk_bytes);

            let plan = self.chunk_plan(c_rows)?;
            let run = (|| -> Result<f64, StreamError> {
                let fill = level1::try_fill(self.gpu, &self.w_partial, 0.0)?;
                let s = if plan.use_shared_w {
                    try_fused_xt_p_shared(self.gpu, &plan, alpha, &dev, &vd, &self.w_partial)?
                } else {
                    try_fused_xt_p_global(self.gpu, &plan, alpha, &dev, &vd, &self.w_partial)?
                };
                let kernel_ms = fill.sim_ms() + s.sim_ms();
                self.launches.push(fill);
                self.launches.push(s);
                Ok(kernel_ms)
            })();
            self.gpu.free(&vd);
            if transient {
                self.free_csr(&dev);
            }
            let kernel_ms = run?;

            costs.push(ChunkCost {
                transfer_ms: t_ms,
                kernel_ms,
            });
            report.chunks += 1;
            report.h2d_bytes += chunk_bytes;
            report.transfer_ms += t_ms;
            report.kernel_ms += kernel_ms;
        }

        out.fill(0.0);
        for chunk in &self.chunks {
            for r in 0..chunk.host.rows() {
                let ur = u[chunk.start + r];
                for (c, xv) in chunk.host.row_entries(r) {
                    out[c as usize] += alpha * ur * xv;
                }
            }
        }
        Ok(self.finish(report, 0.0, 0, &costs))
    }
}

impl Drop for SparseStreamer<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

/// Evaluate `w = alpha * X^T (v ⊙ (X y)) + beta z` for a matrix too large
/// to keep on the device, streaming `rows_per_chunk` rows at a time.
/// Returns the result vector and the cost report.
///
/// One-shot wrapper over [`SparseStreamer`] at the classic double-buffer
/// configuration (depth 2, one queue, no residency); every device
/// allocation is released before returning.
#[allow(clippy::too_many_arguments)] // the pattern's full operand set
pub fn stream_pattern_sparse(
    gpu: &Gpu,
    spec: PatternSpec,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    rows_per_chunk: usize,
    transfer: &TransferModel,
) -> (Vec<f64>, StreamReport) {
    try_stream_pattern_sparse(gpu, spec, x, v, y, z, rows_per_chunk, transfer)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`stream_pattern_sparse`]: invalid shapes or spec/operand
/// disagreements come back as [`StreamError`] instead of panicking, and
/// device faults mid-stream propagate as [`StreamError::Device`].
#[allow(clippy::too_many_arguments)] // the pattern's full operand set
pub fn try_stream_pattern_sparse(
    gpu: &Gpu,
    spec: PatternSpec,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    rows_per_chunk: usize,
    transfer: &TransferModel,
) -> Result<(Vec<f64>, StreamReport), StreamError> {
    let mut streamer = SparseStreamer::try_new(
        gpu,
        x,
        transfer.clone(),
        StreamConfig::fixed(rows_per_chunk, legacy_depth()),
    )?;
    let mut w = vec![0.0; x.cols()];
    let report = streamer.try_pattern_host(spec, v, y, z, &mut w)?;
    streamer.release();
    Ok((w, report))
}

/// Extract rows `[row0, row0 + rows)` as a standalone CSR matrix.
fn slice_rows(x: &CsrMatrix, row0: usize, rows: usize) -> CsrMatrix {
    let start = x.row_off()[row0];
    let end = x.row_off()[row0 + rows];
    let row_off: Vec<usize> = x.row_off()[row0..=row0 + rows]
        .iter()
        .map(|&o| o - start)
        .collect();
    CsrMatrix::from_parts(
        rows,
        x.cols(),
        row_off,
        x.col_idx()[start..end].to_vec(),
        x.values()[start..end].to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::{DeviceGroup, DeviceSpec, FaultProfile, InterconnectSpec};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    fn bits(w: &[f64]) -> Vec<u64> {
        w.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn streamed_result_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(1000, 200, 0.05, 31);
        let y = random_vector(200, 1);
        let v = random_vector(1000, 2);
        let z = random_vector(200, 3);
        let spec = PatternSpec::full(1.5, -0.5);
        let (w, report) = stream_pattern_sparse(
            &g,
            spec,
            &x,
            Some(&v),
            &y,
            Some(&z),
            137, // deliberately not dividing 1000
            &TransferModel::native(),
        );
        let expect = reference::pattern_csr(1.5, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
        assert_eq!(report.chunks, 8);
        assert!(report.h2d_bytes > x.size_bytes());
    }

    #[test]
    fn single_chunk_equals_whole_matrix() {
        let g = gpu();
        let x = uniform_sparse(400, 100, 0.05, 32);
        let y = random_vector(100, 4);
        let (w, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            10_000,
            &TransferModel::native(),
        );
        assert_eq!(report.chunks, 1);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
    }

    #[test]
    fn overlap_beats_serial_execution() {
        let g = gpu();
        let x = uniform_sparse(8000, 256, 0.05, 33);
        let y = random_vector(256, 5);
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            1000,
            &TransferModel::native(),
        );
        assert!(report.chunks == 8);
        assert!(
            report.overlapped_ms < report.serial_ms,
            "overlap {} vs serial {}",
            report.overlapped_ms,
            report.serial_ms
        );
        // Overlapped time is bounded below by the slower pipeline stage.
        assert!(report.overlapped_ms >= report.transfer_ms.max(report.kernel_ms) * 0.99);
    }

    #[test]
    fn chunk_slicing_preserves_rows() {
        let x = uniform_sparse(50, 30, 0.2, 34);
        let s = slice_rows(&x, 10, 15);
        assert_eq!(s.rows(), 15);
        assert_eq!(s.cols(), 30);
        for r in 0..15 {
            assert_eq!(
                s.row_entries(r).collect::<Vec<_>>(),
                x.row_entries(10 + r).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let g = gpu();
        let x = uniform_sparse(10, 10, 0.2, 35);
        let y = random_vector(10, 6);
        stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            0,
            &TransferModel::native(),
        );
    }

    #[test]
    fn streaming_releases_all_device_memory() {
        // Regression: the per-chunk v slice leaked one device buffer per
        // chunk (and the long-lived vectors were never freed), so memory
        // grew linearly with the chunk count under with_v=true.
        let g = gpu();
        let x = uniform_sparse(1000, 150, 0.05, 40);
        let y = random_vector(150, 41);
        let v = random_vector(1000, 42);
        let before = g.allocated_bytes();
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec {
                alpha: 1.0,
                with_v: true,
                beta: 0.0,
                with_z: false,
            },
            &x,
            Some(&v),
            &y,
            None,
            100,
            &TransferModel::native(),
        );
        assert_eq!(report.chunks, 10);
        assert_eq!(
            g.allocated_bytes(),
            before,
            "streaming leaked {} bytes across {} chunks",
            g.allocated_bytes() - before,
            report.chunks
        );
    }

    #[test]
    fn pool_reuses_chunk_staging_after_warmup() {
        // Regression: every chunk used to allocate fresh backing stores for
        // its CSR staging and v slice; with the buffer pool, steady-state
        // chunks recycle the previous chunk's blocks, and a second
        // identical evaluation allocates nothing at all.
        let g = gpu();
        let x = uniform_sparse(1200, 150, 0.05, 60);
        let y = random_vector(150, 61);
        let v = random_vector(1200, 62);
        let spec = PatternSpec {
            alpha: 1.0,
            with_v: true,
            beta: 0.0,
            with_z: false,
        };
        let run = || {
            stream_pattern_sparse(
                &g,
                spec,
                &x,
                Some(&v),
                &y,
                None,
                128,
                &TransferModel::native(),
            )
        };
        run(); // warm-up populates the pool buckets
        let warm = g.pool_stats();
        assert!(
            warm.hits > 0,
            "steady-state chunks must recycle earlier chunk staging"
        );
        let (w, _) = run();
        let hot = g.pool_stats();
        assert_eq!(
            hot.misses, warm.misses,
            "second identical run must cause zero net allocator traffic"
        );
        assert!(hot.hits > warm.hits);
        // Recycled staging must not perturb the result.
        let expect = reference::pattern_csr(1.0, &x, Some(&v), &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
    }

    #[test]
    fn invalid_inputs_yield_typed_errors() {
        let g = gpu();
        let x = uniform_sparse(20, 12, 0.3, 36);
        let y = random_vector(12, 7);
        let t = TransferModel::native();

        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &y, None, 0, &t)
            .unwrap_err();
        assert_eq!(e, StreamError::InvalidChunk);

        let bad_y = random_vector(5, 8);
        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &bad_y, None, 4, &t)
            .unwrap_err();
        assert_eq!(
            e,
            StreamError::ShapeMismatch {
                what: "y",
                expected: 12,
                got: 5
            }
        );

        let bad_v = random_vector(3, 9);
        let spec_v = PatternSpec {
            alpha: 1.0,
            with_v: true,
            beta: 0.0,
            with_z: false,
        };
        let e =
            try_stream_pattern_sparse(&g, spec_v, &x, Some(&bad_v), &y, None, 4, &t).unwrap_err();
        assert!(matches!(e, StreamError::ShapeMismatch { what: "v", .. }));

        // Spec says with_v but no v operand supplied.
        let e = try_stream_pattern_sparse(&g, spec_v, &x, None, &y, None, 4, &t).unwrap_err();
        assert_eq!(
            e,
            StreamError::SpecMismatch {
                what: "v",
                enabled: true
            }
        );

        // z operand supplied but spec has with_z=false.
        let z = random_vector(12, 10);
        let e = try_stream_pattern_sparse(&g, PatternSpec::xtxy(), &x, None, &y, Some(&z), 4, &t)
            .unwrap_err();
        assert_eq!(
            e,
            StreamError::SpecMismatch {
                what: "z",
                enabled: false
            }
        );

        // Degenerate pipeline configurations are typed errors too.
        let e = SparseStreamer::try_new(&g, &x, t.clone(), StreamConfig::fixed(4, 0)).err();
        assert_eq!(e, Some(StreamError::InvalidDepth));
        let e = SparseStreamer::try_new(&g, &x, t, StreamConfig::fixed(4, 2).with_queues(0)).err();
        assert_eq!(e, Some(StreamError::InvalidQueues));
    }

    /// Parametrized sweep over chunk sizes (dividing and non-dividing,
    /// larger than the matrix) and every v/z operand combination: the
    /// streamed result must match the single-shot reference and the
    /// overlap model must never exceed the serial model.
    #[test]
    fn streaming_correct_across_chunkings_and_operands() {
        let g = gpu();
        let m = 730;
        let n = 96;
        let x = uniform_sparse(m, n, 0.05, 50);
        let y = random_vector(n, 51);
        let v = random_vector(m, 52);
        let z = random_vector(n, 53);

        for rows_per_chunk in [1usize, 97, 365, 730, 731, 10_000] {
            for (with_v, with_z) in [(false, false), (true, false), (false, true), (true, true)] {
                let spec = PatternSpec {
                    alpha: 1.25,
                    with_v,
                    beta: if with_z { -0.75 } else { 0.0 },
                    with_z,
                };
                let before = g.allocated_bytes();
                let (w, report) = stream_pattern_sparse(
                    &g,
                    spec,
                    &x,
                    with_v.then_some(&v[..]),
                    &y,
                    with_z.then_some(&z[..]),
                    rows_per_chunk,
                    &TransferModel::native(),
                );
                let expect = reference::pattern_csr(
                    1.25,
                    &x,
                    with_v.then_some(&v),
                    &y,
                    spec.beta,
                    with_z.then_some(&z),
                );
                assert!(
                    reference::rel_l2_error(&w, &expect) < 1e-10,
                    "chunk={rows_per_chunk} v={with_v} z={with_z}"
                );
                assert_eq!(report.chunks, m.div_ceil(rows_per_chunk.min(m)));
                assert!(
                    report.overlapped_ms <= report.serial_ms + 1e-9,
                    "chunk={rows_per_chunk}: overlap {} > serial {}",
                    report.overlapped_ms,
                    report.serial_ms
                );
                assert_eq!(g.allocated_bytes(), before, "chunk={rows_per_chunk} leaked");
            }
        }
    }

    /// The bit-identity contract: chunking, depth, queue count and
    /// residency budget change the cost model only — the streamed bits
    /// equal the single-chunk (non-streamed) run and the single-shard
    /// sharded executor bit for bit.
    #[test]
    fn streamed_bits_match_non_streamed_fused_path() {
        let g = gpu();
        let m = 530;
        let n = 48;
        let x = uniform_sparse(m, n, 0.1, 70);
        let y = random_vector(n, 71);
        let v = random_vector(m, 72);
        let z = random_vector(n, 73);
        let spec = PatternSpec::full(1.25, -0.5);

        // Non-streamed reference: a single chunk through the same path.
        let mut reference_w = vec![0.0; n];
        {
            let mut s =
                SparseStreamer::try_new(&g, &x, TransferModel::native(), StreamConfig::fixed(m, 1))
                    .unwrap();
            s.try_pattern_host(spec, Some(&v), &y, Some(&z), &mut reference_w)
                .unwrap();
        }

        // The same bits as the one-shard sharded executor (the shared
        // reproducible-reduction contract).
        let group = DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            1,
            InterconnectSpec::pcie_gen3_x16(),
            &FaultProfile::disabled(),
        );
        let mut sharded = fusedml_core::ShardedExecutor::try_new(&group, &x).unwrap();
        let mut w_sharded = vec![0.0; n];
        sharded
            .try_pattern_host(spec, Some(&v), &y, Some(&z), &mut w_sharded)
            .unwrap();
        assert_eq!(bits(&reference_w), bits(&w_sharded));

        for (chunk, depth, cap) in [
            (97usize, 1usize, 0u64),
            (97, 2, 0),
            (97, 3, 1 << 14),
            (97, 4, u64::MAX),
            (128, 3, 1 << 15),
            (530, 2, u64::MAX),
        ] {
            let mut s = SparseStreamer::try_new(
                &g,
                &x,
                TransferModel::native(),
                StreamConfig::fixed(chunk, depth)
                    .with_queues(2)
                    .with_residency(cap),
            )
            .unwrap();
            let mut w = vec![0.0; n];
            // Two passes: the warm pass must produce the same bits even
            // when it runs entirely from residency.
            for _ in 0..2 {
                s.try_pattern_host(spec, Some(&v), &y, Some(&z), &mut w)
                    .unwrap();
                assert_eq!(
                    bits(&reference_w),
                    bits(&w),
                    "chunk={chunk} depth={depth} cap={cap}"
                );
            }
        }
    }

    #[test]
    fn mv_and_tmv_stream_correctly_and_bit_stably() {
        let g = gpu();
        let m = 410;
        let n = 64;
        let x = uniform_sparse(m, n, 0.08, 80);
        let y = random_vector(n, 81);
        let u = random_vector(m, 82);

        let run = |chunk: usize, cap: u64| {
            let mut s = SparseStreamer::try_new(
                &g,
                &x,
                TransferModel::native(),
                StreamConfig::fixed(chunk, 3).with_residency(cap),
            )
            .unwrap();
            let mut p = vec![0.0; m];
            let mut w = vec![0.0; n];
            s.try_mv_host(&y, &mut p).unwrap();
            s.try_tmv_host(1.5, &u, &mut w).unwrap();
            (p, w)
        };
        let (p_ref, w_ref) = run(m, 0);
        assert!(reference::rel_l2_error(&p_ref, &reference::csr_mv(&x, &y)) < 1e-12);
        let mut expect_w = reference::csr_tmv(&x, &u);
        reference::scal(1.5, &mut expect_w);
        assert!(reference::rel_l2_error(&w_ref, &expect_w) < 1e-10);
        for chunk in [57, 200] {
            for cap in [0u64, u64::MAX] {
                let (p, w) = run(chunk, cap);
                assert_eq!(bits(&p_ref), bits(&p), "mv chunk={chunk} cap={cap}");
                assert_eq!(bits(&w_ref), bits(&w), "tmv chunk={chunk} cap={cap}");
            }
        }
    }

    /// Full residency budget: the second pass streams zero matrix bytes,
    /// every chunk is a residency hit, and the modeled wall drops.
    #[test]
    fn residency_serves_warm_passes_from_device() {
        let g = gpu();
        let x = uniform_sparse(2000, 128, 0.05, 90);
        let y = random_vector(128, 91);
        let before = g.allocated_bytes();
        let mut s = SparseStreamer::try_new(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(250, 3).with_residency(u64::MAX),
        )
        .unwrap();
        let mut w = vec![0.0; 128];
        let cold = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        assert_eq!(cold.residency_hits, 0);
        let warm = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        assert_eq!(warm.residency_hits, warm.chunks as u64);
        // Warm pass only moves the lead-in vector.
        assert_eq!(warm.h2d_bytes, 128 * 8);
        assert!(warm.h2d_bytes < cold.h2d_bytes);
        assert!(
            warm.overlapped_ms < cold.overlapped_ms,
            "warm {} vs cold {}",
            warm.overlapped_ms,
            cold.overlapped_ms
        );
        s.release();
        assert_eq!(g.allocated_bytes(), before, "residency leaked");
    }

    /// Partial budget: epoch-based admission converges to a stable
    /// resident prefix — the same chunks hit pass after pass instead of
    /// LRU thrashing to zero hits on every scan.
    #[test]
    fn partial_residency_budget_is_stable_not_thrashing() {
        let g = gpu();
        let x = uniform_sparse(1600, 96, 0.05, 95);
        let y = random_vector(96, 96);
        // Budget for roughly half the chunks.
        let cap = x.size_bytes() / 2;
        let mut s = SparseStreamer::try_new(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(200, 2).with_residency(cap),
        )
        .unwrap();
        let mut w = vec![0.0; 96];
        s.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        let pass2 = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        let pass3 = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        assert!(
            pass2.residency_hits > 0,
            "a partial budget must keep some chunks resident"
        );
        assert!(pass2.residency_hits < pass2.chunks as u64);
        assert_eq!(
            pass2.residency_hits, pass3.residency_hits,
            "the resident prefix must be stable across passes"
        );
        assert!(s.resident_bytes() <= cap);
    }

    #[test]
    fn zero_budget_keeps_nothing_resident() {
        let g = gpu();
        let x = uniform_sparse(600, 64, 0.08, 97);
        let y = random_vector(64, 98);
        let mut s =
            SparseStreamer::try_new(&g, &x, TransferModel::native(), StreamConfig::fixed(100, 2))
                .unwrap();
        let mut w = vec![0.0; 64];
        for _ in 0..2 {
            let r = s
                .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap();
            assert_eq!(r.residency_hits, 0);
        }
        assert_eq!(s.resident_bytes(), 0);
    }

    /// Launch-plan hoisting: a streamed pass plans once per distinct
    /// chunk shape (body + remainder), not once per chunk, and warm
    /// passes plan not at all.
    #[test]
    fn chunk_plans_are_hoisted_per_shape_not_per_chunk() {
        let g = gpu();
        let x = uniform_sparse(1000, 80, 0.05, 99);
        let y = random_vector(80, 100);
        let mut s = SparseStreamer::try_new(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(137, 2), // 8 chunks: 7 x 137 + 1 x 41
        )
        .unwrap();
        s.set_plan_cache(true);
        let mut w = vec![0.0; 80];
        s.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        let stats = s.chunk_plan_stats();
        assert_eq!(
            stats.plans_computed(),
            2,
            "8 chunks, 2 distinct shapes, 2 tuner runs"
        );
        assert_eq!(stats.hits, 6);
        // A second pass (and tmv, which shares the shape key) is all hits.
        s.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        let u = random_vector(1000, 101);
        s.try_tmv_host(1.0, &u, &mut w).unwrap();
        assert_eq!(s.chunk_plan_stats().plans_computed(), 2);
    }

    /// The pipeline schedule: depth 1 is exactly the serial model, and
    /// the modeled wall is non-increasing in depth.
    #[test]
    fn pipeline_depth_one_is_serial_and_wall_is_monotone() {
        let x = uniform_sparse(3000, 160, 0.05, 110);
        let y = random_vector(160, 111);
        let mut prev = f64::INFINITY;
        for depth in 1..=4 {
            // Fresh device per depth: the simulator keeps its L2 warm
            // across launches, so sharing one device would make kernel
            // costs depend on run order rather than on the schedule.
            let g = gpu();
            let mut s = SparseStreamer::try_new(
                &g,
                &x,
                TransferModel::native(),
                StreamConfig::fixed(400, depth),
            )
            .unwrap();
            let mut w = vec![0.0; 160];
            let r = s
                .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap();
            if depth == 1 {
                assert!(
                    (r.overlapped_ms - r.serial_ms).abs() < 1e-9,
                    "depth 1 must equal the serial model: {} vs {}",
                    r.overlapped_ms,
                    r.serial_ms
                );
                assert!((r.bubble_ms - r.transfer_ms).abs() < 1e-9);
            }
            assert!(
                r.overlapped_ms <= prev + 1e-9,
                "wall must be non-increasing in depth: {} at depth {depth} after {prev}",
                r.overlapped_ms
            );
            prev = r.overlapped_ms;
        }
    }

    /// The memoized streaming-configuration search: `auto()` resolves
    /// through the plan cache's streaming key and produces a usable
    /// schedule.
    #[test]
    fn auto_config_searches_once_and_memoizes() {
        let g = gpu();
        let x = uniform_sparse(4000, 200, 0.05, 120);
        let y = random_vector(200, 121);
        fusedml_core::set_plan_cache_enabled(true);
        let mut s =
            SparseStreamer::try_new(&g, &x, TransferModel::native(), StreamConfig::auto()).unwrap();
        fusedml_core::set_plan_cache_enabled(false);
        assert_eq!(s.stream_plan_stats().plans_computed(), 1);
        assert!(s.depth() >= 1 && s.depth() <= SEARCH_MAX_DEPTH);
        assert!(s.rows_per_chunk() >= 1);
        let mut w = vec![0.0; 200];
        let r = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .unwrap();
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
        assert!(r.overlapped_ms <= r.serial_ms + 1e-9);
    }

    #[test]
    fn stream_plan_search_is_deterministic_and_prefers_overlap() {
        let spec = DeviceSpec::gtx_titan();
        let engine = CopyEngineSpec::new(2, fusedml_gpu_sim::PcieSpec::gen3_x16());
        let a = choose_stream_plan(&spec, 100_000, 512, 5_000_000, &engine, 0);
        let b = choose_stream_plan(&spec, 100_000, 512, 5_000_000, &engine, 0);
        assert_eq!(a, b);
        assert!(a.depth >= 2, "a transfer-bound workload should pipeline");
        assert!(a.rows_per_chunk < 100_000, "streaming should chunk");
        assert!(a.modeled_ms > 0.0);
    }

    /// Flow events tie a pattern evaluation to its chunk transfers and
    /// kernels: one arrow per chunk from the host track through the pcie
    /// span into the device kernel span.
    #[test]
    fn trace_flows_link_iteration_to_transfer_and_kernel() {
        let g = gpu();
        let x = uniform_sparse(300, 40, 0.1, 130);
        let y = random_vector(40, 131);
        fusedml_trace::enable();
        let _ = fusedml_trace::take();
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            100,
            &TransferModel::native(),
        );
        let events = fusedml_trace::take();
        fusedml_trace::disable();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, fusedml_trace::EventKind::FlowStart))
            .collect();
        let steps: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, fusedml_trace::EventKind::FlowStep))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, fusedml_trace::EventKind::FlowEnd))
            .collect();
        assert_eq!(starts.len(), report.chunks);
        assert_eq!(steps.len(), report.chunks);
        assert_eq!(ends.len(), report.chunks);
        for ((s, t), e) in starts.iter().zip(&steps).zip(&ends) {
            assert_eq!(s.flow_id, t.flow_id);
            assert_eq!(t.flow_id, e.flow_id);
            assert_eq!(s.track, "host");
            assert_eq!(t.track, "pcie");
            assert_eq!(e.track, "device");
        }
    }

    /// The one-shot wrapper keeps the pre-rework contract: depth-2 double
    /// buffering, no residency. (Old *serialized* reports fill the same
    /// values through the `serde(default)` attributes; the functional
    /// parse-with-defaults check lives with the bench JSON layer, which
    /// owns the real serialization format.)
    #[test]
    fn legacy_wrapper_reports_double_buffer_defaults() {
        let g = gpu();
        let x = uniform_sparse(200, 32, 0.1, 140);
        let y = random_vector(32, 141);
        let (_, r) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            64,
            &TransferModel::native(),
        );
        assert_eq!(r.depth, legacy_depth());
        assert_eq!(r.resident_bytes_cap, 0);
        assert_eq!(r.residency_hits, 0);
        assert!(r.bubble_ms >= 0.0);
    }
}
