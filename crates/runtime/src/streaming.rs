//! Out-of-core (streaming) execution — the extension §3 sketches: "In
//! situations where such an amortization is not feasible, the developed
//! methods can easily be adapted to a streaming design for 'out-of-core'
//! computation."
//!
//! The matrix is split into row chunks; each chunk is transferred over
//! PCIe and its fused pattern contribution accumulated into `w` on the
//! device. Because the generic pattern is a sum of independent per-row
//! contributions (`w = Σ_r alpha * X[r,:]^T (v_r * (X[r,:] y)) (+ beta z
//! once)`), chunked evaluation is exact. Transfers of chunk `k+1` overlap
//! the kernel of chunk `k` (double buffering), so the modelled wall time
//! is `max(transfer, compute)` per chunk plus the pipeline fill.

use crate::transfer::TransferModel;
use fusedml_blas::GpuCsr;
use fusedml_core::{FusedExecutor, PatternSpec};
use fusedml_gpu_sim::{Gpu, GpuBuffer};
use fusedml_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Report of a streamed pattern evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    pub chunks: usize,
    /// Total bytes moved host -> device.
    pub h2d_bytes: u64,
    /// Sum of per-chunk transfer times.
    pub transfer_ms: f64,
    /// Sum of per-chunk kernel times.
    pub kernel_ms: f64,
    /// Modelled wall time with double buffering: transfers overlap the
    /// previous chunk's kernel.
    pub overlapped_ms: f64,
    /// Wall time without overlap (single buffer), for comparison.
    pub serial_ms: f64,
}

/// Evaluate `w = alpha * X^T (v ⊙ (X y)) + beta z` for a matrix too large
/// to keep on the device, streaming `rows_per_chunk` rows at a time.
/// Returns the result vector (downloaded to host) and the cost report.
///
/// `v` (if present) is indexed by global row, so it is sliced alongside
/// the chunks; `y`, `z` and `w` live on the device for the whole run.
#[allow(clippy::too_many_arguments)] // the pattern's full operand set
pub fn stream_pattern_sparse(
    gpu: &Gpu,
    spec: PatternSpec,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    z: Option<&[f64]>,
    rows_per_chunk: usize,
    transfer: &TransferModel,
) -> (Vec<f64>, StreamReport) {
    assert!(rows_per_chunk > 0, "chunk size must be positive");
    assert_eq!(y.len(), x.cols(), "y length mismatch");
    if let Some(v) = v {
        assert_eq!(v.len(), x.rows(), "v length mismatch");
    }
    assert_eq!(spec.with_v, v.is_some());
    assert_eq!(spec.with_z, z.is_some());

    let n = x.cols();
    let yd = gpu.upload_f64("stream.y", y);
    let zd = z.map(|z| gpu.upload_f64("stream.z", z));
    let wd = gpu.alloc_f64("stream.w", n);
    let w_chunk = gpu.alloc_f64("stream.w_chunk", n);

    let mut report = StreamReport {
        chunks: 0,
        h2d_bytes: 0,
        transfer_ms: 0.0,
        kernel_ms: 0.0,
        overlapped_ms: 0.0,
        serial_ms: 0.0,
    };
    // y (+z) also cross the bus once.
    let vec_bytes = (y.len() * 8 + z.map_or(0, |z| z.len() * 8)) as u64;
    report.h2d_bytes += vec_bytes;
    let lead_in = transfer.h2d_ms(vec_bytes, false);
    report.transfer_ms += lead_in;

    let mut ex = FusedExecutor::new(gpu);
    let mut prev_kernel_ms = 0.0f64;
    let mut overlapped = lead_in;

    let mut row0 = 0usize;
    while row0 < x.rows() {
        let rows = rows_per_chunk.min(x.rows() - row0);
        let chunk = slice_rows(x, row0, rows);
        let chunk_bytes = chunk.size_bytes() + if v.is_some() { rows as u64 * 8 } else { 0 };

        let xd = GpuCsr::upload(gpu, "stream.chunk", &chunk);
        let vd = v.map(|v| gpu.upload_f64("stream.v_chunk", &v[row0..row0 + rows]));

        // Each chunk contributes alpha * X_k^T (v_k ⊙ (X_k y)); the beta*z
        // term is applied once at the end.
        let chunk_spec = PatternSpec {
            alpha: spec.alpha,
            with_v: spec.with_v,
            beta: 0.0,
            with_z: false,
        };
        ex.reset();
        ex.pattern_sparse(chunk_spec, &xd, vd.as_ref(), &yd, None, &w_chunk);
        accumulate(gpu, &mut ex, &w_chunk, &wd);
        let kernel_ms = ex.total_sim_ms();

        let t_ms = transfer.h2d_ms(chunk_bytes, false);
        report.chunks += 1;
        report.h2d_bytes += chunk_bytes;
        report.transfer_ms += t_ms;
        report.kernel_ms += kernel_ms;
        // Double buffering: this chunk's transfer overlaps the previous
        // chunk's kernel.
        overlapped += t_ms.max(prev_kernel_ms);
        prev_kernel_ms = kernel_ms;

        gpu.free(&xd.row_off);
        gpu.free(&xd.col_idx);
        gpu.free(&xd.values);
        row0 += rows;
    }
    overlapped += prev_kernel_ms; // drain the pipeline

    // beta * z once, on device.
    if let (Some(zd), true) = (&zd, spec.with_z) {
        ex.reset();
        let s = fusedml_blas::level1::axpy(gpu, spec.beta, zd, &wd);
        report.kernel_ms += s.sim_ms();
        overlapped += s.sim_ms();
    }

    report.overlapped_ms = overlapped;
    report.serial_ms = report.transfer_ms + report.kernel_ms;
    (wd.to_vec_f64(), report)
}

/// Extract rows `[row0, row0 + rows)` as a standalone CSR matrix.
fn slice_rows(x: &CsrMatrix, row0: usize, rows: usize) -> CsrMatrix {
    let start = x.row_off()[row0];
    let end = x.row_off()[row0 + rows];
    let row_off: Vec<usize> = x.row_off()[row0..=row0 + rows]
        .iter()
        .map(|&o| o - start)
        .collect();
    CsrMatrix::from_parts(
        rows,
        x.cols(),
        row_off,
        x.col_idx()[start..end].to_vec(),
        x.values()[start..end].to_vec(),
    )
}

/// `w += w_chunk` on device (one elementwise kernel), charging the cost to
/// the executor's ledger.
fn accumulate(gpu: &Gpu, ex: &mut FusedExecutor, src: &GpuBuffer, dst: &GpuBuffer) {
    let s = fusedml_blas::level1::axpy(gpu, 1.0, src, dst);
    ex.launches.push(s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn streamed_result_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(1000, 200, 0.05, 31);
        let y = random_vector(200, 1);
        let v = random_vector(1000, 2);
        let z = random_vector(200, 3);
        let spec = PatternSpec::full(1.5, -0.5);
        let (w, report) = stream_pattern_sparse(
            &g,
            spec,
            &x,
            Some(&v),
            &y,
            Some(&z),
            137, // deliberately not dividing 1000
            &TransferModel::native(),
        );
        let expect = reference::pattern_csr(1.5, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
        assert_eq!(report.chunks, 8);
        assert!(report.h2d_bytes > x.size_bytes());
    }

    #[test]
    fn single_chunk_equals_whole_matrix() {
        let g = gpu();
        let x = uniform_sparse(400, 100, 0.05, 32);
        let y = random_vector(100, 4);
        let (w, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            10_000,
            &TransferModel::native(),
        );
        assert_eq!(report.chunks, 1);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
    }

    #[test]
    fn overlap_beats_serial_execution() {
        let g = gpu();
        let x = uniform_sparse(8000, 256, 0.05, 33);
        let y = random_vector(256, 5);
        let (_, report) = stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            1000,
            &TransferModel::native(),
        );
        assert!(report.chunks == 8);
        assert!(
            report.overlapped_ms < report.serial_ms,
            "overlap {} vs serial {}",
            report.overlapped_ms,
            report.serial_ms
        );
        // Overlapped time is bounded below by the slower pipeline stage.
        assert!(report.overlapped_ms >= report.transfer_ms.max(report.kernel_ms) * 0.99);
    }

    #[test]
    fn chunk_slicing_preserves_rows() {
        let x = uniform_sparse(50, 30, 0.2, 34);
        let s = slice_rows(&x, 10, 15);
        assert_eq!(s.rows(), 15);
        assert_eq!(s.cols(), 30);
        for r in 0..15 {
            assert_eq!(
                s.row_entries(r).collect::<Vec<_>>(),
                x.row_entries(10 + r).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let g = gpu();
        let x = uniform_sparse(10, 10, 0.2, 35);
        let y = random_vector(10, 6);
        stream_pattern_sparse(
            &g,
            PatternSpec::xtxy(),
            &x,
            None,
            &y,
            None,
            0,
            &TransferModel::native(),
        );
    }
}
