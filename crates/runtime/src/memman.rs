//! The GPU memory manager of the SystemML integration (§4.4):
//! (a) allocate if not already on the device, (b) evict LRU victims when
//! space runs out, (c) deallocate and mark blocks for reuse, (d) keep host
//! and device copies consistent via dirty bits, (e) account the format
//! conversions performed on the way in.

use crate::transfer::TransferModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why an `ensure_on_device` call could not be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The block alone exceeds device capacity.
    TooLarge { requested: u64, capacity: u64 },
    /// Everything evictable was evicted and space still ran out
    /// (remaining blocks are pinned).
    OutOfMemory { requested: u64, free: u64 },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::TooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "block of {requested} bytes exceeds device capacity {capacity}"
            ),
            MemError::OutOfMemory { requested, free } => write!(
                f,
                "out of device memory: need {requested} bytes, {free} free after eviction"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Cumulative manager statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    pub h2d_transfers: u64,
    pub h2d_bytes: u64,
    pub d2h_writebacks: u64,
    pub d2h_bytes: u64,
    pub evictions: u64,
    pub hits: u64,
    /// Total transfer milliseconds charged (including conversions).
    pub transfer_ms: f64,
}

#[derive(Debug, Clone)]
struct Block {
    bytes: u64,
    on_device: bool,
    /// Device copy newer than host copy — eviction must write back.
    device_dirty: bool,
    /// Needs JNI/format conversion when crossing (sparse matrices in the
    /// SystemML regime).
    convert: bool,
    pinned: bool,
    last_use: u64,
}

/// An LRU-evicting device memory manager. Thread-safe; all methods take
/// `&self`.
pub struct MemoryManager {
    capacity: u64,
    transfer: TransferModel,
    inner: Mutex<Inner>,
}

struct Inner {
    blocks: HashMap<String, Block>,
    used: u64,
    clock: u64,
    stats: MemStats,
}

impl MemoryManager {
    pub fn new(capacity_bytes: u64, transfer: TransferModel) -> Self {
        MemoryManager {
            capacity: capacity_bytes,
            transfer,
            inner: Mutex::new(Inner {
                blocks: HashMap::new(),
                used: 0,
                clock: 0,
                stats: MemStats::default(),
            }),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    pub fn stats(&self) -> MemStats {
        self.inner.lock().stats.clone()
    }

    /// Declare a host-resident block the manager may later move to the
    /// device. `convert` marks blocks paying JNI/format conversion.
    pub fn register(&self, name: &str, bytes: u64, convert: bool) {
        if fusedml_trace::is_enabled() {
            fusedml_trace::instant(
                "mem",
                "register",
                "host",
                &[
                    ("block", name.into()),
                    ("bytes", bytes.into()),
                    ("convert", convert.into()),
                ],
            );
        }
        let mut g = self.inner.lock();
        g.clock += 1;
        let clock = g.clock;
        g.blocks.insert(
            name.to_string(),
            Block {
                bytes,
                on_device: false,
                device_dirty: false,
                convert,
                pinned: false,
                last_use: clock,
            },
        );
    }

    /// Ensure a registered block is device-resident, evicting LRU victims
    /// as needed. Returns the transfer milliseconds charged (0 on a hit).
    pub fn ensure_on_device(&self, name: &str) -> Result<f64, MemError> {
        let mut g = self.inner.lock();
        g.clock += 1;
        let clock = g.clock;
        let block = g
            .blocks
            .get_mut(name)
            .unwrap_or_else(|| panic!("block {name} not registered"));
        block.last_use = clock;
        if block.on_device {
            g.stats.hits += 1;
            return Ok(0.0);
        }
        let (bytes, convert) = (block.bytes, block.convert);
        if bytes > self.capacity {
            return Err(MemError::TooLarge {
                requested: bytes,
                capacity: self.capacity,
            });
        }

        // Evict LRU until the block fits.
        let mut ms = 0.0;
        while self.capacity - g.used < bytes {
            let victim = g
                .blocks
                .iter()
                .filter(|(n, b)| b.on_device && !b.pinned && n.as_str() != name)
                .min_by_key(|(_, b)| b.last_use)
                .map(|(n, _)| n.clone());
            let Some(victim) = victim else {
                return Err(MemError::OutOfMemory {
                    requested: bytes,
                    free: self.capacity - g.used,
                });
            };
            let vb = g
                .blocks
                .get_mut(&victim)
                .unwrap_or_else(|| panic!("victim exists"));
            vb.on_device = false;
            let (vbytes, vdirty, vconv) = (vb.bytes, vb.device_dirty, vb.convert);
            vb.device_dirty = false;
            g.used -= vbytes;
            g.stats.evictions += 1;
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "mem",
                    "evict",
                    "host",
                    &[
                        ("victim", victim.as_str().into()),
                        ("bytes", vbytes.into()),
                        ("dirty", vdirty.into()),
                        ("for_block", name.into()),
                    ],
                );
            }
            if vdirty {
                // Consistency: write the newer device copy back.
                let back = self.transfer.d2h_ms(vbytes, vconv);
                g.stats.d2h_writebacks += 1;
                g.stats.d2h_bytes += vbytes;
                g.stats.transfer_ms += back;
                ms += back;
                if fusedml_trace::is_enabled() {
                    fusedml_trace::sim_span(
                        "mem",
                        "writeback.d2h",
                        "pcie",
                        back,
                        &[("block", victim.as_str().into()), ("bytes", vbytes.into())],
                    );
                }
            }
        }

        let t = self.transfer.h2d_ms(bytes, convert);
        let b = g.blocks.get_mut(name).unwrap_or_else(|| panic!("exists"));
        b.on_device = true;
        g.used += bytes;
        g.stats.h2d_transfers += 1;
        g.stats.h2d_bytes += bytes;
        g.stats.transfer_ms += t;
        if fusedml_trace::is_enabled() {
            fusedml_trace::sim_span(
                "mem",
                "h2d",
                "pcie",
                t,
                &[
                    ("block", name.into()),
                    ("bytes", bytes.into()),
                    ("convert", convert.into()),
                ],
            );
        }
        Ok(ms + t)
    }

    /// Mark the device copy as newer than the host copy.
    pub fn mark_device_dirty(&self, name: &str) {
        let mut g = self.inner.lock();
        if let Some(b) = g.blocks.get_mut(name) {
            assert!(b.on_device, "cannot dirty a non-resident block");
            b.device_dirty = true;
        }
    }

    /// Pin a block (exempt from eviction — e.g. the matrix during the
    /// iteration loop).
    pub fn pin(&self, name: &str) {
        if fusedml_trace::is_enabled() {
            fusedml_trace::instant("mem", "pin", "host", &[("block", name.into())]);
        }
        self.inner
            .lock()
            .blocks
            .get_mut(name)
            .unwrap_or_else(|| panic!("block {name} not registered"))
            .pinned = true;
    }

    pub fn unpin(&self, name: &str) {
        self.inner
            .lock()
            .blocks
            .get_mut(name)
            .unwrap_or_else(|| panic!("block {name} not registered"))
            .pinned = false;
    }

    /// Drop a block entirely (deallocate + forget), writing back if dirty.
    /// Returns writeback milliseconds.
    pub fn release(&self, name: &str) -> f64 {
        if fusedml_trace::is_enabled() {
            fusedml_trace::instant("mem", "release", "host", &[("block", name.into())]);
        }
        let mut g = self.inner.lock();
        if let Some(b) = g.blocks.remove(name) {
            if b.on_device {
                g.used -= b.bytes;
                if b.device_dirty {
                    let ms = self.transfer.d2h_ms(b.bytes, b.convert);
                    g.stats.d2h_writebacks += 1;
                    g.stats.d2h_bytes += b.bytes;
                    g.stats.transfer_ms += ms;
                    if fusedml_trace::is_enabled() {
                        fusedml_trace::sim_span(
                            "mem",
                            "writeback.d2h",
                            "pcie",
                            ms,
                            &[("block", name.into()), ("bytes", b.bytes.into())],
                        );
                    }
                    return ms;
                }
            }
        }
        0.0
    }

    /// Is the block currently device-resident?
    pub fn is_resident(&self, name: &str) -> bool {
        self.inner
            .lock()
            .blocks
            .get(name)
            .map(|b| b.on_device)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(capacity: u64) -> MemoryManager {
        MemoryManager::new(capacity, TransferModel::native())
    }

    #[test]
    fn basic_residency_and_hits() {
        let m = mm(1000);
        m.register("a", 400, false);
        let t1 = m.ensure_on_device("a").unwrap();
        assert!(t1 > 0.0);
        assert!(m.is_resident("a"));
        let t2 = m.ensure_on_device("a").unwrap();
        assert_eq!(t2, 0.0);
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.used(), 400);
    }

    #[test]
    fn lru_eviction_order() {
        let m = mm(1000);
        m.register("a", 400, false);
        m.register("b", 400, false);
        m.register("c", 400, false);
        m.ensure_on_device("a").unwrap();
        m.ensure_on_device("b").unwrap();
        m.ensure_on_device("a").unwrap(); // touch a: b becomes LRU
        m.ensure_on_device("c").unwrap(); // evicts b
        assert!(m.is_resident("a"));
        assert!(!m.is_resident("b"));
        assert!(m.is_resident("c"));
        assert_eq!(m.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let m = mm(1000);
        m.register("a", 600, false);
        m.register("b", 600, false);
        m.ensure_on_device("a").unwrap();
        m.mark_device_dirty("a");
        m.ensure_on_device("b").unwrap(); // must evict + write back a
        let s = m.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.d2h_writebacks, 1);
        assert_eq!(s.d2h_bytes, 600);
    }

    #[test]
    fn pinned_blocks_survive() {
        let m = mm(1000);
        m.register("x", 600, false);
        m.register("y", 600, false);
        m.ensure_on_device("x").unwrap();
        m.pin("x");
        let err = m.ensure_on_device("y").unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
        m.unpin("x");
        m.ensure_on_device("y").unwrap();
        assert!(!m.is_resident("x"));
    }

    #[test]
    fn oversized_block_rejected() {
        let m = mm(100);
        m.register("huge", 200, false);
        assert!(matches!(
            m.ensure_on_device("huge"),
            Err(MemError::TooLarge { .. })
        ));
    }

    #[test]
    fn release_writes_back_dirty() {
        let m = mm(1000);
        m.register("a", 300, true);
        m.ensure_on_device("a").unwrap();
        m.mark_device_dirty("a");
        let ms = m.release("a");
        assert!(ms > 0.0);
        assert_eq!(m.used(), 0);
        assert!(!m.is_resident("a"));
    }

    #[test]
    fn conversion_charged_through_transfer_model() {
        let fast = MemoryManager::new(10_000_000_000, TransferModel::native());
        let slow = MemoryManager::new(10_000_000_000, TransferModel::systemml());
        fast.register("m", 1_000_000_000, true);
        slow.register("m", 1_000_000_000, true);
        let tf = fast.ensure_on_device("m").unwrap();
        let ts = slow.ensure_on_device("m").unwrap();
        assert!(ts > 2.0 * tf, "systemml {ts} vs native {tf}");
    }
}
