//! Multi-device fault recovery: the shard ladder
//! `ShardRetry -> Reshard -> SingleDevice -> Cpu`.
//!
//! * **ShardRetry** — rebuild the sharded job on every alive device and
//!   retry transient faults with backoff (same-tier retries, like the
//!   single-device ladder).
//! * **Reshard** — after a device loss (non-transient), redistribute the
//!   lost device's rows across the survivors and resume from the last
//!   [`fusedml_ml::SolverCheckpoint`] snapshot — never iteration 0.
//! * **SingleDevice** — pin the job to the first surviving device, still
//!   through the sharded executor (one shard), so the canonical reduction
//!   keeps the numerics bit-identical to the multi-device run.
//! * **Cpu** — host execution, the tier of last resort; never faults.
//!
//! Every decision is a [`RecoveryEvent<ShardTier>`] and an exhausted
//! ladder returns [`LadderError<ShardTier>`] carrying the last error seen
//! on every tier — the same trail format as the single-device ladder.

use crate::recovery::{
    LadderError, LadderOutcome, RecoveryAction, RecoveryEvent, RecoveryPolicy, RecoveryTier,
};
use fusedml_gpu_sim::DeviceGroup;
use fusedml_matrix::CsrMatrix;
use fusedml_ml::{
    try_lr_cg_ckpt, Backend, BackendStats, CheckpointHandle, CpuBackend, LrCgOptions, LrCgResult,
    ShardedBackend, SolverError,
};
use serde::{Deserialize, Serialize};

/// Rung of the multi-device degradation ladder, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardTier {
    /// All alive devices; transient faults retried in place.
    ShardRetry,
    /// Redistribute lost rows across the survivors, resume from the last
    /// checkpoint.
    Reshard,
    /// One surviving device carries the whole matrix (still the sharded
    /// executor, so numerics stay bit-identical).
    SingleDevice,
    /// Host execution; never faults.
    Cpu,
}

impl ShardTier {
    /// The next, more conservative tier; `None` from [`ShardTier::Cpu`].
    pub fn degrade(self) -> Option<ShardTier> {
        match self {
            ShardTier::ShardRetry => Some(ShardTier::Reshard),
            ShardTier::Reshard => Some(ShardTier::SingleDevice),
            ShardTier::SingleDevice => Some(ShardTier::Cpu),
            ShardTier::Cpu => None,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardTier::ShardRetry => "shard-retry",
            ShardTier::Reshard => "reshard",
            ShardTier::SingleDevice => "single-device",
            ShardTier::Cpu => "cpu",
        }
    }
}

impl RecoveryTier for ShardTier {
    fn name(&self) -> &'static str {
        ShardTier::name(*self)
    }
}

/// A [`LadderOutcome`] plus the sharding facts the multi-device report
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// The generic ladder outcome (tier, attempts, events, result, stats).
    pub ladder: LadderOutcome<ShardTier>,
    /// Devices that held a shard in the successful attempt (0 on the CPU
    /// tier).
    pub devices_used: usize,
    /// Shards that missed the straggler deadline, summed over every device
    /// attempt (successful or not).
    pub stragglers_detected: usize,
    /// Speculative re-executions launched, summed likewise.
    pub speculative_reexecs: usize,
}

struct AttemptOutput {
    result: LrCgResult,
    stats: BackendStats,
    devices_used: usize,
}

#[allow(clippy::too_many_arguments)]
fn attempt_tier(
    group: &DeviceGroup,
    tier: ShardTier,
    x: &CsrMatrix,
    labels: &[f64],
    opts: LrCgOptions,
    straggler_factor: f64,
    ckpt: Option<&CheckpointHandle>,
    stragglers: &mut usize,
    reexecs: &mut usize,
) -> Result<AttemptOutput, SolverError> {
    match tier {
        ShardTier::ShardRetry | ShardTier::Reshard => {
            let mut b = ShardedBackend::try_new_sparse(group, x)?
                .with_straggler_policy(straggler_factor, true);
            let devices_used = b.shard_count();
            let res = try_lr_cg_ckpt(&mut b, labels, opts, ckpt);
            *stragglers += b.stragglers_detected();
            *reexecs += b.speculative_reexecs();
            let r = res?;
            Ok(AttemptOutput {
                result: r,
                stats: b.stats(),
                devices_used,
            })
        }
        ShardTier::SingleDevice => {
            let pinned = match group.alive_ordinals().first() {
                Some(&o) => [o],
                None => {
                    // No survivors at all: fail fast with a typed loss so
                    // the ladder falls through to the CPU tier.
                    return Err(fusedml_gpu_sim::DeviceError::DeviceLost {
                        device: group.len().saturating_sub(1),
                        fault_index: 0,
                    }
                    .into());
                }
            };
            let mut b = ShardedBackend::try_new_sparse_on(group, x, &pinned)?
                .with_straggler_policy(straggler_factor, true);
            let res = try_lr_cg_ckpt(&mut b, labels, opts, ckpt);
            *stragglers += b.stragglers_detected();
            *reexecs += b.speculative_reexecs();
            let r = res?;
            Ok(AttemptOutput {
                result: r,
                stats: b.stats(),
                devices_used: 1,
            })
        }
        ShardTier::Cpu => {
            let mut b = CpuBackend::new_sparse(x.clone());
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok(AttemptOutput {
                result: r,
                stats: b.stats(),
                devices_used: 0,
            })
        }
    }
}

/// Run LR-CG sharded across `group` under the shard recovery ladder.
///
/// Transient faults retry on the same tier with exponential backoff; a
/// device loss is non-transient and degrades `ShardRetry -> Reshard`,
/// which rebuilds the sharding over the survivors. With
/// `policy.checkpoint_every > 0` the resharded attempt resumes from the
/// last host-side snapshot (`resumed_at > 0` in the outcome) instead of
/// iteration 0. Because the sharded executor's reduction is canonical,
/// the final weights are bit-identical whatever tier finishes the run —
/// including `SingleDevice` — except `Cpu`, which has its own (reference)
/// summation order.
pub fn run_lr_cg_sharded_with_recovery(
    group: &DeviceGroup,
    x: &CsrMatrix,
    labels: &[f64],
    opts: LrCgOptions,
    straggler_factor: f64,
    policy: &RecoveryPolicy,
) -> Result<ShardedOutcome, LadderError<ShardTier>> {
    let mut events = Vec::new();
    let mut tier_errors: Vec<(ShardTier, SolverError)> = Vec::new();
    let mut attempts = 0usize;
    let mut retry_backoff_ms = 0.0f64;
    let mut stragglers = 0usize;
    let mut reexecs = 0usize;
    let mut tier = ShardTier::ShardRetry;
    let ckpt =
        (policy.checkpoint_every > 0).then(|| CheckpointHandle::new(policy.checkpoint_every));

    let trace_resume = |h: &CheckpointHandle, to: ShardTier| {
        if let Some(snap) = h.latest() {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "recovery",
                    "resume",
                    "host",
                    &[
                        ("tier", to.name().into()),
                        ("iteration", snap.iteration().into()),
                        ("solver", snap.solver().into()),
                    ],
                );
            }
        }
    };

    loop {
        let mut tier_attempt = 0usize;
        let error = loop {
            tier_attempt += 1;
            attempts += 1;
            match attempt_tier(
                group,
                tier,
                x,
                labels,
                opts,
                straggler_factor,
                ckpt.as_ref(),
                &mut stragglers,
                &mut reexecs,
            ) {
                Ok(out) => {
                    return Ok(ShardedOutcome {
                        ladder: LadderOutcome {
                            tier,
                            attempts,
                            retry_backoff_ms,
                            events,
                            result: out.result,
                            stats: out.stats,
                            resumed_at: ckpt.as_ref().and_then(|h| h.last_resume()),
                        },
                        devices_used: out.devices_used,
                        stragglers_detected: stragglers,
                        speculative_reexecs: reexecs,
                    })
                }
                Err(e) => {
                    if e.is_transient() && tier_attempt <= policy.max_retries {
                        let backoff = policy.backoff_for(tier_attempt);
                        retry_backoff_ms += backoff;
                        if fusedml_trace::is_enabled() {
                            fusedml_trace::instant(
                                "recovery",
                                "retry",
                                "host",
                                &[
                                    ("tier", tier.name().into()),
                                    ("attempt", tier_attempt.into()),
                                    ("error", e.kind().into()),
                                    ("backoff_ms", backoff.into()),
                                ],
                            );
                        }
                        events.push(RecoveryEvent {
                            tier,
                            attempt: tier_attempt,
                            error_kind: e.kind().to_string(),
                            detail: e.to_string(),
                            action: RecoveryAction::Retry,
                            backoff_ms: backoff,
                        });
                        if let Some(h) = ckpt.as_ref() {
                            trace_resume(h, tier);
                        }
                        continue;
                    }
                    break e;
                }
            }
        };

        match tier.degrade() {
            Some(next) if policy.allow_degradation => {
                if fusedml_trace::is_enabled() {
                    if next == ShardTier::Reshard {
                        // The headline instant of this ladder: the shard
                        // layout is about to change.
                        fusedml_trace::instant(
                            "recovery",
                            "reshard",
                            "host",
                            &[
                                ("survivors", group.alive_count().into()),
                                ("of", group.len().into()),
                                ("error", error.kind().into()),
                            ],
                        );
                    }
                    fusedml_trace::instant(
                        "recovery",
                        "degrade",
                        "host",
                        &[
                            ("from", tier.name().into()),
                            ("to", next.name().into()),
                            ("error", error.kind().into()),
                        ],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Degrade,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                if let Some(h) = ckpt.as_ref() {
                    trace_resume(h, next);
                }
                tier = next;
            }
            _ => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "recovery",
                        "abort",
                        "host",
                        &[("tier", tier.name().into()), ("error", error.kind().into())],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Abort,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                return Err(LadderError {
                    tier_errors,
                    attempts,
                    events,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::{DeviceSpec, FaultProfile, InterconnectSpec};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};

    fn opts() -> LrCgOptions {
        LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 30,
        }
    }

    fn group(n: usize, profile: FaultProfile) -> DeviceGroup {
        DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            n,
            InterconnectSpec::pcie_gen3_x16(),
            &profile,
        )
    }

    #[test]
    fn shard_ladder_order_and_names() {
        assert_eq!(ShardTier::ShardRetry.degrade(), Some(ShardTier::Reshard));
        assert_eq!(ShardTier::Reshard.degrade(), Some(ShardTier::SingleDevice));
        assert_eq!(ShardTier::SingleDevice.degrade(), Some(ShardTier::Cpu));
        assert_eq!(ShardTier::Cpu.degrade(), None);
        assert_eq!(ShardTier::Reshard.name(), "reshard");
        assert_eq!(ShardTier::SingleDevice.name(), "single-device");
    }

    #[test]
    fn clean_group_finishes_on_shard_retry() {
        let x = uniform_sparse(120, 16, 0.2, 7);
        let labels = random_vector(120, 8);
        let g = group(3, FaultProfile::disabled());
        let out = run_lr_cg_sharded_with_recovery(
            &g,
            &x,
            &labels,
            opts(),
            3.0,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(out.ladder.tier, ShardTier::ShardRetry);
        assert_eq!(out.ladder.attempts, 1);
        assert_eq!(out.devices_used, 3);
        assert!(out.ladder.events.is_empty());
        assert_eq!(out.ladder.resumed_at, None);
    }

    #[test]
    fn device_loss_reshards_resumes_and_stays_bit_identical() {
        let x = uniform_sparse(160, 24, 0.15, 9);
        let labels = random_vector(160, 10);
        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            ..RecoveryPolicy::default()
        };

        // Baseline: unfaulted single device through the same executor.
        let clean = {
            let g = group(1, FaultProfile::disabled());
            run_lr_cg_sharded_with_recovery(&g, &x, &labels, opts(), 3.0, &policy).unwrap()
        };
        assert_eq!(clean.ladder.tier, ShardTier::ShardRetry);

        // Seeded device loss mid-solve: found by scanning seeds offline;
        // this one kills exactly one of three devices within 30 iterations.
        let mut hit = None;
        for seed in 0..64u64 {
            let g = group(3, FaultProfile::seeded(seed).with_device_loss_rate(0.0015));
            let out =
                run_lr_cg_sharded_with_recovery(&g, &x, &labels, opts(), 3.0, &policy).unwrap();
            if out.ladder.tier == ShardTier::Reshard && g.alive_count() == 2 {
                hit = Some((out, seed));
                break;
            }
        }
        let (out, seed) = hit.expect("no seed in 0..64 lost exactly one device mid-solve");

        // The loss trail: shard-retry failed with a device loss, resharded,
        // resumed past iteration 0.
        assert!(
            out.ladder
                .events
                .iter()
                .any(|e| e.error_kind == "device-lost"),
            "seed {seed}: no device-lost event in the trail"
        );
        assert_eq!(out.devices_used, 2, "seed {seed}");
        let resumed = out.ladder.resumed_at.unwrap_or(0);
        assert!(resumed > 0, "seed {seed}: resumed at iteration 0");

        // And the survivors' result is bit-identical to the unfaulted run.
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&out.ladder.result.weights),
            bits(&clean.ladder.result.weights),
            "seed {seed}: reshard changed the numerics"
        );
    }

    #[test]
    fn dead_group_falls_through_to_cpu_with_full_trail() {
        let x = uniform_sparse(80, 12, 0.25, 11);
        let labels = random_vector(80, 12);
        let g = group(2, FaultProfile::disabled());
        g.mark_lost(0);
        g.mark_lost(1);
        let out = run_lr_cg_sharded_with_recovery(
            &g,
            &x,
            &labels,
            opts(),
            3.0,
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert_eq!(out.ladder.tier, ShardTier::Cpu);
        assert_eq!(out.devices_used, 0);
        // Every device tier left a device-lost event in the trail.
        let tiers: Vec<&str> = out.ladder.events.iter().map(|e| e.tier.name()).collect();
        assert_eq!(tiers, vec!["shard-retry", "reshard", "single-device"]);
        assert!(out
            .ladder
            .events
            .iter()
            .all(|e| e.error_kind == "device-lost"));
    }

    #[test]
    fn degradation_disabled_aborts_with_tier_errors() {
        let x = uniform_sparse(40, 8, 0.3, 13);
        let labels = random_vector(40, 14);
        let g = group(2, FaultProfile::seeded(1).with_device_loss_rate(1.0));
        let policy = RecoveryPolicy {
            allow_degradation: false,
            ..RecoveryPolicy::default()
        };
        let err =
            run_lr_cg_sharded_with_recovery(&g, &x, &labels, opts(), 3.0, &policy).unwrap_err();
        assert_eq!(err.kind(), "device-lost");
        assert_eq!(err.tier_errors.len(), 1);
        assert_eq!(err.tier_errors[0].0, ShardTier::ShardRetry);
        assert!(err.to_string().contains("shard-retry tier"));
    }
}
