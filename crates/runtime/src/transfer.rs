//! Host ↔ device transfer cost models.
//!
//! Two regimes from the paper's end-to-end experiments:
//! * **native** (§4.4, Table 5) — raw PCIe Gen3 transfers of host buffers
//!   (the paper measures 939 ms for the KDD 2010 matrix);
//! * **SystemML** (Table 6) — before PCIe, data crosses the JVM boundary
//!   (JNI copy out of the heap) and changes format (SystemML's sparse-row
//!   representation → CSR). These are the overheads the paper blames for
//!   the gap between Table 5's 9x and Table 6's 1.9x.

use fusedml_gpu_sim::PcieSpec;
use serde::{Deserialize, Serialize};

/// A transfer cost model with optional JVM-integration overheads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    pub pcie: PcieSpec,
    /// JNI copy bandwidth (JVM heap → native buffer), GB/s; `None` when
    /// the host data is already native (Table 5 regime).
    pub jni_gbps: Option<f64>,
    /// Format-conversion bandwidth (sparse rows → CSR and back), GB/s;
    /// `None` when no conversion is needed.
    pub format_conversion_gbps: Option<f64>,
}

impl TransferModel {
    /// Raw PCIe only (the hand-written CUDA pipeline of Table 5).
    pub fn native() -> Self {
        TransferModel {
            pcie: PcieSpec::gen3_x16(),
            jni_gbps: None,
            format_conversion_gbps: None,
        }
    }

    /// SystemML/JVM integration (Table 6): JNI + format conversion ahead
    /// of every transfer of a not-yet-converted matrix.
    pub fn systemml() -> Self {
        TransferModel {
            pcie: PcieSpec::gen3_x16(),
            jni_gbps: Some(5.0),
            format_conversion_gbps: Some(2.5),
        }
    }

    /// Milliseconds to move `bytes` host→device. `convert` marks payloads
    /// that additionally cross the JNI boundary / change format (matrix
    /// uploads in the SystemML regime).
    pub fn h2d_ms(&self, bytes: u64, convert: bool) -> f64 {
        let mut ms = self.pcie.transfer_ms(bytes);
        if convert {
            if let Some(bw) = self.jni_gbps {
                ms += bytes as f64 / bw * 1e-6;
            }
            if let Some(bw) = self.format_conversion_gbps {
                ms += bytes as f64 / bw * 1e-6;
            }
        }
        ms
    }

    /// Milliseconds to move `bytes` device→host.
    pub fn d2h_ms(&self, bytes: u64, convert: bool) -> f64 {
        self.h2d_ms(bytes, convert)
    }

    /// Per-scalar readback (a CG `dot` result crossing back each
    /// iteration): dominated by latency.
    pub fn scalar_readback_ms(&self) -> f64 {
        self.pcie.transfer_ms(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_is_cheaper_than_systemml() {
        let n = TransferModel::native();
        let s = TransferModel::systemml();
        let bytes = 100_000_000;
        assert!(s.h2d_ms(bytes, true) > 2.0 * n.h2d_ms(bytes, true));
        // Without conversion they agree.
        assert_eq!(s.h2d_ms(bytes, false), n.h2d_ms(bytes, false));
    }

    #[test]
    fn kdd_transfer_in_paper_ballpark() {
        // The paper reports 939 ms to move KDD 2010 (~5.4 GB CSR) to the
        // device; our model should land within 2x at full scale.
        let m = TransferModel::native();
        let kdd_bytes = 423_865_484u64 * 12 + (15_009_374 + 1) * 4;
        let ms = m.h2d_ms(kdd_bytes, false);
        assert!((300.0..2000.0).contains(&ms), "KDD transfer {ms} ms");
    }

    #[test]
    fn scalar_readback_is_latency_bound() {
        let m = TransferModel::native();
        let ms = m.scalar_readback_ms();
        assert!((0.01..0.1).contains(&ms), "{ms}");
    }
}
