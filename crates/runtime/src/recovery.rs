//! Fault recovery: bounded retry with exponential backoff for transient
//! device faults, and a graceful-degradation ladder
//! `Fused -> Baseline -> Cpu` for everything retries cannot fix.
//!
//! Retrying re-builds the backend from host data, so a watchdog-killed
//! kernel (whose output buffers are undefined) never leaks garbage into
//! the next attempt. Every retry and every degradation decision is
//! recorded as a [`RecoveryEvent`] so the session report can show *why*
//! a run ended on the tier it did.

use crate::session::DataSet;
use fusedml_gpu_sim::Gpu;
use fusedml_ml::ops::TransposePolicy;
use fusedml_ml::{
    try_lr_cg, Backend, BackendStats, BaselineBackend, CpuBackend, FusedBackend, LrCgOptions,
    LrCgResult, SolverError,
};
use serde::{Deserialize, Serialize};

/// Execution tier of the degradation ladder, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendTier {
    /// The paper's fused kernels.
    Fused,
    /// cuBLAS/cuSPARSE-style operator composition.
    Baseline,
    /// Host execution — the tier of last resort; never faults.
    Cpu,
}

impl BackendTier {
    /// The next, more conservative tier; `None` from [`BackendTier::Cpu`].
    pub fn degrade(self) -> Option<BackendTier> {
        match self {
            BackendTier::Fused => Some(BackendTier::Baseline),
            BackendTier::Baseline => Some(BackendTier::Cpu),
            BackendTier::Cpu => None,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendTier::Fused => "fused",
            BackendTier::Baseline => "baseline",
            BackendTier::Cpu => "cpu",
        }
    }
}

/// What the policy decided after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Same tier again after backoff (transient fault, retries left).
    Retry,
    /// Move down the ladder (retries exhausted or fault not transient).
    Degrade,
    /// Give up (degradation disabled, or the ladder is exhausted).
    Abort,
}

/// One recovery decision, recorded in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Tier the failed attempt ran on.
    pub tier: BackendTier,
    /// 1-based attempt number within that tier.
    pub attempt: usize,
    /// Stable error class (`DeviceError::kind` / `"numerical-breakdown"`).
    pub error_kind: String,
    /// Full error message.
    pub detail: String,
    /// What the policy decided.
    pub action: RecoveryAction,
    /// Simulated backoff delay charged before the retry (0 otherwise).
    pub backoff_ms: f64,
}

/// Retry/degradation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries per tier *after* the first attempt, for transient faults.
    pub max_retries: usize,
    /// Backoff before the first retry (simulated milliseconds).
    pub backoff_ms: f64,
    /// Multiplier applied to the backoff per additional retry.
    pub backoff_multiplier: f64,
    /// When false, a tier's failure aborts instead of degrading.
    pub allow_degradation: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_ms: 5.0,
            backoff_multiplier: 2.0,
            allow_degradation: true,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `retry` (1-based), exponential.
    pub fn backoff_for(&self, retry: usize) -> f64 {
        self.backoff_ms * self.backoff_multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

/// Where the ladder landed, with the full decision trail.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome {
    /// Tier that completed the run.
    pub tier: BackendTier,
    /// Total attempts across all tiers (>= 1).
    pub attempts: usize,
    /// Simulated milliseconds spent backing off before retries.
    pub retry_backoff_ms: f64,
    /// Every retry/degradation decision, in order.
    pub events: Vec<RecoveryEvent>,
    /// Solver result of the successful attempt.
    pub result: LrCgResult,
    /// Backend stats of the successful attempt (failed attempts' partial
    /// compute is absorbed into the shared `Gpu` clock, not shown here).
    pub stats: BackendStats,
}

fn attempt_tier(
    gpu: &Gpu,
    tier: BackendTier,
    data: &DataSet,
    labels: &[f64],
    opts: LrCgOptions,
    transpose_policy: TransposePolicy,
) -> Result<(LrCgResult, BackendStats), SolverError> {
    match (tier, data) {
        (BackendTier::Fused, DataSet::Sparse(x)) => {
            let mut b = FusedBackend::try_new_sparse(gpu, x)?;
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Fused, DataSet::Dense(x)) => {
            let mut b = FusedBackend::try_new_dense(gpu, x)?;
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Baseline, DataSet::Sparse(x)) => {
            let mut b =
                BaselineBackend::try_new_sparse(gpu, x)?.with_transpose_policy(transpose_policy);
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Baseline, DataSet::Dense(x)) => {
            let mut b = BaselineBackend::try_new_dense(gpu, x)?;
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Cpu, DataSet::Sparse(x)) => {
            let mut b = CpuBackend::new_sparse(x.clone());
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Cpu, DataSet::Dense(x)) => {
            let mut b = CpuBackend::new_dense(x.clone());
            let r = try_lr_cg(&mut b, labels, opts)?;
            Ok((r, b.stats()))
        }
    }
}

/// Run LR-CG under the recovery policy, starting at the fused tier.
///
/// Transient faults are retried on the same tier (fresh backend each
/// time) up to `policy.max_retries` times with exponential backoff;
/// anything else — or exhausted retries — degrades down the ladder.
/// The CPU tier cannot fault, so with degradation enabled this always
/// succeeds; `Err` is only possible with `allow_degradation: false`.
pub fn run_lr_cg_with_recovery(
    gpu: &Gpu,
    data: &DataSet,
    labels: &[f64],
    opts: LrCgOptions,
    transpose_policy: TransposePolicy,
    policy: &RecoveryPolicy,
) -> Result<LadderOutcome, SolverError> {
    let mut events = Vec::new();
    let mut attempts = 0usize;
    let mut retry_backoff_ms = 0.0f64;
    let mut tier = BackendTier::Fused;

    loop {
        let mut tier_attempt = 0usize;
        let error = loop {
            tier_attempt += 1;
            attempts += 1;
            match attempt_tier(gpu, tier, data, labels, opts, transpose_policy) {
                Ok((result, stats)) => {
                    return Ok(LadderOutcome {
                        tier,
                        attempts,
                        retry_backoff_ms,
                        events,
                        result,
                        stats,
                    })
                }
                Err(e) => {
                    if e.is_transient() && tier_attempt <= policy.max_retries {
                        let backoff = policy.backoff_for(tier_attempt);
                        retry_backoff_ms += backoff;
                        if fusedml_trace::is_enabled() {
                            fusedml_trace::instant(
                                "recovery",
                                "retry",
                                "host",
                                &[
                                    ("tier", tier.name().into()),
                                    ("attempt", tier_attempt.into()),
                                    ("error", e.kind().into()),
                                    ("backoff_ms", backoff.into()),
                                ],
                            );
                        }
                        events.push(RecoveryEvent {
                            tier,
                            attempt: tier_attempt,
                            error_kind: e.kind().to_string(),
                            detail: e.to_string(),
                            action: RecoveryAction::Retry,
                            backoff_ms: backoff,
                        });
                        continue;
                    }
                    break e;
                }
            }
        };

        match tier.degrade() {
            Some(next) if policy.allow_degradation => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "recovery",
                        "degrade",
                        "host",
                        &[
                            ("from", tier.name().into()),
                            ("to", next.name().into()),
                            ("error", error.kind().into()),
                        ],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Degrade,
                    backoff_ms: 0.0,
                });
                tier = next;
            }
            _ => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "recovery",
                        "abort",
                        "host",
                        &[("tier", tier.name().into()), ("error", error.kind().into())],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Abort,
                    backoff_ms: 0.0,
                });
                return Err(error);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_names() {
        assert_eq!(BackendTier::Fused.degrade(), Some(BackendTier::Baseline));
        assert_eq!(BackendTier::Baseline.degrade(), Some(BackendTier::Cpu));
        assert_eq!(BackendTier::Cpu.degrade(), None);
        assert_eq!(BackendTier::Fused.name(), "fused");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_for(1), 5.0);
        assert_eq!(p.backoff_for(2), 10.0);
        assert_eq!(p.backoff_for(3), 20.0);
    }
}
