//! Fault recovery: bounded retry with exponential backoff for transient
//! device faults, and a graceful-degradation ladder
//! `Fused -> Baseline -> Cpu` for everything retries cannot fix.
//!
//! Retrying re-builds the backend from host data, so a watchdog-killed
//! kernel (whose output buffers are undefined) never leaks garbage into
//! the next attempt. Every retry and every degradation decision is
//! recorded as a [`RecoveryEvent`] so the session report can show *why*
//! a run ended on the tier it did.

use crate::session::DataSet;
use fusedml_gpu_sim::Gpu;
use fusedml_ml::ops::TransposePolicy;
use fusedml_ml::{
    try_lr_cg_ckpt, Backend, BackendStats, BaselineBackend, CheckpointHandle, CpuBackend,
    FusedBackend, LrCgOptions, LrCgResult, SolverError,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rung of some degradation ladder: anything with a stable report name.
/// The ladder bookkeeping types ([`RecoveryEvent`], [`LadderOutcome`],
/// [`LadderError`]) are generic over the tier so the single-device ladder
/// (`Fused -> Baseline -> Cpu`) and the multi-device shard ladder
/// (`ShardRetry -> Reshard -> SingleDevice -> Cpu`, see
/// [`crate::shard_recovery`]) share one event trail format.
pub trait RecoveryTier {
    /// Stable name for reports.
    fn name(&self) -> &'static str;
}

/// Execution tier of the degradation ladder, fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendTier {
    /// The paper's fused kernels.
    Fused,
    /// cuBLAS/cuSPARSE-style operator composition.
    Baseline,
    /// Host execution — the tier of last resort; never faults.
    Cpu,
}

impl BackendTier {
    /// The next, more conservative tier; `None` from [`BackendTier::Cpu`].
    pub fn degrade(self) -> Option<BackendTier> {
        match self {
            BackendTier::Fused => Some(BackendTier::Baseline),
            BackendTier::Baseline => Some(BackendTier::Cpu),
            BackendTier::Cpu => None,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendTier::Fused => "fused",
            BackendTier::Baseline => "baseline",
            BackendTier::Cpu => "cpu",
        }
    }
}

impl RecoveryTier for BackendTier {
    fn name(&self) -> &'static str {
        BackendTier::name(*self)
    }
}

/// What the policy decided after a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Same tier again after backoff (transient fault, retries left).
    Retry,
    /// Move down the ladder (retries exhausted or fault not transient).
    Degrade,
    /// Give up (degradation disabled, or the ladder is exhausted).
    Abort,
}

/// One recovery decision, recorded in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent<T = BackendTier> {
    /// Tier the failed attempt ran on.
    pub tier: T,
    /// 1-based attempt number within that tier.
    pub attempt: usize,
    /// Stable error class (`DeviceError::kind` / `"numerical-breakdown"`).
    pub error_kind: String,
    /// Full error message.
    pub detail: String,
    /// What the policy decided.
    pub action: RecoveryAction,
    /// Simulated backoff delay charged before the retry (0 otherwise).
    pub backoff_ms: f64,
}

/// Retry/degradation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries per tier *after* the first attempt, for transient faults.
    pub max_retries: usize,
    /// Backoff before the first retry (simulated milliseconds).
    pub backoff_ms: f64,
    /// Multiplier applied to the backoff per additional retry.
    pub backoff_multiplier: f64,
    /// When false, a tier's failure aborts instead of degrading.
    pub allow_degradation: bool,
    /// Snapshot solver state every this many iterations so retries and
    /// tier degrades resume from the last good iterate instead of
    /// iteration 0. `0` (the default) disables checkpointing and keeps
    /// every attempt bit-identical to the pre-checkpoint behaviour.
    pub checkpoint_every: usize,
    /// Worker threads for the Cpu tier's fused single-pass pattern
    /// kernels (SIMD-dispatched, deterministic across thread counts).
    /// `0` (the default) keeps the Cpu tier on the unfused reference
    /// path, bit-identical to earlier releases.
    #[serde(default)]
    pub cpu_fused_threads: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_ms: 5.0,
            backoff_multiplier: 2.0,
            allow_degradation: true,
            checkpoint_every: 0,
            cpu_fused_threads: 0,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `retry` (1-based), exponential.
    pub fn backoff_for(&self, retry: usize) -> f64 {
        self.backoff_ms * self.backoff_multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

/// Where the ladder landed, with the full decision trail.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome<T = BackendTier> {
    /// Tier that completed the run.
    pub tier: T,
    /// Total attempts across all tiers (>= 1).
    pub attempts: usize,
    /// Simulated milliseconds spent backing off before retries.
    pub retry_backoff_ms: f64,
    /// Every retry/degradation decision, in order.
    pub events: Vec<RecoveryEvent<T>>,
    /// Solver result of the successful attempt.
    pub result: LrCgResult,
    /// Backend stats of the successful attempt (failed attempts' partial
    /// compute is absorbed into the shared `Gpu` clock, not shown here).
    pub stats: BackendStats,
    /// Iteration the successful attempt resumed from, when checkpointing
    /// was enabled and a prior failed attempt left a snapshot behind
    /// (`None` when the run started from iteration 0).
    pub resumed_at: Option<usize>,
}

/// The ladder gave up: every usable tier failed. Carries the *last*
/// error seen on each tier, in the order the tiers were attempted, plus
/// the full decision trail — so an abort report can show not just the
/// final CPU-tier error but also what killed the faster tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderError<T = BackendTier> {
    /// `(tier, last error on that tier)` in attempt order; never empty.
    pub tier_errors: Vec<(T, SolverError)>,
    /// Total attempts across all tiers.
    pub attempts: usize,
    /// Every retry/degradation/abort decision, in order.
    pub events: Vec<RecoveryEvent<T>>,
}

impl<T> LadderError<T> {
    /// The error that ended the run: the last tier's last error.
    pub fn final_error(&self) -> &SolverError {
        match self.tier_errors.last() {
            Some((_, e)) => e,
            // `tier_errors` is never empty by construction; keep a
            // diagnosable panic rather than unwrap for the impossible arm.
            None => unreachable!("LadderError built without any tier error"),
        }
    }

    /// Delegates to the final error (matches [`SolverError::is_transient`]).
    pub fn is_transient(&self) -> bool {
        self.final_error().is_transient()
    }

    /// Stable class tag of the final error.
    pub fn kind(&self) -> &'static str {
        self.final_error().kind()
    }
}

impl<T: RecoveryTier> fmt::Display for LadderError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery ladder exhausted after {} attempts: ",
            self.attempts
        )?;
        for (i, (tier, e)) in self.tier_errors.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{} tier: {e}", tier.name())?;
        }
        Ok(())
    }
}

impl<T: RecoveryTier + fmt::Debug> std::error::Error for LadderError<T> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.final_error())
    }
}

#[allow(clippy::too_many_arguments)]
fn attempt_tier(
    gpu: &Gpu,
    tier: BackendTier,
    data: &DataSet,
    labels: &[f64],
    opts: LrCgOptions,
    transpose_policy: TransposePolicy,
    cpu_fused_threads: usize,
    ckpt: Option<&CheckpointHandle>,
) -> Result<(LrCgResult, BackendStats), SolverError> {
    let cpu_backend = |b: CpuBackend| {
        if cpu_fused_threads > 0 {
            b.with_fused_execution(cpu_fused_threads)
        } else {
            b
        }
    };
    match (tier, data) {
        (BackendTier::Fused, DataSet::Sparse(x)) => {
            let mut b = FusedBackend::try_new_sparse(gpu, x)?;
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Fused, DataSet::Dense(x)) => {
            let mut b = FusedBackend::try_new_dense(gpu, x)?;
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Baseline, DataSet::Sparse(x)) => {
            let mut b =
                BaselineBackend::try_new_sparse(gpu, x)?.with_transpose_policy(transpose_policy);
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Baseline, DataSet::Dense(x)) => {
            let mut b = BaselineBackend::try_new_dense(gpu, x)?;
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Cpu, DataSet::Sparse(x)) => {
            let mut b = cpu_backend(CpuBackend::new_sparse(x.clone()));
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
        (BackendTier::Cpu, DataSet::Dense(x)) => {
            let mut b = cpu_backend(CpuBackend::new_dense(x.clone()));
            let r = try_lr_cg_ckpt(&mut b, labels, opts, ckpt)?;
            Ok((r, b.stats()))
        }
    }
}

/// Run LR-CG under the recovery policy, starting at the fused tier.
///
/// Transient faults are retried on the same tier (fresh backend each
/// time) up to `policy.max_retries` times with exponential backoff;
/// anything else — or exhausted retries — degrades down the ladder.
/// With `policy.checkpoint_every > 0` the solver snapshots its CG state
/// at that cadence and every retry or degraded attempt resumes from the
/// last snapshot instead of iteration 0 — the snapshot lives on the
/// host, so it survives the switch to a fresh backend on a lower tier.
/// The CPU tier cannot fault, so with degradation enabled this always
/// succeeds; `Err` is only possible with `allow_degradation: false`, and
/// carries the last error seen on every tier attempted.
pub fn run_lr_cg_with_recovery(
    gpu: &Gpu,
    data: &DataSet,
    labels: &[f64],
    opts: LrCgOptions,
    transpose_policy: TransposePolicy,
    policy: &RecoveryPolicy,
) -> Result<LadderOutcome, LadderError> {
    let mut events = Vec::new();
    let mut tier_errors: Vec<(BackendTier, SolverError)> = Vec::new();
    let mut attempts = 0usize;
    let mut retry_backoff_ms = 0.0f64;
    let mut tier = BackendTier::Fused;
    let ckpt =
        (policy.checkpoint_every > 0).then(|| CheckpointHandle::new(policy.checkpoint_every));

    // Emitted before a retry/degraded attempt that will pick up a
    // snapshot, so the trace shows where the resumed run restarts.
    let trace_resume = |h: &CheckpointHandle, to: BackendTier| {
        if let Some(snap) = h.latest() {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "recovery",
                    "resume",
                    "host",
                    &[
                        ("tier", to.name().into()),
                        ("iteration", snap.iteration().into()),
                        ("solver", snap.solver().into()),
                    ],
                );
            }
        }
    };

    loop {
        let mut tier_attempt = 0usize;
        let error = loop {
            tier_attempt += 1;
            attempts += 1;
            match attempt_tier(
                gpu,
                tier,
                data,
                labels,
                opts,
                transpose_policy,
                policy.cpu_fused_threads,
                ckpt.as_ref(),
            ) {
                Ok((result, stats)) => {
                    return Ok(LadderOutcome {
                        tier,
                        attempts,
                        retry_backoff_ms,
                        events,
                        result,
                        stats,
                        resumed_at: ckpt.as_ref().and_then(|h| h.last_resume()),
                    })
                }
                Err(e) => {
                    if e.is_transient() && tier_attempt <= policy.max_retries {
                        let backoff = policy.backoff_for(tier_attempt);
                        retry_backoff_ms += backoff;
                        if fusedml_trace::is_enabled() {
                            fusedml_trace::instant(
                                "recovery",
                                "retry",
                                "host",
                                &[
                                    ("tier", tier.name().into()),
                                    ("attempt", tier_attempt.into()),
                                    ("error", e.kind().into()),
                                    ("backoff_ms", backoff.into()),
                                ],
                            );
                        }
                        events.push(RecoveryEvent {
                            tier,
                            attempt: tier_attempt,
                            error_kind: e.kind().to_string(),
                            detail: e.to_string(),
                            action: RecoveryAction::Retry,
                            backoff_ms: backoff,
                        });
                        if let Some(h) = ckpt.as_ref() {
                            trace_resume(h, tier);
                        }
                        continue;
                    }
                    break e;
                }
            }
        };

        match tier.degrade() {
            Some(next) if policy.allow_degradation => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "recovery",
                        "degrade",
                        "host",
                        &[
                            ("from", tier.name().into()),
                            ("to", next.name().into()),
                            ("error", error.kind().into()),
                        ],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Degrade,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                if let Some(h) = ckpt.as_ref() {
                    trace_resume(h, next);
                }
                tier = next;
            }
            _ => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "recovery",
                        "abort",
                        "host",
                        &[("tier", tier.name().into()), ("error", error.kind().into())],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Abort,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                return Err(LadderError {
                    tier_errors,
                    attempts,
                    events,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_and_names() {
        assert_eq!(BackendTier::Fused.degrade(), Some(BackendTier::Baseline));
        assert_eq!(BackendTier::Baseline.degrade(), Some(BackendTier::Cpu));
        assert_eq!(BackendTier::Cpu.degrade(), None);
        assert_eq!(BackendTier::Fused.name(), "fused");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_for(1), 5.0);
        assert_eq!(p.backoff_for(2), 10.0);
        assert_eq!(p.backoff_for(3), 20.0);
    }
}
