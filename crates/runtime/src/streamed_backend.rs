//! Out-of-core solver backend: the matrix products run through the
//! streaming pipeline ([`SparseStreamer`] — multi-queue copy engine,
//! depth-`d` overlap, byte-budgeted chunk residency) while the solver's
//! vectors and BLAS-1 stay device-resident, like a real out-of-core
//! solver keeping its iterate and search directions on the accelerator.
//!
//! Because the streamer follows the sharded executor's canonical
//! epilogue reduction, solver-visible numerics are **bit-identical for
//! any chunk size, pipeline depth, queue count or residency budget** —
//! including the single-chunk configuration, which *is* the non-streamed
//! fused path. Streaming is purely a cost/capacity decision; it never
//! perturbs convergence.
//!
//! The backend keeps one streamer alive for the whole solve, which is
//! what makes consecutive iterations cheap: resident chunks admitted in
//! iteration `k` are served from device memory in iteration `k + 1`, and
//! the chunk launch plans (and the cost-searched configuration itself)
//! are memoized once, not per iteration.

use crate::streaming::{SparseStreamer, StreamConfig, StreamError, StreamReport};
use crate::transfer::TransferModel;
use fusedml_blas::level1;
use fusedml_core::{PatternInstance, PatternSpec};
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchStats, PoolStats};
use fusedml_matrix::CsrMatrix;
use fusedml_ml::{try_device_map2, Backend, BackendStats};

/// [`Backend`] whose matrix lives on the host and streams through the
/// copy-engine pipeline chunk by chunk (sparse matrices only — the
/// out-of-core regime is the large sparse one).
pub struct StreamedBackend<'g> {
    gpu: &'g Gpu,
    streamer: SparseStreamer<'g>,
    scalar: GpuBuffer,
    stats: BackendStats,
    /// Pool snapshot at construction / last reset.
    pool_base: PoolStats,
    /// Report of the most recent streamed matrix op.
    last_report: Option<StreamReport>,
}

impl<'g> StreamedBackend<'g> {
    /// Chunk `x` for streaming under `cfg` (use [`StreamConfig::auto`]
    /// for the cost-searched configuration).
    pub fn try_new_sparse(
        gpu: &'g Gpu,
        x: &CsrMatrix,
        transfer: TransferModel,
        cfg: StreamConfig,
    ) -> Result<Self, StreamError> {
        let streamer = SparseStreamer::try_new(gpu, x, transfer, cfg)?;
        Ok(StreamedBackend {
            gpu,
            streamer,
            scalar: gpu.try_alloc_f64("stream.scalar", 1)?,
            stats: BackendStats::default(),
            pool_base: gpu.pool_stats(),
            last_report: None,
        })
    }

    pub fn new_sparse(
        gpu: &'g Gpu,
        x: &CsrMatrix,
        transfer: TransferModel,
        cfg: StreamConfig,
    ) -> Self {
        Self::try_new_sparse(gpu, x, transfer, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The streaming executor (chunk schedule, residency and copy-engine
    /// introspection).
    pub fn streamer(&self) -> &SparseStreamer<'g> {
        &self.streamer
    }

    /// Report of the most recent streamed matrix op, if any.
    pub fn last_report(&self) -> Option<&StreamReport> {
        self.last_report.as_ref()
    }

    /// Fold the streamer's accumulated pipeline wall and launches into
    /// the backend stats. Called after every matrix op, error or not, so
    /// chunks processed before a fault still cost modeled time. The time
    /// charged is the *pipeline* wall (transfer/compute overlapped), not
    /// the kernel sum — streaming's cost is the schedule, not the kernels.
    fn absorb_streamer(&mut self) {
        self.stats.sim_ms += self.streamer.wall_ms();
        self.stats.launches += self.streamer.launch_count();
        self.stats.counters.merge(&self.streamer.counters_total());
        for l in &self.streamer.launches {
            self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
        }
        self.streamer.reset();
    }

    fn charge(&mut self, s: LaunchStats) {
        self.stats.sim_ms += s.sim_ms();
        self.stats.launches += 1;
        self.stats.counters.merge(&s.counters);
        self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
    }

    fn record_instance(&mut self, inst: PatternInstance) {
        *self.stats.pattern_counts.entry(inst.formula()).or_insert(0) += 1;
    }

    /// Map a streaming failure onto the backend error surface. Device
    /// faults pass through (the recovery ladder consumes them); shape and
    /// configuration errors from inside a backend call are caller bugs,
    /// reported the way the other device backends report them — a panic.
    fn device_err(e: StreamError) -> DeviceError {
        match e {
            StreamError::Device(e) => e,
            other => panic!("streamed backend misuse: {other}"),
        }
    }
}

impl<'g> Backend for StreamedBackend<'g> {
    type Vector = GpuBuffer;

    fn rows(&self) -> usize {
        self.streamer.rows()
    }

    fn cols(&self) -> usize {
        self.streamer.cols()
    }

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_upload_f64(name, data)
    }

    fn try_zeros(&mut self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_alloc_f64(name, len)
    }

    fn to_host(&self, v: &GpuBuffer) -> Vec<f64> {
        v.to_vec_f64()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let vh = v.map(|v| v.to_vec_f64());
        let yh = y.to_vec_f64();
        let zh = z.map(|z| z.to_vec_f64());
        let mut wh = vec![0.0; self.streamer.cols()];
        let res = self
            .streamer
            .try_pattern_host(spec, vh.as_deref(), &yh, zh.as_deref(), &mut wh);
        self.absorb_streamer();
        self.last_report = Some(res.map_err(Self::device_err)?);
        w.copy_from_f64(&wh);
        self.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &GpuBuffer, out: &mut GpuBuffer) -> Result<(), DeviceError> {
        let yh = y.to_vec_f64();
        let mut ph = vec![0.0; self.streamer.rows()];
        let res = self.streamer.try_mv_host(&yh, &mut ph);
        self.absorb_streamer();
        self.last_report = Some(res.map_err(Self::device_err)?);
        out.copy_from_f64(&ph);
        Ok(())
    }

    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let uh = u.to_vec_f64();
        let mut wh = vec![0.0; self.streamer.cols()];
        let res = self.streamer.try_tmv_host(alpha, &uh, &mut wh);
        self.absorb_streamer();
        self.last_report = Some(res.map_err(Self::device_err)?);
        out.copy_from_f64(&wh);
        self.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_axpy(self.gpu, a, x, y)?;
        self.charge(s);
        Ok(())
    }

    fn try_scal(&mut self, a: f64, x: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_scal(self.gpu, a, x)?;
        self.charge(s);
        Ok(())
    }

    fn try_copy(&mut self, src: &GpuBuffer, dst: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_copy(self.gpu, src, dst)?;
        self.charge(s);
        Ok(())
    }

    fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = level1::try_ewmul(self.gpu, x, y, out)?;
        self.charge(s);
        Ok(())
    }

    fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_dot(self.gpu, x, y, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_nrm2_sq(self.gpu, x, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_map2(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        let s = try_device_map2(self.gpu, x, y, out, f)?;
        self.charge(s);
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats.clone();
        s.plan = self.streamer.plan_stats();
        s.pool = self.gpu.pool_stats().delta_since(&self.pool_base);
        s
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.streamer.reset_plan_stats();
        self.pool_base = self.gpu.pool_stats();
    }
}

impl Drop for StreamedBackend<'_> {
    fn drop(&mut self) {
        self.gpu.free(&self.scalar);
        // The streamer's own Drop releases the persistent vectors and
        // resident chunks.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;
    use fusedml_ml::{try_lr_cg_ckpt, CpuBackend, LrCgOptions};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn streamed_backend_matches_reference_and_accounts() {
        let g = gpu();
        let x = uniform_sparse(600, 80, 0.08, 201);
        let y = random_vector(80, 1);
        let v = random_vector(600, 2);
        let spec = PatternSpec::xtvxy();

        let mut b = StreamedBackend::new_sparse(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(128, 3),
        );
        let yd = b.from_host("y", &y);
        let vd = b.from_host("v", &v);
        let mut wd = b.zeros("w", 80);
        b.pattern(spec, Some(&vd), &yd, None, &mut wd);
        let w = b.to_host(&wd);

        let expect = reference::pattern_csr(1.0, &x, Some(&v), &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-10);
        let s = b.stats();
        assert_eq!(s.pattern_counts[spec.instance().formula()], 1);
        assert!(s.sim_ms > 0.0);
        assert!(s.launches >= 2 * 5, "fill + fused kernel per chunk");
        let r = b.last_report().unwrap_or_else(|| panic!("no report"));
        assert_eq!(r.chunks, 5);
        assert_eq!(r.depth, 3);
        // The backend charges the overlapped pipeline wall, which covers
        // the transfers the kernels hid under.
        assert!(s.sim_ms >= r.overlapped_ms);
    }

    /// The headline contract: an lr_cg solve is bit-identical whether the
    /// matrix streams (any depth, chunking or residency budget) or sits
    /// on the device in one piece (the non-streamed fused path).
    #[test]
    fn lr_cg_weights_are_bit_identical_across_stream_configs() {
        let x = uniform_sparse(240, 16, 0.2, 202);
        let labels = random_vector(240, 3);
        let opts = LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 8,
        };
        let solve = |cfg: StreamConfig| {
            let g = gpu();
            let mut b = StreamedBackend::new_sparse(&g, &x, TransferModel::native(), cfg);
            let r = try_lr_cg_ckpt(&mut b, &labels, opts, None).unwrap_or_else(|e| panic!("{e}"));
            r.weights
        };
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        // Single chunk, no pipeline: the non-streamed fused path.
        let w_ref = solve(StreamConfig::fixed(240, 1));
        for cfg in [
            StreamConfig::fixed(37, 2),
            StreamConfig::fixed(37, 4)
                .with_queues(2)
                .with_residency(u64::MAX),
            StreamConfig::fixed(64, 3).with_residency(1 << 13),
        ] {
            let w = solve(cfg);
            assert_eq!(bits(&w_ref), bits(&w), "{cfg:?}");
        }

        // And the solution itself is right (CPU reference solve).
        let mut cpu = CpuBackend::new_sparse(x);
        let rc = try_lr_cg_ckpt(&mut cpu, &labels, opts, None).unwrap_or_else(|e| panic!("{e}"));
        assert!(reference::rel_l2_error(&w_ref, &rc.weights) < 1e-9);
    }

    /// A persistent backend fuses across iterations: residency admitted in
    /// iteration k serves iteration k+1, and the solve plans each chunk
    /// shape once, not once per iteration.
    #[test]
    fn solver_iterations_reuse_residency_and_plans() {
        let g = gpu();
        let x = uniform_sparse(500, 24, 0.15, 203);
        let labels = random_vector(500, 4);
        let mut b = StreamedBackend::new_sparse(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(120, 3).with_residency(u64::MAX),
        );
        b.streamer.set_plan_cache(true); // deterministic regardless of global toggle
        let opts = LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 6,
        };
        try_lr_cg_ckpt(&mut b, &labels, opts, None).unwrap_or_else(|e| panic!("{e}"));
        let hits = b.streamer().residency_hits_total();
        let chunks = b.streamer().chunk_count() as u64;
        assert!(
            hits >= chunks,
            "later iterations must stream zero matrix bytes (hits {hits}, chunks {chunks})"
        );
        assert_eq!(
            b.streamer().chunk_plan_stats().plans_computed(),
            2,
            "5 chunks x many iterations, 2 distinct shapes, 2 tuner runs"
        );
        // Copy-engine traffic reflects the reuse: total H2D bytes stay
        // bounded by one cold pass of the matrix plus vector lead-ins.
        let moved = b.streamer().copy_stats().bytes;
        assert!(moved < 2 * x.size_bytes());
    }

    #[test]
    fn backend_releases_device_memory_on_drop() {
        let g = gpu();
        let x = uniform_sparse(300, 32, 0.1, 204);
        let y = random_vector(32, 5);
        let before = g.allocated_bytes();
        {
            let mut b = StreamedBackend::new_sparse(
                &g,
                &x,
                TransferModel::native(),
                StreamConfig::fixed(64, 2).with_residency(u64::MAX),
            );
            let yd = b.from_host("y", &y);
            let mut wd = b.zeros("w", 32);
            b.pattern(PatternSpec::xtxy(), None, &yd, None, &mut wd);
            assert!(b.streamer().resident_bytes() > 0);
            g.free(&yd);
            g.free(&wd);
        }
        assert_eq!(g.allocated_bytes(), before, "backend leaked device bytes");
    }
}
