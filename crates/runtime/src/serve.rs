//! Multi-tenant serving: a deterministic scheduler that runs many
//! concurrent solver sessions (all five solvers plus PageRank, fused or
//! streamed) over a shared [`DevicePool`], with admission control,
//! modeled-time deadlines and per-tenant fault isolation.
//!
//! ## Scheduling model
//!
//! The scheduler plans in **modeled milliseconds only** — no `Instant`,
//! no wall clock — so a serve run is a pure function of its inputs and
//! byte-identical across machines. Requests are processed in arrival
//! order; each admitted request reserves one device slot for the
//! *fault-free estimate* of its workload class on its admitted tier
//! (memoized per `(class, tier)` by actually running the class once on a
//! private fault-free device). Because the estimates, the admission
//! decisions and the deadline checks are all fault-independent, the slot
//! timeline — every co-tenant's start time and reserved window — is
//! bit-identical between a faulted and a fault-free run.
//!
//! ## Blast radius
//!
//! Faults only enter through a tenant's injected [`FaultProfile`], and a
//! faulted attempt's overrun (failed partial attempts, retry backoff,
//! resumed work) accrues on that tenant's *recovery lane*: it extends
//! only the faulted request's completion time and latency, never the
//! slot reservations other tenants schedule against. Recovery reuses the
//! PR-1/6 ladder machinery ([`RecoveryPolicy`], [`RecoveryEvent`],
//! [`LadderError`]) over the serving tier order
//! `Fused -> Streamed -> Cpu`, with one serving-specific twist: a
//! `device-lost` fault — permanent for a single-device session — is
//! retried at the same tier here, because the pool hands the tenant a
//! fresh replacement device (a new `Gpu` with an attempt-salted fault
//! stream). Checkpoint/resume works across all of this: one
//! [`CheckpointHandle`] is shared by every attempt of a request, so a
//! replacement device or a degraded tier resumes from the last good
//! iterate instead of iteration 0.
//!
//! ## Admission control
//!
//! Three typed rejections, no panics, no unbounded growth:
//! [`ServeError::QueueFull`] when a tenant's backlog of admitted-but-not-
//! started requests is at capacity, [`ServeError::QuotaExceeded`] when a
//! request's device-byte footprint exceeds the tenant's quota even on
//! the streamed tier, and [`ServeError::DeadlineExceeded`] when the
//! earliest possible completion would already miss the request's
//! deadline (load shedding: the request consumes no slot time). A
//! request whose *fused* footprint busts the quota but whose *streamed*
//! footprint fits is admitted directly on the streamed tier — quota
//! pressure degrades, it does not reject.

use crate::recovery::{LadderError, RecoveryAction, RecoveryEvent, RecoveryPolicy, RecoveryTier};
use crate::session::FaultCountsReport;
use crate::streamed_backend::StreamedBackend;
use crate::streaming::{StreamConfig, StreamError};
use crate::transfer::TransferModel;
use fusedml_gpu_sim::{DevicePool, DeviceSpec, FaultProfile, Gpu, PoolStats};
use fusedml_matrix::gen::{random_labels, random_vector, uniform_sparse};
use fusedml_matrix::{reference, CsrMatrix};
use fusedml_ml::{
    inv_out_degrees, try_glm_ckpt, try_hits_ckpt, try_logreg_tron_ckpt, try_lr_cg_ckpt,
    try_pagerank_backend_ckpt, try_svm_ckpt, Backend, CheckpointHandle, CpuBackend, FusedBackend,
    GlmOptions, HitsOptions, LrCgOptions, PagerankOptions, SolverError, SvmOptions, TronOptions,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Execution tier of the serving degradation ladder, fastest first.
///
/// Unlike the single-session [`BackendTier`](crate::BackendTier) ladder
/// (`Fused -> Baseline -> Cpu`), the serving ladder degrades through the
/// *streamed* backend: under quota pressure or repeated device faults
/// the matrix stops being device-resident before the work leaves the
/// device entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeTier {
    /// Device-resident matrix, fused single-pass kernels.
    Fused,
    /// Host-resident matrix streamed chunk-by-chunk: a smaller device
    /// footprint and numerically equivalent to Fused, but not bitwise —
    /// chunked accumulation reassociates the reductions. Bit-identity
    /// holds *per tier*: a streamed run always reproduces the streamed
    /// [`clean_run`] exactly.
    Streamed,
    /// Host execution — the tier of last resort; never faults.
    Cpu,
}

impl ServeTier {
    /// The next, more conservative tier; `None` from [`ServeTier::Cpu`].
    pub fn degrade(self) -> Option<ServeTier> {
        match self {
            ServeTier::Fused => Some(ServeTier::Streamed),
            ServeTier::Streamed => Some(ServeTier::Cpu),
            ServeTier::Cpu => None,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ServeTier::Fused => "fused",
            ServeTier::Streamed => "streamed",
            ServeTier::Cpu => "cpu",
        }
    }
}

impl RecoveryTier for ServeTier {
    fn name(&self) -> &'static str {
        ServeTier::name(*self)
    }
}

/// The workload classes the load generator mixes: the paper's five
/// solvers plus PageRank. Each class has a fixed, seeded dataset and a
/// fixed iteration budget (tolerances disabled), so its fault-free cost
/// on a given tier is a constant of the build — which is what lets the
/// scheduler plan on exact estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Linear-regression conjugate gradient (Listing 1).
    LrCg,
    /// GLM via IRLS (Poisson family).
    Glm,
    /// Trust-region logistic regression (TRON).
    Tron,
    /// Primal L2-SVM Newton.
    Svm,
    /// HITS power iteration.
    Hits,
    /// PageRank power iteration (backend-generic entry point).
    Pagerank,
}

impl WorkloadClass {
    /// Every class, in report order.
    pub const ALL: [WorkloadClass; 6] = [
        WorkloadClass::LrCg,
        WorkloadClass::Glm,
        WorkloadClass::Tron,
        WorkloadClass::Svm,
        WorkloadClass::Hits,
        WorkloadClass::Pagerank,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadClass::LrCg => "lr_cg",
            WorkloadClass::Glm => "glm",
            WorkloadClass::Tron => "logreg_tron",
            WorkloadClass::Svm => "svm",
            WorkloadClass::Hits => "hits",
            WorkloadClass::Pagerank => "pagerank",
        }
    }

    /// Inverse of [`WorkloadClass::name`], for report loaders.
    pub fn from_name(name: &str) -> Result<WorkloadClass, String> {
        WorkloadClass::ALL
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| format!("unknown workload class {name:?}"))
    }
}

/// Dataset shapes: small enough that an 8-tenant serve run stays in
/// unit-test territory, large enough that every class does real device
/// work across multiple chunks on the streamed tier.
const ROWS: usize = 160;
const COLS: usize = 24;
const GRAPH: usize = 96;
/// The streamed tier splits the matrix into this many chunks.
const STREAM_CHUNKS: usize = 4;
/// Streamed pipeline depth (chunks in flight).
const STREAM_DEPTH: usize = 2;

/// The fixed dataset of one workload class, generated once per serve run.
struct ClassData {
    x: CsrMatrix,
    /// Labels/targets; empty for the graph classes.
    labels: Vec<f64>,
    /// Reciprocal out-degrees; PageRank only.
    inv_deg: Vec<f64>,
}

impl ClassData {
    fn generate(class: WorkloadClass) -> ClassData {
        let seed = 0xC1A5_5E10 + class as u64;
        match class {
            WorkloadClass::LrCg => {
                let x = uniform_sparse(ROWS, COLS, 0.08, seed);
                let labels = reference::csr_mv(&x, &random_vector(COLS, seed + 1));
                ClassData {
                    x,
                    labels,
                    inv_deg: Vec::new(),
                }
            }
            WorkloadClass::Glm => {
                let x = uniform_sparse(ROWS, COLS, 0.08, seed);
                let labels = reference::csr_mv(&x, &random_vector(COLS, seed + 1))
                    .iter()
                    .map(|&e| e.clamp(-3.0, 3.0).exp())
                    .collect();
                ClassData {
                    x,
                    labels,
                    inv_deg: Vec::new(),
                }
            }
            WorkloadClass::Tron | WorkloadClass::Svm => {
                let x = uniform_sparse(ROWS, COLS, 0.08, seed);
                let labels = random_labels(ROWS, seed + 1);
                ClassData {
                    x,
                    labels,
                    inv_deg: Vec::new(),
                }
            }
            WorkloadClass::Hits => {
                let x = uniform_sparse(GRAPH, GRAPH, 0.06, seed);
                ClassData {
                    x,
                    labels: Vec::new(),
                    inv_deg: Vec::new(),
                }
            }
            WorkloadClass::Pagerank => {
                let x = uniform_sparse(GRAPH, GRAPH, 0.06, seed);
                let inv_deg = inv_out_degrees(&x);
                ClassData {
                    x,
                    labels: Vec::new(),
                    inv_deg,
                }
            }
        }
    }

    /// Device bytes for the solver's vector working set (iterate, search
    /// directions, row-length temporaries) — a modeled quota figure, kept
    /// deliberately simple and deterministic.
    fn aux_bytes(&self) -> u64 {
        (8 * (2 * self.x.rows() + 8 * self.x.cols() + self.labels.len())) as u64
    }

    /// Device footprint with the matrix fully resident (fused tier).
    fn fused_footprint(&self) -> u64 {
        self.x.size_bytes() + self.aux_bytes()
    }

    /// Device footprint on the streamed tier: `STREAM_DEPTH` chunks in
    /// flight plus the vector working set.
    fn streamed_footprint(&self) -> u64 {
        self.x.size_bytes().div_ceil(STREAM_CHUNKS as u64) * STREAM_DEPTH as u64 + self.aux_bytes()
    }

    fn stream_config(&self) -> StreamConfig {
        StreamConfig::fixed(self.x.rows().div_ceil(STREAM_CHUNKS).max(1), STREAM_DEPTH)
    }
}

/// Result of one completed class run: the iterate the blast-radius
/// bit-identity assertions compare (authorities for HITS, ranks for
/// PageRank) plus the iteration count the readback model charges for.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassResult {
    pub weights: Vec<f64>,
    pub iterations: usize,
}

/// One tenant of the serving layer.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Report name; also the trace track id of this tenant's spans.
    pub name: String,
    /// Max admitted-but-not-started requests before `QueueFull`.
    pub queue_capacity: usize,
    /// Device-byte budget one request may occupy. A request whose fused
    /// footprint exceeds this is admitted on the streamed tier; if even
    /// the streamed footprint exceeds it, the request is rejected.
    pub byte_quota: u64,
    /// Fault injection for this tenant's devices (isolation testing).
    pub faults: Option<FaultProfile>,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, queue_capacity: usize, byte_quota: u64) -> Self {
        TenantSpec {
            name: name.into(),
            queue_capacity,
            byte_quota,
            faults: None,
        }
    }

    /// Inject faults into every device attempt of this tenant.
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }
}

/// Knobs for one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Device model backing every slot.
    pub device: DeviceSpec,
    /// Concurrent device slots the scheduler packs requests onto.
    pub slots: usize,
    /// H2D/D2H cost model (memory-manager charges and streamed chunks).
    pub transfer: TransferModel,
    /// Per-kernel-launch dispatch overhead (0 for the native pipeline).
    pub per_launch_overhead_ms: f64,
    /// Retry/degradation/checkpoint policy for the recovery ladder.
    pub policy: RecoveryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            device: DeviceSpec::gtx_titan(),
            slots: 2,
            transfer: TransferModel::native(),
            per_launch_overhead_ms: 0.0,
            policy: RecoveryPolicy {
                checkpoint_every: 2,
                ..RecoveryPolicy::default()
            },
        }
    }
}

/// One request: a tenant asks for a workload class by a deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Index into the tenant slice passed to [`serve`].
    pub tenant: usize,
    pub class: WorkloadClass,
    /// Modeled arrival time (requests may arrive in any order; the
    /// scheduler sorts stably by arrival).
    pub arrival_ms: f64,
    /// Absolute modeled-time deadline; `f64::INFINITY` for none.
    pub deadline_ms: f64,
}

impl ServeRequest {
    /// A request with no deadline.
    pub fn new(tenant: usize, class: WorkloadClass, arrival_ms: f64) -> Self {
        ServeRequest {
            tenant,
            class,
            arrival_ms,
            deadline_ms: f64::INFINITY,
        }
    }

    pub fn with_deadline(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }
}

/// Why the serving layer refused (or failed) a request. Admission-time
/// refusals are *rejections* (the request never held a slot); a
/// [`ServeError::Ladder`] means every usable tier failed at execution
/// time, which with degradation enabled cannot happen (the CPU tier
/// never faults).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Invalid tenants/requests/config — reported before any scheduling.
    Config(String),
    /// The tenant's backlog of waiting requests is at capacity.
    QueueFull { tenant: usize, capacity: usize },
    /// Even the streamed-tier footprint exceeds the tenant's byte quota.
    QuotaExceeded {
        tenant: usize,
        needed_bytes: u64,
        quota_bytes: u64,
    },
    /// The earliest possible completion would already miss the deadline;
    /// the request was shed without consuming slot time.
    DeadlineExceeded {
        tenant: usize,
        deadline_ms: f64,
        projected_ms: f64,
    },
    /// The recovery ladder exhausted every tier (degradation disabled).
    Ladder(LadderError<ServeTier>),
}

impl ServeError {
    /// Stable machine-readable class tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Config(_) => "config",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::QuotaExceeded { .. } => "quota-exceeded",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::Ladder(_) => "ladder-exhausted",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant} queue full (capacity {capacity})")
            }
            ServeError::QuotaExceeded {
                tenant,
                needed_bytes,
                quota_bytes,
            } => write!(
                f,
                "tenant {tenant} quota exceeded: request needs {needed_bytes} B, quota {quota_bytes} B"
            ),
            ServeError::DeadlineExceeded {
                tenant,
                deadline_ms,
                projected_ms,
            } => write!(
                f,
                "tenant {tenant} deadline {deadline_ms} ms infeasible: earliest completion {projected_ms} ms"
            ),
            ServeError::Ladder(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Ladder(e) => Some(e),
            _ => None,
        }
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestStatus {
    Completed {
        /// Tier that produced the result.
        tier: ServeTier,
        /// Tier admission placed the request on (quota decision).
        admitted_tier: ServeTier,
        /// Total attempts across all tiers (1 on a clean run).
        attempts: usize,
        /// Iteration the successful attempt resumed from via checkpoint.
        resumed_at: Option<usize>,
        /// Completed after its deadline (recovery overrun): the miss is
        /// recorded loudly instead of silently.
        missed_deadline: bool,
    },
    /// Refused at admission (queue or quota); never held a slot.
    Rejected { error: ServeError },
    /// Shed at dispatch: the deadline was already infeasible.
    Shed { error: ServeError },
    /// The recovery ladder exhausted every tier.
    Failed { error: ServeError },
}

impl RequestStatus {
    pub fn is_completed(&self) -> bool {
        matches!(self, RequestStatus::Completed { .. })
    }
}

/// Full per-request record, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    pub tenant: usize,
    /// Index of the request in the submitted slice.
    pub seq: usize,
    pub class: WorkloadClass,
    pub arrival_ms: f64,
    pub deadline_ms: f64,
    /// Modeled start time (0 for rejected/shed requests).
    pub start_ms: f64,
    /// Modeled completion time (arrival/decision time when not run).
    pub completion_ms: f64,
    /// `completion - arrival` for completed requests, else 0.
    pub latency_ms: f64,
    pub status: RequestStatus,
    /// Final iterate of the successful attempt (empty otherwise) — the
    /// vector the blast-radius bit-identity assertions compare.
    pub weights: Vec<f64>,
    pub iterations: usize,
    /// Every retry/degradation decision, in order.
    pub events: Vec<RecoveryEvent<ServeTier>>,
    /// Checkpoint-resume trail: the iteration of every resume, in order
    /// (monotone non-decreasing — snapshots only advance).
    pub resumes: Vec<usize>,
    /// Faults injected across all of this request's attempts.
    pub faults: FaultCountsReport,
}

/// Per-tenant rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    pub name: String,
    pub submitted: usize,
    pub completed: usize,
    pub rejected_queue: usize,
    pub rejected_quota: usize,
    pub shed: usize,
    pub failed: usize,
    /// Completed requests that needed the ladder: retries, a degraded
    /// tier, or a checkpoint resume.
    pub recoveries: usize,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: usize,
    /// Largest waiting-queue depth observed at any of this tenant's
    /// arrivals.
    pub max_queue_depth: usize,
    /// Reserved slot time (sum of fault-free estimates of admitted
    /// requests) — fault-independent by construction.
    pub busy_ms: f64,
    /// Total faults injected into this tenant's attempts.
    pub faults_injected: u64,
}

/// What [`serve`] returns: every outcome plus rollups.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One entry per submitted request, in submission order.
    pub outcomes: Vec<RequestOutcome>,
    pub tenants: Vec<TenantSummary>,
    /// Latest modeled completion across all requests.
    pub makespan_ms: f64,
    /// Total reserved slot time across all slots.
    pub slot_busy_ms: f64,
    /// Shared device-pool counters at the end of the run (every request
    /// attempt's device attaches to one [`DevicePool`]).
    pub pool: PoolStats,
}

impl ServeReport {
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status.is_completed())
            .count()
    }

    pub fn rejected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Rejected { .. }))
            .count()
    }

    pub fn shed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Shed { .. }))
            .count()
    }

    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Failed { .. }))
            .count()
    }

    /// Modeled latencies of completed requests, in submission order.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.status.is_completed())
            .map(|o| o.latency_ms)
            .collect()
    }
}

/// A fault-free single-session run of one class on one tier — the
/// reference the blast-radius tests compare a recovered tenant against,
/// and the estimate the scheduler reserves slot time with.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanRun {
    pub class: WorkloadClass,
    pub tier: ServeTier,
    pub weights: Vec<f64>,
    pub iterations: usize,
    /// End-to-end modeled cost: transfers + kernels + readbacks +
    /// dispatch, exactly what one slot reservation charges.
    pub modeled_ms: f64,
}

/// Run `class` on `tier` once, fault-free, on a private device — the
/// single-session reference for a serve run under the same config.
pub fn clean_run(
    class: WorkloadClass,
    tier: ServeTier,
    cfg: &ServeConfig,
) -> Result<CleanRun, ServeError> {
    let data = ClassData::generate(class);
    let ckpt = (cfg.policy.checkpoint_every > 0)
        .then(|| CheckpointHandle::new(cfg.policy.checkpoint_every));
    let gpu =
        (tier != ServeTier::Cpu).then(|| Gpu::new(cfg.device.clone()).with_integrity_checks(true));
    let (res, ms) = run_attempt(gpu.as_ref(), tier, class, &data, cfg, ckpt.as_ref());
    let result = res.map_err(|e| {
        ServeError::Config(format!(
            "fault-free reference run of {} failed: {e}",
            class.name()
        ))
    })?;
    Ok(CleanRun {
        class,
        tier,
        weights: result.weights,
        iterations: result.iterations,
        modeled_ms: ms,
    })
}

/// Drive the class's solver on any backend; fixed iteration budgets
/// (tolerances disabled) keep the cost a constant of `(class, tier)`.
fn run_class<B: Backend>(
    b: &mut B,
    class: WorkloadClass,
    data: &ClassData,
    ckpt: Option<&CheckpointHandle>,
) -> Result<ClassResult, SolverError> {
    match class {
        WorkloadClass::LrCg => try_lr_cg_ckpt(
            b,
            &data.labels,
            LrCgOptions {
                eps: 0.001,
                tolerance: 0.0,
                max_iterations: 8,
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.weights,
            iterations: r.iterations,
        }),
        WorkloadClass::Glm => try_glm_ckpt(
            b,
            &data.labels,
            GlmOptions {
                max_outer: 4,
                max_inner_cg: 6,
                grad_tol: 0.0,
                ..GlmOptions::default()
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.weights,
            iterations: r.iterations,
        }),
        WorkloadClass::Tron => try_logreg_tron_ckpt(
            b,
            &data.labels,
            TronOptions {
                max_outer: 4,
                max_inner_cg: 6,
                grad_tol: 0.0,
                ..TronOptions::default()
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.weights,
            iterations: r.iterations,
        }),
        WorkloadClass::Svm => try_svm_ckpt(
            b,
            &data.labels,
            SvmOptions {
                max_outer: 4,
                max_inner_cg: 6,
                grad_tol: 0.0,
                ..SvmOptions::default()
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.weights,
            iterations: r.iterations,
        }),
        WorkloadClass::Hits => try_hits_ckpt(
            b,
            HitsOptions {
                max_iterations: 6,
                tolerance: 0.0,
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.authorities,
            iterations: r.iterations,
        }),
        WorkloadClass::Pagerank => try_pagerank_backend_ckpt(
            b,
            &data.inv_deg,
            PagerankOptions {
                max_iterations: 8,
                tolerance: 0.0,
                ..PagerankOptions::default()
            },
            ckpt,
        )
        .map(|r| ClassResult {
            weights: r.ranks,
            iterations: r.iterations,
        }),
    }
}

/// Map a streamed-tier setup failure onto the solver error surface:
/// device faults pass through for the ladder to retry/degrade;
/// configuration rejections become deterministic typed breakdowns — the
/// serving layer must never panic on a degrade path.
fn stream_setup_error(e: StreamError) -> SolverError {
    match e {
        StreamError::Device(d) => SolverError::Device(d),
        other => SolverError::breakdown(
            "serve",
            0,
            format!("streamed tier configuration rejected: {other}"),
        ),
    }
}

/// One attempt of `class` on `tier`. Always returns the modeled cost of
/// the attempt — a failed attempt's partial transfers and kernels still
/// spent modeled time on the tenant's recovery lane.
fn run_attempt(
    gpu: Option<&Gpu>,
    tier: ServeTier,
    class: WorkloadClass,
    data: &ClassData,
    cfg: &ServeConfig,
    ckpt: Option<&CheckpointHandle>,
) -> (Result<ClassResult, SolverError>, f64) {
    // The CPU tier: host data, host execution, no transfers or readbacks.
    if tier == ServeTier::Cpu {
        let mut b = if cfg.policy.cpu_fused_threads > 0 {
            CpuBackend::new_sparse(data.x.clone())
                .with_fused_execution(cfg.policy.cpu_fused_threads)
        } else {
            CpuBackend::new_sparse(data.x.clone())
        };
        let res = run_class(&mut b, class, data, ckpt);
        return (res, b.stats().sim_ms);
    }

    let gpu = match gpu {
        Some(g) => g,
        // Device tiers are always handed a device by the ladder; surface
        // the impossible arm as a typed breakdown, not a panic.
        None => {
            return (
                Err(SolverError::breakdown(
                    "serve",
                    0,
                    "device tier without a device",
                )),
                0.0,
            )
        }
    };

    // Charge host->device transfers through the memory manager: the
    // matrix only on the fused tier (the streamed tier pays per chunk
    // inside the pipeline wall), labels on both.
    let mm =
        crate::memman::MemoryManager::new(gpu.spec().global_mem_bytes as u64, cfg.transfer.clone());
    let mut transfer_ms = 0.0;
    if tier == ServeTier::Fused {
        mm.register("X", data.x.size_bytes(), true);
        match mm.ensure_on_device("X") {
            Ok(ms) => transfer_ms += ms,
            Err(e) => {
                return (
                    Err(SolverError::breakdown(
                        "serve",
                        0,
                        format!("matrix exceeds device: {e}"),
                    )),
                    transfer_ms,
                )
            }
        }
    }
    if !data.labels.is_empty() {
        mm.register("labels", (data.labels.len() * 8) as u64, false);
        match mm.ensure_on_device("labels") {
            Ok(ms) => transfer_ms += ms,
            Err(e) => {
                return (
                    Err(SolverError::breakdown(
                        "serve",
                        0,
                        format!("labels exceed device: {e}"),
                    )),
                    transfer_ms,
                )
            }
        }
    }

    let (res, sim_ms, launches) = match tier {
        ServeTier::Fused => match FusedBackend::try_new_sparse(gpu, &data.x) {
            Ok(mut b) => {
                let res = run_class(&mut b, class, data, ckpt);
                let s = b.stats();
                (res, s.sim_ms, s.launches)
            }
            Err(e) => (Err(SolverError::Device(e)), 0.0, 0),
        },
        ServeTier::Streamed => {
            match StreamedBackend::try_new_sparse(
                gpu,
                &data.x,
                cfg.transfer.clone(),
                data.stream_config(),
            ) {
                Ok(mut b) => {
                    let res = run_class(&mut b, class, data, ckpt);
                    let s = b.stats();
                    (res, s.sim_ms, s.launches)
                }
                Err(e) => (Err(stream_setup_error(e)), 0.0, 0),
            }
        }
        ServeTier::Cpu => unreachable!("handled above"),
    };

    // Listing-1-style scalar readbacks (two per iteration plus one) and
    // per-launch dispatch overhead, charged on the iterations the attempt
    // actually completed.
    let iterations = res.as_ref().map(|r| r.iterations).unwrap_or(0);
    let readback_ms = (2 * iterations + 1) as f64 * cfg.transfer.scalar_readback_ms();
    let dispatch_ms = launches as f64 * cfg.per_launch_overhead_ms;
    (res, transfer_ms + sim_ms + readback_ms + dispatch_ms)
}

/// Where a request's ladder landed.
struct LadderRun {
    result: ClassResult,
    tier: ServeTier,
    attempts: usize,
    events: Vec<RecoveryEvent<ServeTier>>,
    /// Attempt durations plus retry backoffs — the recovery-lane time.
    total_ms: f64,
    faults: FaultCountsReport,
}

/// Salt stride separating per-request fault streams; each attempt within
/// a request advances by one (replacement-device semantics).
const ATTEMPT_SALT_STRIDE: usize = 97;

#[allow(clippy::too_many_arguments)]
fn run_ladder(
    pool: &DevicePool,
    tenant: &TenantSpec,
    seq: usize,
    start_tier: ServeTier,
    class: WorkloadClass,
    data: &ClassData,
    cfg: &ServeConfig,
    ckpt: Option<&CheckpointHandle>,
) -> Result<LadderRun, LadderError<ServeTier>> {
    let mut events: Vec<RecoveryEvent<ServeTier>> = Vec::new();
    let mut tier_errors: Vec<(ServeTier, SolverError)> = Vec::new();
    let mut attempts = 0usize;
    let mut total_ms = 0.0f64;
    let mut faults = FaultCountsReport::default();
    let mut tier = start_tier;

    loop {
        let mut tier_attempt = 0usize;
        let error = loop {
            tier_attempt += 1;
            attempts += 1;
            // Fresh device per attempt, attached to the shared pool: a
            // `device-lost` attempt is replaced, not resurrected. The
            // attempt-salted profile gives the replacement its own
            // deterministic fault stream.
            let gpu = (tier != ServeTier::Cpu).then(|| {
                let mut g = Gpu::new(cfg.device.clone())
                    .with_shared_pool(pool)
                    .with_integrity_checks(true);
                if let Some(p) = &tenant.faults {
                    g = g
                        .with_fault_profile(p.for_device(seq * ATTEMPT_SALT_STRIDE + attempts - 1));
                }
                g
            });
            let (res, ms) = run_attempt(gpu.as_ref(), tier, class, data, cfg, ckpt);
            total_ms += ms;
            if let Some(g) = &gpu {
                faults.merge_counts(&g.faults().counts());
            }
            match res {
                Ok(result) => {
                    return Ok(LadderRun {
                        result,
                        tier,
                        attempts,
                        events,
                        total_ms,
                        faults,
                    })
                }
                Err(e) => {
                    // Serving twist: device loss is retried at the same
                    // tier — the pool supplies a replacement device.
                    let retryable = e.is_transient() || e.kind() == "device-lost";
                    if retryable && tier_attempt <= cfg.policy.max_retries {
                        let backoff = cfg.policy.backoff_for(tier_attempt);
                        total_ms += backoff;
                        if fusedml_trace::is_enabled() {
                            fusedml_trace::instant(
                                "serve",
                                "retry",
                                &tenant.name,
                                &[
                                    ("class", class.name().into()),
                                    ("tier", ServeTier::name(tier).into()),
                                    ("attempt", tier_attempt.into()),
                                    ("error", e.kind().into()),
                                    ("backoff_ms", backoff.into()),
                                ],
                            );
                        }
                        events.push(RecoveryEvent {
                            tier,
                            attempt: tier_attempt,
                            error_kind: e.kind().to_string(),
                            detail: e.to_string(),
                            action: RecoveryAction::Retry,
                            backoff_ms: backoff,
                        });
                        continue;
                    }
                    break e;
                }
            }
        };

        match tier.degrade() {
            Some(next) if cfg.policy.allow_degradation => {
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "serve",
                        "degrade",
                        &tenant.name,
                        &[
                            ("class", class.name().into()),
                            ("from", ServeTier::name(tier).into()),
                            ("to", ServeTier::name(next).into()),
                            ("error", error.kind().into()),
                        ],
                    );
                }
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Degrade,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                tier = next;
            }
            _ => {
                events.push(RecoveryEvent {
                    tier,
                    attempt: tier_attempt,
                    error_kind: error.kind().to_string(),
                    detail: error.to_string(),
                    action: RecoveryAction::Abort,
                    backoff_ms: 0.0,
                });
                tier_errors.push((tier, error));
                return Err(LadderError {
                    tier_errors,
                    attempts,
                    events,
                });
            }
        }
    }
}

/// Run a multi-tenant serve: admission, deadline shedding, slot
/// scheduling on fault-free estimates, and per-request recovery ladders
/// over a shared device pool. See the module docs for the determinism
/// and blast-radius rules.
pub fn serve(
    tenants: &[TenantSpec],
    requests: &[ServeRequest],
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    if tenants.is_empty() {
        return Err(ServeError::Config("no tenants".into()));
    }
    if cfg.slots == 0 {
        return Err(ServeError::Config("need at least one device slot".into()));
    }
    if cfg.policy.max_retries > 64 {
        return Err(ServeError::Config(
            "max_retries > 64 is a runaway ladder".into(),
        ));
    }
    for (i, t) in tenants.iter().enumerate() {
        if t.queue_capacity == 0 {
            return Err(ServeError::Config(format!(
                "tenant {i} has queue capacity 0"
            )));
        }
        if t.byte_quota == 0 {
            return Err(ServeError::Config(format!("tenant {i} has byte quota 0")));
        }
    }
    for (i, r) in requests.iter().enumerate() {
        if r.tenant >= tenants.len() {
            return Err(ServeError::Config(format!(
                "request {i} names tenant {} of {}",
                r.tenant,
                tenants.len()
            )));
        }
        if !r.arrival_ms.is_finite() || r.arrival_ms < 0.0 {
            return Err(ServeError::Config(format!(
                "request {i} arrival not finite"
            )));
        }
        if r.deadline_ms.is_nan() {
            return Err(ServeError::Config(format!("request {i} deadline is NaN")));
        }
    }

    let pool = DevicePool::new();
    let mut class_data: HashMap<WorkloadClass, ClassData> = HashMap::new();
    let mut estimates: HashMap<(WorkloadClass, ServeTier), f64> = HashMap::new();

    // Stable arrival order: ties broken by submission index.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival_ms
            .partial_cmp(&requests[b].arrival_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut slot_free = vec![0.0f64; cfg.slots];
    let mut tenant_reserved_free = vec![0.0f64; tenants.len()];
    let mut admitted_starts: Vec<Vec<f64>> = vec![Vec::new(); tenants.len()];
    let mut max_depth = vec![0usize; tenants.len()];
    let mut busy_ms = vec![0.0f64; tenants.len()];
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; requests.len()];

    for &seq in &order {
        let req = &requests[seq];
        let tenant = &tenants[req.tenant];
        let data = class_data
            .entry(req.class)
            .or_insert_with(|| ClassData::generate(req.class));

        let reject = |status: RequestStatus, at: f64| RequestOutcome {
            tenant: req.tenant,
            seq,
            class: req.class,
            arrival_ms: req.arrival_ms,
            deadline_ms: req.deadline_ms,
            start_ms: 0.0,
            completion_ms: at,
            latency_ms: 0.0,
            status,
            weights: Vec::new(),
            iterations: 0,
            events: Vec::new(),
            resumes: Vec::new(),
            faults: FaultCountsReport::default(),
        };

        // Admission 1: bounded queue. Depth = this tenant's admitted
        // requests still waiting (start strictly after this arrival).
        let depth = admitted_starts[req.tenant]
            .iter()
            .filter(|&&s| s > req.arrival_ms)
            .count();
        max_depth[req.tenant] = max_depth[req.tenant].max(depth);
        if depth >= tenant.queue_capacity {
            let err = ServeError::QueueFull {
                tenant: req.tenant,
                capacity: tenant.queue_capacity,
            };
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "serve",
                    "reject",
                    &tenant.name,
                    &[
                        ("class", req.class.name().into()),
                        ("error", err.kind().into()),
                    ],
                );
            }
            outcomes[seq] = Some(reject(
                RequestStatus::Rejected { error: err },
                req.arrival_ms,
            ));
            continue;
        }

        // Admission 2: byte quota picks the tier (quota pressure degrades
        // fused -> streamed before it rejects).
        let admitted_tier = if data.fused_footprint() <= tenant.byte_quota {
            ServeTier::Fused
        } else if data.streamed_footprint() <= tenant.byte_quota {
            ServeTier::Streamed
        } else {
            let err = ServeError::QuotaExceeded {
                tenant: req.tenant,
                needed_bytes: data.streamed_footprint(),
                quota_bytes: tenant.byte_quota,
            };
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "serve",
                    "reject",
                    &tenant.name,
                    &[
                        ("class", req.class.name().into()),
                        ("error", err.kind().into()),
                    ],
                );
            }
            outcomes[seq] = Some(reject(
                RequestStatus::Rejected { error: err },
                req.arrival_ms,
            ));
            continue;
        };

        // Fault-free estimate of the admitted work, memoized per
        // (class, tier): the slot reservation currency.
        let est = match estimates.get(&(req.class, admitted_tier)) {
            Some(&ms) => ms,
            None => {
                let ms = clean_run(req.class, admitted_tier, cfg)?.modeled_ms;
                estimates.insert((req.class, admitted_tier), ms);
                ms
            }
        };

        // Slot plan: earliest-free slot, serialized per tenant on
        // *reserved* windows — all fault-independent.
        let (slot, &free) = slot_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or((0, &0.0));
        let start = req
            .arrival_ms
            .max(tenant_reserved_free[req.tenant])
            .max(free);
        let projected = start + est;

        // Deadline: shed now rather than miss silently later.
        if projected > req.deadline_ms {
            let err = ServeError::DeadlineExceeded {
                tenant: req.tenant,
                deadline_ms: req.deadline_ms,
                projected_ms: projected,
            };
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "serve",
                    "shed",
                    &tenant.name,
                    &[
                        ("class", req.class.name().into()),
                        ("projected_ms", projected.into()),
                    ],
                );
            }
            outcomes[seq] = Some(reject(RequestStatus::Shed { error: err }, req.arrival_ms));
            continue;
        }

        slot_free[slot] = projected;
        tenant_reserved_free[req.tenant] = projected;
        admitted_starts[req.tenant].push(start);
        busy_ms[req.tenant] += est;

        // Execute: the actual run, faults and all. Overrun beyond the
        // estimate lands on this tenant's recovery lane only.
        let ckpt = (cfg.policy.checkpoint_every > 0)
            .then(|| CheckpointHandle::new(cfg.policy.checkpoint_every));
        let run = run_ladder(
            &pool,
            tenant,
            seq,
            admitted_tier,
            req.class,
            data,
            cfg,
            ckpt.as_ref(),
        );
        let outcome = match run {
            Ok(lr) => {
                let completion = start + lr.total_ms;
                let resumed_at = ckpt.as_ref().and_then(|h| h.last_resume());
                let resumes = ckpt.as_ref().map(|h| h.resumes()).unwrap_or_default();
                let recovered = lr.attempts > 1 || lr.tier != admitted_tier;
                let missed = completion > req.deadline_ms;
                if fusedml_trace::is_enabled() {
                    fusedml_trace::sim_span(
                        "serve",
                        req.class.name(),
                        &tenant.name,
                        lr.total_ms,
                        &[
                            ("tier", ServeTier::name(lr.tier).into()),
                            ("attempts", lr.attempts.into()),
                            ("start_ms", start.into()),
                            ("recovered", recovered.into()),
                        ],
                    );
                }
                RequestOutcome {
                    tenant: req.tenant,
                    seq,
                    class: req.class,
                    arrival_ms: req.arrival_ms,
                    deadline_ms: req.deadline_ms,
                    start_ms: start,
                    completion_ms: completion,
                    latency_ms: completion - req.arrival_ms,
                    status: RequestStatus::Completed {
                        tier: lr.tier,
                        admitted_tier,
                        attempts: lr.attempts,
                        resumed_at,
                        missed_deadline: missed,
                    },
                    weights: lr.result.weights,
                    iterations: lr.result.iterations,
                    events: lr.events,
                    resumes,
                    faults: lr.faults,
                }
            }
            Err(ladder) => {
                let events = ladder.events.clone();
                let attempts_time: f64 = 0.0; // ladder time folded below
                let _ = attempts_time;
                let completion = start; // no successful work to charge
                RequestOutcome {
                    tenant: req.tenant,
                    seq,
                    class: req.class,
                    arrival_ms: req.arrival_ms,
                    deadline_ms: req.deadline_ms,
                    start_ms: start,
                    completion_ms: completion,
                    latency_ms: 0.0,
                    status: RequestStatus::Failed {
                        error: ServeError::Ladder(ladder),
                    },
                    weights: Vec::new(),
                    iterations: 0,
                    events,
                    resumes: ckpt.as_ref().map(|h| h.resumes()).unwrap_or_default(),
                    faults: FaultCountsReport::default(),
                }
            }
        };
        outcomes[seq] = Some(outcome);
    }

    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| match o {
            Some(o) => o,
            // Every submitted request gets exactly one outcome above;
            // keep a diagnosable panic for the impossible arm.
            None => unreachable!("request {i} was never scheduled"),
        })
        .collect();

    let tenants_summary = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mine: Vec<&RequestOutcome> = outcomes.iter().filter(|o| o.tenant == i).collect();
            TenantSummary {
                name: t.name.clone(),
                submitted: mine.len(),
                completed: mine.iter().filter(|o| o.status.is_completed()).count(),
                rejected_queue: mine
                    .iter()
                    .filter(|o| matches!(&o.status, RequestStatus::Rejected { error } if error.kind() == "queue-full"))
                    .count(),
                rejected_quota: mine
                    .iter()
                    .filter(|o| matches!(&o.status, RequestStatus::Rejected { error } if error.kind() == "quota-exceeded"))
                    .count(),
                shed: mine
                    .iter()
                    .filter(|o| matches!(o.status, RequestStatus::Shed { .. }))
                    .count(),
                failed: mine
                    .iter()
                    .filter(|o| matches!(o.status, RequestStatus::Failed { .. }))
                    .count(),
                recoveries: mine
                    .iter()
                    .filter(|o| {
                        matches!(
                            &o.status,
                            RequestStatus::Completed { tier, admitted_tier, attempts, resumed_at, .. }
                                if *attempts > 1 || tier != admitted_tier || resumed_at.is_some()
                        )
                    })
                    .count(),
                deadline_misses: mine
                    .iter()
                    .filter(|o| {
                        matches!(&o.status, RequestStatus::Completed { missed_deadline, .. } if *missed_deadline)
                    })
                    .count(),
                max_queue_depth: max_depth[i],
                busy_ms: busy_ms[i],
                faults_injected: mine.iter().map(|o| o.faults.total()).sum(),
            }
        })
        .collect();

    let makespan_ms = outcomes.iter().map(|o| o.completion_ms).fold(0.0, f64::max);
    Ok(ServeReport {
        tenants: tenants_summary,
        makespan_ms,
        slot_busy_ms: busy_ms.iter().sum(),
        pool: pool.stats(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceError;

    fn quiet_cfg() -> ServeConfig {
        ServeConfig {
            policy: RecoveryPolicy {
                checkpoint_every: 2,
                max_retries: 3,
                ..RecoveryPolicy::default()
            },
            ..ServeConfig::default()
        }
    }

    fn big_quota() -> u64 {
        64 * 1024 * 1024
    }

    /// Relative L2 distance between two iterates.
    fn rel_l2(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = b.iter().map(|y| y * y).sum();
        (num / den.max(1e-300)).sqrt()
    }

    #[test]
    fn clean_runs_agree_across_fused_and_streamed() {
        let cfg = quiet_cfg();
        for class in WorkloadClass::ALL {
            let f = clean_run(class, ServeTier::Fused, &cfg).unwrap();
            let s = clean_run(class, ServeTier::Streamed, &cfg).unwrap();
            // The streamer follows the canonical sharded reduction order,
            // so cross-tier agreement is ulp-level, not bitwise; bitwise
            // identity holds per tier (the blast-radius contract).
            assert!(
                rel_l2(&f.weights, &s.weights) < 1e-12,
                "{} fused vs streamed",
                class.name()
            );
            assert!(f.modeled_ms > 0.0);
            assert!(s.modeled_ms > 0.0);
        }
    }

    #[test]
    fn queue_capacity_bounds_the_backlog_with_typed_rejections() {
        let cfg = quiet_cfg();
        let tenants = vec![TenantSpec::new("t0", 1, big_quota())];
        // Three simultaneous arrivals on one slot: the first runs, the
        // second waits (depth 1), the third busts the capacity-1 queue.
        let reqs = vec![
            ServeRequest::new(0, WorkloadClass::LrCg, 0.0),
            ServeRequest::new(0, WorkloadClass::LrCg, 0.0),
            ServeRequest::new(0, WorkloadClass::LrCg, 0.0),
        ];
        let rep = serve(&tenants, &reqs, &cfg).unwrap();
        assert!(rep.outcomes[0].status.is_completed());
        assert!(rep.outcomes[1].status.is_completed());
        match &rep.outcomes[2].status {
            RequestStatus::Rejected { error } => {
                assert_eq!(error.kind(), "queue-full");
            }
            other => panic!("expected queue-full rejection, got {other:?}"),
        }
        assert_eq!(rep.tenants[0].rejected_queue, 1);
        assert!(rep.tenants[0].max_queue_depth >= 1);
    }

    #[test]
    fn quota_degrades_to_streamed_then_rejects() {
        let cfg = quiet_cfg();
        let data = ClassData::generate(WorkloadClass::LrCg);
        let fused = data.fused_footprint();
        let streamed = data.streamed_footprint();
        assert!(streamed < fused, "streaming must shrink the footprint");

        // Quota between the streamed and fused footprints: admitted, but
        // on the streamed tier.
        let tenants = vec![TenantSpec::new("mid", 4, (streamed + fused) / 2)];
        let reqs = vec![ServeRequest::new(0, WorkloadClass::LrCg, 0.0)];
        let rep = serve(&tenants, &reqs, &cfg).unwrap();
        match &rep.outcomes[0].status {
            RequestStatus::Completed {
                tier,
                admitted_tier,
                ..
            } => {
                assert_eq!(*admitted_tier, ServeTier::Streamed);
                assert_eq!(*tier, ServeTier::Streamed);
            }
            other => panic!("expected streamed completion, got {other:?}"),
        }
        // Result bit-identical to the streamed single-session reference.
        let reference = clean_run(WorkloadClass::LrCg, ServeTier::Streamed, &cfg).unwrap();
        assert_eq!(rep.outcomes[0].weights, reference.weights);

        // Quota below even the streamed footprint: typed rejection.
        let tenants = vec![TenantSpec::new("tiny", 4, streamed - 1)];
        let rep = serve(&tenants, &reqs, &cfg).unwrap();
        match &rep.outcomes[0].status {
            RequestStatus::Rejected { error } => {
                assert_eq!(error.kind(), "quota-exceeded");
                assert!(matches!(
                    error,
                    ServeError::QuotaExceeded { needed_bytes, quota_bytes, .. }
                        if *needed_bytes == streamed && *quota_bytes == streamed - 1
                ));
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_deadlines_shed_instead_of_queueing() {
        let mut cfg = quiet_cfg();
        cfg.slots = 1;
        let est = clean_run(WorkloadClass::Hits, ServeTier::Fused, &cfg)
            .unwrap()
            .modeled_ms;
        let tenants = vec![TenantSpec::new("t0", 8, big_quota())];
        let reqs = vec![
            ServeRequest::new(0, WorkloadClass::Hits, 0.0),
            // Arrives while the slot is busy; deadline shorter than one
            // run: provably infeasible, shed at dispatch.
            ServeRequest::new(0, WorkloadClass::Hits, 0.0).with_deadline(est * 1.5),
            // Generous deadline: runs after the first.
            ServeRequest::new(0, WorkloadClass::Hits, 0.0).with_deadline(est * 10.0),
        ];
        let rep = serve(&tenants, &reqs, &cfg).unwrap();
        assert!(rep.outcomes[0].status.is_completed());
        match &rep.outcomes[1].status {
            RequestStatus::Shed { error } => {
                assert_eq!(error.kind(), "deadline-exceeded");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert!(rep.outcomes[2].status.is_completed());
        assert_eq!(rep.shed(), 1);
        // Shedding consumed no slot time: completed requests are
        // back-to-back.
        assert_eq!(rep.outcomes[2].start_ms, est);
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = quiet_cfg();
        let tenants: Vec<TenantSpec> = (0..3)
            .map(|i| {
                let t = TenantSpec::new(format!("t{i}"), 4, big_quota());
                if i == 1 {
                    t.with_faults(FaultProfile::seeded(7).with_kernel_fault_rate(0.02))
                } else {
                    t
                }
            })
            .collect();
        let reqs: Vec<ServeRequest> = (0..6)
            .map(|i| ServeRequest::new(i % 3, WorkloadClass::ALL[i % 6], i as f64 * 3.0))
            .collect();
        let a = serve(&tenants, &reqs, &cfg).unwrap();
        let b = serve(&tenants, &reqs, &cfg).unwrap();
        assert_eq!(a, b);
    }

    /// The acceptance-criteria blast-radius test: device loss in one
    /// tenant of eight; that tenant recovers from checkpoint with a
    /// bit-identical result, and every co-tenant's modeled latency is
    /// bit-identical to the fault-free serve run.
    #[test]
    fn device_loss_blast_radius_is_contained() {
        let cfg = quiet_cfg();
        let faulted = 3usize;
        let tenants: Vec<TenantSpec> = (0..8)
            .map(|i| TenantSpec::new(format!("tenant{i}"), 4, big_quota()))
            .collect();
        // Tenant 3 runs LR-CG (8 iterations, checkpoints every 2) — the
        // class where a mid-solve loss exercises resume.
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| {
                let class = if i == faulted {
                    WorkloadClass::LrCg
                } else {
                    WorkloadClass::ALL[i % 6]
                };
                ServeRequest::new(i, class, i as f64 * 2.0)
            })
            .collect();

        let base = serve(&tenants, &reqs, &cfg).unwrap();
        assert_eq!(base.completed(), 8);

        // Find a seed where the loss fires mid-solve (past the first
        // checkpoint) and the replacement-device retry completes on the
        // fused tier.
        let mut hit = None;
        for seed in 0..200u64 {
            let mut faulty = tenants.clone();
            faulty[faulted] = faulty[faulted]
                .clone()
                .with_faults(FaultProfile::seeded(seed).with_device_loss_rate(0.03));
            let rep = serve(&faulty, &reqs, &cfg).unwrap();
            let o = &rep.outcomes[faulted];
            if let RequestStatus::Completed {
                tier,
                attempts,
                resumed_at,
                ..
            } = &o.status
            {
                if *tier == ServeTier::Fused && *attempts > 1 && resumed_at.unwrap_or(0) > 0 {
                    hit = Some((seed, rep));
                    break;
                }
            }
        }
        let (seed, rep) = hit.expect("no seed in 0..200 produced a mid-solve device loss");

        let o = &rep.outcomes[faulted];
        // The faulted tenant recovered: injected losses, a resume, and a
        // result bit-identical to its fault-free single-session run.
        assert!(o.faults.device_losses > 0, "seed {seed} injected no loss");
        assert!(!o.resumes.is_empty());
        let reference = clean_run(WorkloadClass::LrCg, ServeTier::Fused, &cfg).unwrap();
        assert_eq!(
            o.weights, reference.weights,
            "recovered result must be bit-identical"
        );
        assert_eq!(o.weights, base.outcomes[faulted].weights);
        // Recovery cost real time: the faulted request's latency grew.
        assert!(o.latency_ms > base.outcomes[faulted].latency_ms);

        // Blast radius: every co-tenant's schedule and modeled latency is
        // bit-identical to the fault-free run, and none saw an error.
        for i in 0..8 {
            if i == faulted {
                continue;
            }
            let (b, f) = (&base.outcomes[i], &rep.outcomes[i]);
            assert_eq!(
                b.start_ms.to_bits(),
                f.start_ms.to_bits(),
                "tenant {i} start"
            );
            assert_eq!(
                b.latency_ms.to_bits(),
                f.latency_ms.to_bits(),
                "tenant {i} latency perturbed by tenant {faulted}'s fault"
            );
            assert_eq!(b.weights, f.weights, "tenant {i} result");
            assert_eq!(f.faults.total(), 0, "tenant {i} saw injected faults");
            assert!(f.events.is_empty(), "tenant {i} took recovery actions");
        }
        assert_eq!(rep.tenants[faulted].recoveries, 1);
    }

    /// Satellite: ladder trails under repeated degrade+resume cycles —
    /// the resume trail is monotone non-decreasing across tiers.
    #[test]
    fn resume_trail_is_monotone_across_degrade_cycles() {
        let mut cfg = quiet_cfg();
        cfg.policy.max_retries = 2;
        let reqs = vec![ServeRequest::new(0, WorkloadClass::LrCg, 0.0)];
        let mut checked = false;
        for seed in 0..200u64 {
            let tenants = vec![TenantSpec::new("t0", 2, big_quota())
                .with_faults(FaultProfile::seeded(seed).with_kernel_fault_rate(0.05))];
            let rep = serve(&tenants, &reqs, &cfg).unwrap();
            let o = &rep.outcomes[0];
            if o.resumes.len() >= 2 {
                assert!(
                    o.resumes.windows(2).all(|w| w[0] <= w[1]),
                    "resume trail went backwards: {:?} (seed {seed})",
                    o.resumes
                );
                // The run degraded or retried at least that many times.
                assert!(o.events.len() >= o.resumes.len());
                checked = true;
                break;
            }
        }
        assert!(checked, "no seed produced >= 2 resumes");
    }

    /// Satellite: `LadderError` Display names every attempted tier
    /// exactly once, in ladder order.
    #[test]
    fn ladder_error_display_names_each_tier_once() {
        let dev = |k: &str| -> SolverError {
            SolverError::Device(DeviceError::TransientFault {
                kernel: k.into(),
                fault_index: 1,
            })
        };
        let err = LadderError::<ServeTier> {
            tier_errors: vec![
                (ServeTier::Fused, dev("csrmv")),
                (ServeTier::Streamed, dev("chunk")),
                (
                    ServeTier::Cpu,
                    SolverError::breakdown("lr_cg", 3, "nr2 is NaN"),
                ),
            ],
            attempts: 7,
            events: Vec::new(),
        };
        let s = err.to_string();
        assert!(s.starts_with("recovery ladder exhausted after 7 attempts"));
        for tier in ["fused tier:", "streamed tier:", "cpu tier:"] {
            assert_eq!(
                s.matches(tier).count(),
                1,
                "{tier:?} should appear exactly once in {s:?}"
            );
        }
        let f = s.find("fused tier:").unwrap();
        let st = s.find("streamed tier:").unwrap();
        let c = s.find("cpu tier:").unwrap();
        assert!(f < st && st < c, "tiers out of ladder order: {s}");
    }

    /// Satellite: streamed-tier misconfiguration surfaces as a typed
    /// error on the solver surface, never a panic.
    #[test]
    fn streamed_setup_failures_are_typed() {
        let e = stream_setup_error(StreamError::InvalidChunk);
        assert_eq!(e.kind(), "numerical-breakdown");
        assert!(!e.is_transient());
        let d = stream_setup_error(StreamError::Device(DeviceError::DeviceLost {
            device: 0,
            fault_index: 2,
        }));
        assert_eq!(d.kind(), "device-lost");
    }

    #[test]
    fn ladder_abort_without_degradation_is_a_typed_failure() {
        let mut cfg = quiet_cfg();
        cfg.policy.allow_degradation = false;
        cfg.policy.max_retries = 0;
        // Kernel faults on every launch: the fused tier cannot finish,
        // and with degradation off the ladder aborts with a typed error.
        let tenants = vec![TenantSpec::new("t0", 2, big_quota())
            .with_faults(FaultProfile::seeded(1).with_kernel_fault_rate(1.0))];
        let reqs = vec![ServeRequest::new(0, WorkloadClass::LrCg, 0.0)];
        let rep = serve(&tenants, &reqs, &cfg).unwrap();
        match &rep.outcomes[0].status {
            RequestStatus::Failed { error } => {
                assert_eq!(error.kind(), "ladder-exhausted");
                assert!(error.to_string().contains("fused tier:"));
            }
            other => panic!("expected ladder failure, got {other:?}"),
        }
        assert_eq!(rep.tenants[0].failed, 1);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let cfg = quiet_cfg();
        let t = vec![TenantSpec::new("t0", 2, big_quota())];
        assert_eq!(serve(&[], &[], &cfg).unwrap_err().kind(), "config");
        assert_eq!(
            serve(&t, &[ServeRequest::new(5, WorkloadClass::LrCg, 0.0)], &cfg)
                .unwrap_err()
                .kind(),
            "config"
        );
        let mut bad = cfg.clone();
        bad.slots = 0;
        assert_eq!(serve(&t, &[], &bad).unwrap_err().kind(), "config");
        assert_eq!(
            serve(&[TenantSpec::new("z", 0, 1)], &[], &cfg)
                .unwrap_err()
                .kind(),
            "config"
        );
    }
}
