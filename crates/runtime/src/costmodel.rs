//! Host-vs-device operator placement — the cost model component of the
//! SystemML integration (§4.4: "a cost model that helps in scheduling
//! operations between the host and the device").
//!
//! For an iterative algorithm the decision is: does the device's
//! per-iteration compute saving amortize the one-time transfer (plus
//! conversion) of the operands? The paper's conclusion section flags this
//! hybrid-execution question as the system's core future work; this module
//! implements the simple break-even analysis.

use crate::transfer::TransferModel;
use fusedml_gpu_sim::CpuSpec;
use serde::{Deserialize, Serialize};

/// Where an operation should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    Host,
    Device,
}

/// Break-even analysis result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    pub placement: Placement,
    /// Estimated total host milliseconds for the full loop.
    pub host_ms: f64,
    /// Estimated total device milliseconds (compute + transfers).
    pub device_ms: f64,
    /// Iterations needed for the device to break even (`None` when the
    /// device never wins, e.g. per-iteration device time exceeds host).
    pub break_even_iterations: Option<f64>,
}

/// The cost model: CPU roofline + transfer model + a device-time estimate
/// supplied by the caller (from the simulator's own measurements or the
/// analytical kernel model).
#[derive(Debug, Clone)]
pub struct CostModel {
    pub cpu: CpuSpec,
    pub transfer: TransferModel,
}

impl CostModel {
    pub fn new(cpu: CpuSpec, transfer: TransferModel) -> Self {
        CostModel { cpu, transfer }
    }

    /// Decide placement for an iterative pattern workload.
    ///
    /// * `matrix_bytes` — operand transferred once (plus conversion);
    /// * `per_iter_device_ms` — device compute per iteration;
    /// * `per_iter_host_ms` — host compute per iteration;
    /// * `per_iter_readbacks` — scalars crossing back per iteration;
    /// * `iterations` — expected loop count.
    pub fn place_iterative(
        &self,
        matrix_bytes: u64,
        convert: bool,
        per_iter_device_ms: f64,
        per_iter_host_ms: f64,
        per_iter_readbacks: usize,
        iterations: usize,
    ) -> PlacementDecision {
        let transfer_ms = self.transfer.h2d_ms(matrix_bytes, convert);
        let readback_ms = per_iter_readbacks as f64 * self.transfer.scalar_readback_ms();
        let device_ms = transfer_ms + iterations as f64 * (per_iter_device_ms + readback_ms);
        let host_ms = iterations as f64 * per_iter_host_ms;

        let per_iter_saving = per_iter_host_ms - (per_iter_device_ms + readback_ms);
        let break_even = if per_iter_saving > 0.0 {
            Some(transfer_ms / per_iter_saving)
        } else {
            None
        };

        PlacementDecision {
            placement: if device_ms < host_ms {
                Placement::Device
            } else {
                Placement::Host
            },
            host_ms,
            device_ms,
            break_even_iterations: break_even,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(CpuSpec::core_i7_8threads(), TransferModel::native())
    }

    #[test]
    fn many_iterations_amortize_transfer() {
        let m = model();
        // 1 GB matrix, device iteration 10x faster than host.
        let d = m.place_iterative(1_000_000_000, false, 1.0, 10.0, 2, 100);
        assert_eq!(d.placement, Placement::Device);
        let be = d.break_even_iterations.unwrap();
        assert!(be > 1.0 && be < 100.0, "break-even {be}");
    }

    #[test]
    fn single_iteration_stays_on_host() {
        let m = model();
        let d = m.place_iterative(1_000_000_000, false, 1.0, 10.0, 2, 1);
        assert_eq!(d.placement, Placement::Host);
    }

    #[test]
    fn device_never_wins_when_slower_per_iteration() {
        let m = model();
        let d = m.place_iterative(1_000_000, false, 20.0, 10.0, 0, 1000);
        assert_eq!(d.placement, Placement::Host);
        assert!(d.break_even_iterations.is_none());
    }

    #[test]
    fn conversion_overhead_shifts_break_even() {
        let native = CostModel::new(CpuSpec::core_i7_8threads(), TransferModel::native());
        let sysml = CostModel::new(CpuSpec::core_i7_8threads(), TransferModel::systemml());
        let n = native.place_iterative(2_000_000_000, true, 1.0, 5.0, 2, 50);
        let s = sysml.place_iterative(2_000_000_000, true, 1.0, 5.0, 2, 50);
        assert!(s.break_even_iterations.unwrap() > 1.5 * n.break_even_iterations.unwrap());
    }
}
