//! End-to-end execution sessions: the machinery behind the paper's
//! Table 5 (hand-written CUDA pipeline vs pure library pipeline, PCIe
//! included) and Table 6 (the same workload inside the SystemML-like
//! runtime with JNI, format conversion and per-instruction dispatch
//! overheads).

use crate::memman::MemoryManager;
use crate::recovery::{
    run_lr_cg_with_recovery, BackendTier, LadderError, RecoveryEvent, RecoveryPolicy,
};
use crate::shard_recovery::{run_lr_cg_sharded_with_recovery, ShardTier};
use crate::transfer::TransferModel;
use fusedml_gpu_sim::{AggregationBreakdown, Counters, DeviceGroup, Gpu};
use fusedml_matrix::{CsrMatrix, DenseMatrix};
use fusedml_ml::ops::TransposePolicy;
use fusedml_ml::{lr_cg, Backend, BaselineBackend, CpuBackend, FusedBackend, LrCgOptions};
use serde::{Deserialize, Serialize};

/// The data set a session runs over.
pub enum DataSet {
    Sparse(CsrMatrix),
    Dense(DenseMatrix),
}

impl DataSet {
    /// Device byte footprint of the matrix.
    pub fn matrix_bytes(&self) -> u64 {
        match self {
            DataSet::Sparse(x) => x.size_bytes(),
            DataSet::Dense(x) => x.size_bytes(),
        }
    }

    pub fn rows(&self) -> usize {
        match self {
            DataSet::Sparse(x) => x.rows(),
            DataSet::Dense(x) => x.rows(),
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            DataSet::Sparse(x) => x.cols(),
            DataSet::Dense(x) => x.cols(),
        }
    }

    /// Sparse matrices change format on the way into the device in the
    /// SystemML regime (sparse rows -> CSR).
    pub fn needs_conversion(&self) -> bool {
        matches!(self, DataSet::Sparse(_))
    }
}

/// Which GPU pipeline executes the pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The paper's fused kernels (`ours-end2end`).
    Fused,
    /// Pure cuBLAS/cuSPARSE composition (`cu-end2end`).
    Baseline,
}

/// Knobs for one end-to-end run.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub engine: EngineKind,
    pub iterations: usize,
    pub transfer: TransferModel,
    /// Per-kernel-launch runtime dispatch overhead (JVM instruction
    /// interpretation in the SystemML regime; 0 for the native pipeline).
    pub per_launch_overhead_ms: f64,
    /// How the baseline engine handles transposed products (ignored by
    /// the fused engine).
    pub transpose_policy: TransposePolicy,
}

impl SessionConfig {
    /// Table 5 regime: native pipeline, raw PCIe.
    pub fn native(engine: EngineKind, iterations: usize) -> Self {
        SessionConfig {
            engine,
            iterations,
            transfer: TransferModel::native(),
            per_launch_overhead_ms: 0.0,
            transpose_policy: TransposePolicy::PerCall,
        }
    }

    /// Table 6 regime: SystemML integration overheads.
    pub fn systemml(engine: EngineKind, iterations: usize) -> Self {
        SessionConfig {
            engine,
            iterations,
            transfer: TransferModel::systemml(),
            per_launch_overhead_ms: 0.02,
            transpose_policy: TransposePolicy::PerCall,
        }
    }

    /// Override the baseline's transposed-product strategy.
    pub fn with_transpose_policy(mut self, policy: TransposePolicy) -> Self {
        self.transpose_policy = policy;
        self
    }
}

/// Cost breakdown of one end-to-end LR-CG run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEndReport {
    /// Simulated kernel compute milliseconds.
    pub kernel_ms: f64,
    /// One-time H2D transfers (matrix + labels), incl. conversion.
    pub transfer_ms: f64,
    /// Scalar readbacks across the loop (CG's dot / nrm2 results).
    pub readback_ms: f64,
    /// Runtime dispatch overhead (Table 6 regime).
    pub dispatch_ms: f64,
    pub total_ms: f64,
    pub launches: usize,
    pub iterations: usize,
    /// Hardware event counters merged over every kernel launch of the run
    /// (all-zero on the CPU tier). For extrapolated reports these cover
    /// only the iterations actually simulated — see
    /// [`run_device_extrapolated`].
    pub counters: Counters,
}

impl EndToEndReport {
    /// Reduction-tier breakdown (register/shuffle vs. shared vs.
    /// global-atomic) of the run's kernels — the attribution axis of the
    /// benchmark reports.
    pub fn aggregation_breakdown(&self) -> AggregationBreakdown {
        self.counters.aggregation_breakdown()
    }
}

/// Run LR-CG end to end on the device, charging transfers through the
/// memory manager. Iteration count is fixed (tolerance disabled), matching
/// the paper's 100 (KDD) / 32 (HIGGS) iteration setups.
pub fn run_device(
    gpu: &Gpu,
    data: &DataSet,
    labels: &[f64],
    cfg: &SessionConfig,
) -> EndToEndReport {
    let mut session_span = fusedml_trace::wall_span("session", "run_device", "host");
    session_span.arg(
        "engine",
        match cfg.engine {
            EngineKind::Fused => "fused",
            EngineKind::Baseline => "baseline",
        },
    );
    session_span.arg("rows", data.rows());
    session_span.arg("cols", data.cols());
    session_span.arg("iterations", cfg.iterations);

    let upload_span = fusedml_trace::wall_span("session", "phase.upload", "host");
    let mm = MemoryManager::new(gpu.spec().global_mem_bytes as u64, cfg.transfer.clone());
    mm.register("X", data.matrix_bytes(), data.needs_conversion());
    mm.register("labels", (labels.len() * 8) as u64, false);
    let mut transfer_ms = mm
        .ensure_on_device("X")
        .unwrap_or_else(|e| panic!("matrix must fit the device: {e}"));
    transfer_ms += mm
        .ensure_on_device("labels")
        .unwrap_or_else(|e| panic!("labels must fit the device: {e}"));
    mm.pin("X");
    drop(upload_span);

    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 0.0, // run exactly `iterations` steps
        max_iterations: cfg.iterations,
    };

    let solve_span = fusedml_trace::wall_span("session", "phase.solve", "host");
    let (kernel_ms, launches, iterations, counters) = match (cfg.engine, data) {
        (EngineKind::Fused, DataSet::Sparse(x)) => {
            let mut b = FusedBackend::new_sparse(gpu, x);
            let r = lr_cg(&mut b, labels, opts);
            let s = b.stats();
            (s.sim_ms, s.launches, r.iterations, s.counters)
        }
        (EngineKind::Fused, DataSet::Dense(x)) => {
            let mut b = FusedBackend::new_dense(gpu, x);
            let r = lr_cg(&mut b, labels, opts);
            let s = b.stats();
            (s.sim_ms, s.launches, r.iterations, s.counters)
        }
        (EngineKind::Baseline, DataSet::Sparse(x)) => {
            let mut b =
                BaselineBackend::new_sparse(gpu, x).with_transpose_policy(cfg.transpose_policy);
            let r = lr_cg(&mut b, labels, opts);
            let s = b.stats();
            (s.sim_ms, s.launches, r.iterations, s.counters)
        }
        (EngineKind::Baseline, DataSet::Dense(x)) => {
            let mut b = BaselineBackend::new_dense(gpu, x);
            let r = lr_cg(&mut b, labels, opts);
            let s = b.stats();
            (s.sim_ms, s.launches, r.iterations, s.counters)
        }
    };
    drop(solve_span);

    // Listing 1 reads back two scalars per iteration (alpha's dot, the
    // convergence nr2) plus the initial nr2.
    let readback_ms = (2 * iterations + 1) as f64 * cfg.transfer.scalar_readback_ms();
    let dispatch_ms = launches as f64 * cfg.per_launch_overhead_ms;
    if fusedml_trace::is_enabled() {
        fusedml_trace::instant(
            "session",
            "phase.account",
            "host",
            &[
                ("kernel_ms", kernel_ms.into()),
                ("transfer_ms", transfer_ms.into()),
                ("readback_ms", readback_ms.into()),
                ("dispatch_ms", dispatch_ms.into()),
                ("launches", launches.into()),
            ],
        );
    }

    EndToEndReport {
        kernel_ms,
        transfer_ms,
        readback_ms,
        dispatch_ms,
        total_ms: kernel_ms + transfer_ms + readback_ms + dispatch_ms,
        launches,
        iterations,
        counters,
    }
}

/// Injected-fault tally of one session (copied from the device's
/// [`FaultInjector`](fusedml_gpu_sim::FaultInjector) after the run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCountsReport {
    pub kernel_faults: u64,
    pub alloc_faults: u64,
    pub transfer_timeouts: u64,
    pub watchdog_timeouts: u64,
    /// Silent bit flips injected into device buffers.
    pub corruptions: u64,
    /// Allocations rejected by the memory-pressure reserve.
    pub pressure_rejections: u64,
    /// Whole-device losses (multi-device sessions; 0 on one device unless
    /// injected). `serde(default)` keeps reports from before the
    /// multi-device fault classes loadable.
    #[serde(default)]
    pub device_losses: u64,
    /// Straggler slowdowns injected (timing-only faults).
    #[serde(default)]
    pub stragglers: u64,
}

/// [`EndToEndReport`] plus the recovery trail: which tier completed the
/// run, every retry/degradation decision taken to get there, and the
/// faults the device injected along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTolerantReport {
    /// Cost breakdown of the successful attempt (failed attempts' partial
    /// compute still advanced the simulated device clock but is not
    /// itemized here).
    pub report: EndToEndReport,
    /// Tier that completed the run.
    pub tier: BackendTier,
    /// Total attempts across all tiers (1 on a clean run).
    pub attempts: usize,
    /// Simulated milliseconds spent backing off before retries.
    pub retry_backoff_ms: f64,
    /// Every retry/degradation decision, in order (empty on a clean run).
    pub events: Vec<RecoveryEvent>,
    /// Learned weights of the successful attempt.
    pub weights: Vec<f64>,
    /// Final squared residual norm.
    pub final_nr2: f64,
    /// CG restarts taken inside the successful attempt.
    pub restarts: usize,
    /// Iteration the successful attempt resumed from via a solver
    /// checkpoint (`None` when checkpointing was off or no attempt
    /// failed past the first snapshot).
    pub resumed_at: Option<usize>,
    /// Faults injected over the whole session (all attempts).
    pub faults: FaultCountsReport,
}

/// Run LR-CG end to end under a [`RecoveryPolicy`]: start on the fused
/// tier, retry transient faults with backoff, and degrade
/// `Fused -> Baseline -> Cpu` when a tier cannot complete. `cfg.engine`
/// is ignored — the ladder always starts at [`BackendTier::Fused`].
///
/// With `policy.allow_degradation` set (the default) this always
/// succeeds, because the CPU tier cannot fault; `Err` is only possible
/// when degradation is disabled.
pub fn run_device_fault_tolerant(
    gpu: &Gpu,
    data: &DataSet,
    labels: &[f64],
    cfg: &SessionConfig,
    policy: &RecoveryPolicy,
) -> Result<FaultTolerantReport, LadderError> {
    let mut session_span = fusedml_trace::wall_span("session", "run_device_fault_tolerant", "host");
    session_span.arg("rows", data.rows());
    session_span.arg("cols", data.cols());
    session_span.arg("iterations", cfg.iterations);

    let upload_span = fusedml_trace::wall_span("session", "phase.upload", "host");
    let mm = MemoryManager::new(gpu.spec().global_mem_bytes as u64, cfg.transfer.clone());
    mm.register("X", data.matrix_bytes(), data.needs_conversion());
    mm.register("labels", (labels.len() * 8) as u64, false);
    let mut transfer_ms = mm
        .ensure_on_device("X")
        .unwrap_or_else(|e| panic!("matrix must fit the device: {e}"));
    transfer_ms += mm
        .ensure_on_device("labels")
        .unwrap_or_else(|e| panic!("labels must fit the device: {e}"));
    mm.pin("X");
    drop(upload_span);

    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 0.0, // run exactly `iterations` steps
        max_iterations: cfg.iterations,
    };

    let solve_span = fusedml_trace::wall_span("session", "phase.solve", "host");
    let outcome = run_lr_cg_with_recovery(gpu, data, labels, opts, cfg.transpose_policy, policy)?;
    drop(solve_span);
    session_span.arg("tier", outcome.tier.name());
    session_span.arg("attempts", outcome.attempts);
    if let Some(it) = outcome.resumed_at {
        session_span.arg("resumed_at", it);
    }

    let kernel_ms = outcome.stats.sim_ms;
    let launches = outcome.stats.launches;
    let iterations = outcome.result.iterations;
    // Scalar readbacks and dispatch overhead only apply to device tiers.
    let (readback_ms, dispatch_ms) = if outcome.tier == BackendTier::Cpu {
        (0.0, 0.0)
    } else {
        (
            (2 * iterations + 1) as f64 * cfg.transfer.scalar_readback_ms(),
            launches as f64 * cfg.per_launch_overhead_ms,
        )
    };

    let counts = gpu.faults().counts();
    Ok(FaultTolerantReport {
        report: EndToEndReport {
            kernel_ms,
            transfer_ms,
            readback_ms,
            dispatch_ms,
            total_ms: kernel_ms + transfer_ms + readback_ms + dispatch_ms,
            launches,
            iterations,
            counters: outcome.stats.counters.clone(),
        },
        tier: outcome.tier,
        attempts: outcome.attempts,
        retry_backoff_ms: outcome.retry_backoff_ms,
        events: outcome.events,
        weights: outcome.result.weights,
        final_nr2: outcome.result.final_nr2,
        restarts: outcome.result.restarts,
        resumed_at: outcome.resumed_at,
        faults: FaultCountsReport::from_counts(&counts),
    })
}

impl FaultCountsReport {
    /// Copy the injector tally into the serializable report form.
    pub fn from_counts(counts: &fusedml_gpu_sim::FaultCounts) -> Self {
        FaultCountsReport {
            kernel_faults: counts.kernel_faults,
            alloc_faults: counts.alloc_faults,
            transfer_timeouts: counts.transfer_timeouts,
            watchdog_timeouts: counts.watchdog_timeouts,
            corruptions: counts.corruptions,
            pressure_rejections: counts.pressure_rejections,
            device_losses: counts.device_losses,
            stragglers: counts.stragglers,
        }
    }

    /// Accumulate an injector tally into this report — the serving layer
    /// sums faults across a request's retry attempts, each of which runs
    /// on its own (replacement) device.
    pub fn merge_counts(&mut self, counts: &fusedml_gpu_sim::FaultCounts) {
        self.kernel_faults += counts.kernel_faults;
        self.alloc_faults += counts.alloc_faults;
        self.transfer_timeouts += counts.transfer_timeouts;
        self.watchdog_timeouts += counts.watchdog_timeouts;
        self.corruptions += counts.corruptions;
        self.pressure_rejections += counts.pressure_rejections;
        self.device_losses += counts.device_losses;
        self.stragglers += counts.stragglers;
    }

    /// Total injected faults across every class.
    pub fn total(&self) -> u64 {
        self.kernel_faults
            + self.alloc_faults
            + self.transfer_timeouts
            + self.watchdog_timeouts
            + self.corruptions
            + self.pressure_rejections
            + self.device_losses
            + self.stragglers
    }
}

/// [`FaultTolerantReport`]'s multi-device sibling: the shard-ladder trail
/// plus the group facts (device count, interconnect profile and traffic,
/// straggler policy outcomes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedSessionReport {
    /// Cost breakdown of the successful attempt. `kernel_ms` is modelled
    /// wall time: max across concurrent shards per step, plus
    /// interconnect transfers.
    pub report: EndToEndReport,
    /// Shard-ladder tier that completed the run.
    pub tier: ShardTier,
    /// Total attempts across all tiers (1 on a clean run).
    pub attempts: usize,
    /// Simulated milliseconds spent backing off before retries.
    pub retry_backoff_ms: f64,
    /// Every retry/degradation decision, in order.
    pub events: Vec<RecoveryEvent<ShardTier>>,
    /// Learned weights of the successful attempt.
    pub weights: Vec<f64>,
    /// Final squared residual norm.
    pub final_nr2: f64,
    /// CG restarts taken inside the successful attempt.
    pub restarts: usize,
    /// Iteration the successful attempt resumed from via a solver
    /// checkpoint.
    pub resumed_at: Option<usize>,
    /// Devices in the group (alive or lost).
    pub device_count: usize,
    /// Devices holding a shard in the successful attempt (0 on CPU).
    pub devices_used: usize,
    /// Stable interconnect profile name ("pcie-gen3-x16", "nvlink2").
    pub interconnect: String,
    /// Device-to-device transfers over the whole session.
    pub interconnect_transfers: u64,
    /// Bytes moved across the fabric.
    pub interconnect_bytes: u64,
    /// Modelled interconnect milliseconds.
    pub interconnect_ms: f64,
    /// Shards that missed the straggler deadline.
    pub stragglers_detected: usize,
    /// Speculative re-executions launched for straggling shards.
    pub speculative_reexecs: usize,
    /// Faults injected across every device of the group (all attempts).
    pub faults: FaultCountsReport,
}

/// Run LR-CG row-sharded across a device group under the shard recovery
/// ladder (`ShardRetry -> Reshard -> SingleDevice -> Cpu`); see
/// [`run_lr_cg_sharded_with_recovery`] for the ladder semantics. The
/// matrix is charged over PCIe once (the shards upload concurrently from
/// the same host copy), and scalar readbacks come from the root device
/// like the single-device session.
pub fn run_sharded_fault_tolerant(
    group: &DeviceGroup,
    x: &CsrMatrix,
    labels: &[f64],
    cfg: &SessionConfig,
    straggler_factor: f64,
    policy: &RecoveryPolicy,
) -> Result<ShardedSessionReport, LadderError<ShardTier>> {
    let mut session_span =
        fusedml_trace::wall_span("session", "run_sharded_fault_tolerant", "host");
    session_span.arg("rows", x.rows());
    session_span.arg("cols", x.cols());
    session_span.arg("iterations", cfg.iterations);
    session_span.arg("devices", group.len());
    session_span.arg("interconnect", group.interconnect().name.clone());

    let upload_span = fusedml_trace::wall_span("session", "phase.upload", "host");
    let mm = MemoryManager::new(
        group.device(0).spec().global_mem_bytes as u64,
        cfg.transfer.clone(),
    );
    mm.register("X", x.size_bytes(), true);
    mm.register("labels", (labels.len() * 8) as u64, false);
    let mut transfer_ms = mm
        .ensure_on_device("X")
        .unwrap_or_else(|e| panic!("matrix must fit the device: {e}"));
    transfer_ms += mm
        .ensure_on_device("labels")
        .unwrap_or_else(|e| panic!("labels must fit the device: {e}"));
    mm.pin("X");
    drop(upload_span);

    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 0.0, // run exactly `iterations` steps
        max_iterations: cfg.iterations,
    };

    let solve_span = fusedml_trace::wall_span("session", "phase.solve", "host");
    let outcome =
        run_lr_cg_sharded_with_recovery(group, x, labels, opts, straggler_factor, policy)?;
    drop(solve_span);
    let ladder = outcome.ladder;
    session_span.arg("tier", ladder.tier.name());
    session_span.arg("attempts", ladder.attempts);
    if let Some(it) = ladder.resumed_at {
        session_span.arg("resumed_at", it);
    }

    let kernel_ms = ladder.stats.sim_ms;
    let launches = ladder.stats.launches;
    let iterations = ladder.result.iterations;
    let (readback_ms, dispatch_ms) = if ladder.tier == ShardTier::Cpu {
        (0.0, 0.0)
    } else {
        (
            (2 * iterations + 1) as f64 * cfg.transfer.scalar_readback_ms(),
            launches as f64 * cfg.per_launch_overhead_ms,
        )
    };

    let ic = group.interconnect_stats();
    Ok(ShardedSessionReport {
        report: EndToEndReport {
            kernel_ms,
            transfer_ms,
            readback_ms,
            dispatch_ms,
            total_ms: kernel_ms + transfer_ms + readback_ms + dispatch_ms,
            launches,
            iterations,
            counters: ladder.stats.counters.clone(),
        },
        tier: ladder.tier,
        attempts: ladder.attempts,
        retry_backoff_ms: ladder.retry_backoff_ms,
        events: ladder.events,
        weights: ladder.result.weights,
        final_nr2: ladder.result.final_nr2,
        restarts: ladder.result.restarts,
        resumed_at: ladder.resumed_at,
        device_count: group.len(),
        devices_used: outcome.devices_used,
        interconnect: group.interconnect().name.clone(),
        interconnect_transfers: ic.transfers,
        interconnect_bytes: ic.bytes,
        interconnect_ms: ic.sim_ms,
        stragglers_detected: outcome.stragglers_detected,
        speculative_reexecs: outcome.speculative_reexecs,
        faults: FaultCountsReport::from_counts(&group.fault_counts()),
    })
}

/// Run LR-CG end to end with the *simulation* capped at `sim_iters`
/// iterations and the report extrapolated to `cfg.iterations` — the
/// per-iteration cost is steady after warm-up, so two short runs recover
/// the fixed and marginal components exactly. Used by the Table 5/6
/// experiments whose paper configurations run 100 iterations over
/// multi-million-row inputs.
///
/// The report's `counters` are those of the longest run actually
/// simulated (`2 * sim_iters` iterations); times and launch counts are
/// extrapolated, raw event counts are not.
pub fn run_device_extrapolated(
    gpu: &Gpu,
    data: &DataSet,
    labels: &[f64],
    cfg: &SessionConfig,
    sim_iters: usize,
) -> EndToEndReport {
    let sim_iters = sim_iters.max(1);
    if cfg.iterations <= 2 * sim_iters {
        return run_device(gpu, data, labels, cfg);
    }
    let short = SessionConfig {
        iterations: sim_iters,
        ..cfg.clone()
    };
    let long = SessionConfig {
        iterations: 2 * sim_iters,
        ..cfg.clone()
    };
    let r1 = run_device(gpu, data, labels, &short);
    let r2 = run_device(gpu, data, labels, &long);
    let delta_iters = (r2.iterations - r1.iterations).max(1) as f64;
    let per_iter_kernel = (r2.kernel_ms - r1.kernel_ms) / delta_iters;
    let per_iter_launches = (r2.launches - r1.launches) as f64 / delta_iters;
    let extra = (cfg.iterations - r1.iterations) as f64;
    let kernel_ms = r1.kernel_ms + per_iter_kernel * extra;
    let launches = r1.launches + (per_iter_launches * extra) as usize;
    let readback_ms = (2 * cfg.iterations + 1) as f64 * cfg.transfer.scalar_readback_ms();
    let dispatch_ms = launches as f64 * cfg.per_launch_overhead_ms;
    EndToEndReport {
        kernel_ms,
        transfer_ms: r1.transfer_ms,
        readback_ms,
        dispatch_ms,
        total_ms: kernel_ms + r1.transfer_ms + readback_ms + dispatch_ms,
        launches,
        iterations: cfg.iterations,
        counters: r2.counters,
    }
}

/// CPU run extrapolated the same way as [`run_device_extrapolated`].
pub fn run_cpu_extrapolated(
    data: &DataSet,
    labels: &[f64],
    iterations: usize,
    sim_iters: usize,
) -> f64 {
    let sim_iters = sim_iters.max(1);
    if iterations <= 2 * sim_iters {
        return run_cpu(data, labels, iterations);
    }
    let t1 = run_cpu(data, labels, sim_iters);
    let t2 = run_cpu(data, labels, 2 * sim_iters);
    let per_iter = (t2 - t1) / sim_iters as f64;
    t1 + per_iter * (iterations - sim_iters) as f64
}

/// The CPU-only run (SystemML's CPU backend in Table 6; modelled MKL
/// clock). Returns total milliseconds.
pub fn run_cpu(data: &DataSet, labels: &[f64], iterations: usize) -> f64 {
    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 0.0,
        max_iterations: iterations,
    };
    match data {
        DataSet::Sparse(x) => {
            let mut b = CpuBackend::new_sparse(x.clone());
            lr_cg(&mut b, labels, opts);
            b.stats().sim_ms
        }
        DataSet::Dense(x) => {
            let mut b = CpuBackend::new_dense(x.clone());
            lr_cg(&mut b, labels, opts);
            b.stats().sim_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    fn dataset() -> (DataSet, Vec<f64>) {
        let x = uniform_sparse(1000, 256, 0.03, 151);
        let w = random_vector(256, 152);
        let labels = reference::csr_mv(&x, &w);
        (DataSet::Sparse(x), labels)
    }

    #[test]
    fn fused_end_to_end_beats_baseline() {
        let g = gpu();
        let (data, labels) = dataset();
        let fused = run_device(
            &g,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Fused, 10),
        );
        g.flush_caches();
        let base = run_device(
            &g,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Baseline, 10),
        );
        assert_eq!(fused.iterations, 10);
        assert!(fused.kernel_ms < base.kernel_ms);
        assert!(fused.total_ms < base.total_ms);
        assert!(fused.launches < base.launches);
        assert!(fused.transfer_ms > 0.0);
    }

    #[test]
    fn systemml_regime_adds_overheads() {
        let g = gpu();
        let (data, labels) = dataset();
        let native = run_device(
            &g,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Fused, 5),
        );
        g.flush_caches();
        let sysml = run_device(
            &g,
            &data,
            &labels,
            &SessionConfig::systemml(EngineKind::Fused, 5),
        );
        assert!(sysml.transfer_ms > native.transfer_ms);
        assert!(sysml.dispatch_ms > 0.0);
        assert_eq!(native.dispatch_ms, 0.0);
        assert!(sysml.total_ms > native.total_ms);
    }

    #[test]
    fn cpu_run_produces_time() {
        let (data, labels) = dataset();
        let ms = run_cpu(&data, &labels, 5);
        assert!(ms > 0.0);
        // More iterations cost more.
        assert!(run_cpu(&data, &labels, 10) > ms);
    }

    #[test]
    fn report_components_sum() {
        let g = gpu();
        let (data, labels) = dataset();
        let r = run_device(
            &g,
            &data,
            &labels,
            &SessionConfig::systemml(EngineKind::Fused, 3),
        );
        let sum = r.kernel_ms + r.transfer_ms + r.readback_ms + r.dispatch_ms;
        assert!((r.total_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn sharded_session_reports_group_facts() {
        use fusedml_gpu_sim::{DeviceSpec, FaultProfile, InterconnectSpec};

        let x = uniform_sparse(300, 32, 0.1, 171);
        let labels = random_vector(300, 172);
        let cfg = SessionConfig::native(EngineKind::Fused, 8);
        let g = DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            3,
            InterconnectSpec::nvlink2(),
            &FaultProfile::disabled(),
        );
        let r = run_sharded_fault_tolerant(&g, &x, &labels, &cfg, 3.0, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(r.tier, ShardTier::ShardRetry);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.device_count, 3);
        assert_eq!(r.devices_used, 3);
        assert_eq!(r.interconnect, "nvlink2");
        assert!(r.interconnect_transfers > 0);
        assert!(r.interconnect_bytes > 0);
        assert!(r.interconnect_ms > 0.0);
        assert_eq!(r.report.iterations, 8);
        assert!(r.report.kernel_ms > 0.0);
        assert!(r.report.transfer_ms > 0.0);
        assert!(r.report.readback_ms > 0.0);
        assert_eq!(r.weights.len(), 32);
        let sum =
            r.report.kernel_ms + r.report.transfer_ms + r.report.readback_ms + r.report.dispatch_ms;
        assert!((r.report.total_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn sharded_session_weights_match_single_device() {
        use fusedml_gpu_sim::{DeviceSpec, FaultProfile, InterconnectSpec};

        let x = uniform_sparse(240, 20, 0.15, 181);
        let labels = random_vector(240, 182);
        let cfg = SessionConfig::native(EngineKind::Fused, 10);
        let run = |n: usize| {
            let g = DeviceGroup::new(
                DeviceSpec::gtx_titan(),
                n,
                InterconnectSpec::pcie_gen3_x16(),
                &FaultProfile::disabled(),
            );
            run_sharded_fault_tolerant(&g, &x, &labels, &cfg, 3.0, &RecoveryPolicy::default())
                .unwrap()
        };
        let one = run(1);
        let four = run(4);
        // Canonical shard reduction keeps the numerics shard-count
        // invariant, bit for bit.
        assert_eq!(one.weights, four.weights);
        assert_eq!(one.final_nr2.to_bits(), four.final_nr2.to_bits());
        // Four shards move data over the fabric; one shard does not.
        assert_eq!(one.interconnect_transfers, 0);
        assert!(four.interconnect_transfers > 0);
    }
}
