//! End-to-end fault-tolerance tests: deterministic injection, bounded
//! retry, and the Fused -> Baseline -> Cpu degradation ladder.

use fusedml_gpu_sim::{DeviceSpec, FaultProfile, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_ml::{lr_cg, CpuBackend, LrCgOptions};
use fusedml_runtime::{
    run_device_fault_tolerant, BackendTier, DataSet, EngineKind, RecoveryAction, RecoveryPolicy,
    SessionConfig,
};

fn problem(seed: u64) -> (DataSet, Vec<f64>) {
    let x = uniform_sparse(400, 64, 0.05, seed);
    let w = random_vector(64, seed + 1);
    let labels = fusedml_matrix::reference::csr_mv(&x, &w);
    (DataSet::Sparse(x), labels)
}

fn cpu_reference(data: &DataSet, labels: &[f64], iterations: usize) -> Vec<f64> {
    let DataSet::Sparse(x) = data else {
        panic!("sparse problem expected")
    };
    let mut b = CpuBackend::new_sparse(x.clone());
    lr_cg(
        &mut b,
        labels,
        LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: iterations,
        },
    )
    .weights
}

#[test]
fn clean_run_stays_on_fused_tier() {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let (data, labels) = problem(301);
    let cfg = SessionConfig::native(EngineKind::Fused, 8);
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect("clean run succeeds");
    assert_eq!(r.tier, BackendTier::Fused);
    assert_eq!(r.attempts, 1);
    assert!(r.events.is_empty());
    assert_eq!(r.retry_backoff_ms, 0.0);
    assert_eq!(r.faults, Default::default());
    let reference = cpu_reference(&data, &labels, 8);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "clean fused run off by {err}");
}

#[test]
fn transient_faults_are_retried_on_the_same_tier() {
    // A low kernel-fault rate: some attempt fails, a retry completes.
    // Scan a few seeds for a profile that faults at least once but
    // recovers within the retry budget on the fused tier.
    let mut exercised = false;
    for seed in 0..20u64 {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.002));
        let (data, labels) = problem(302);
        let cfg = SessionConfig::native(EngineKind::Fused, 6);
        let policy = RecoveryPolicy {
            max_retries: 10,
            ..Default::default()
        };
        let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
            .expect("retries must recover");
        if r.events.is_empty() {
            continue;
        }
        exercised = true;
        assert_eq!(r.tier, BackendTier::Fused, "seed {seed} should not degrade");
        assert!(r.attempts > 1);
        assert!(r.retry_backoff_ms > 0.0);
        assert!(r
            .events
            .iter()
            .all(|e| e.action == RecoveryAction::Retry && e.error_kind == "transient-fault"));
        let reference = cpu_reference(&data, &labels, 6);
        let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
        assert!(err < 1e-6, "seed {seed}: retried run off by {err}");
        break;
    }
    assert!(exercised, "no seed produced a recoverable transient fault");
}

#[test]
fn saturated_faults_degrade_to_cpu_and_match_reference() {
    // Alloc failure + certain kernel faults: both device tiers are
    // unusable, the ladder must land on the CPU and still produce the
    // right answer — the acceptance scenario of the fault model.
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(
        FaultProfile::seeded(7)
            .with_kernel_fault_rate(1.0)
            .with_alloc_fault_rate(1.0),
    );
    let (data, labels) = problem(303);
    let cfg = SessionConfig::native(EngineKind::Fused, 10);
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect("cpu tier cannot fault");
    assert_eq!(r.tier, BackendTier::Cpu);
    assert!(
        r.events
            .iter()
            .filter(|e| e.action == RecoveryAction::Degrade)
            .count()
            == 2,
        "expected Fused->Baseline and Baseline->Cpu degradations, got {:?}",
        r.events
    );
    assert!(r.faults.kernel_faults + r.faults.alloc_faults > 0);
    let reference = cpu_reference(&data, &labels, 10);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "degraded run off by {err}");
    // CPU tier pays no device readback/dispatch, but the up-front
    // transfer was already charged.
    assert_eq!(r.report.readback_ms, 0.0);
    assert!(r.report.transfer_ms > 0.0);
}

#[test]
fn same_seed_yields_identical_reports() {
    // The injector is a pure function of (seed, class, draw index), so
    // two sessions over the same data with the same profile must agree
    // byte for byte — the reproducibility contract of the fault harness.
    let run = || {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(
            FaultProfile::seeded(42)
                .with_kernel_fault_rate(0.01)
                .with_alloc_fault_rate(0.05),
        );
        let (data, labels) = problem(304);
        let cfg = SessionConfig::native(EngineKind::Fused, 5);
        run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
            .expect("degradation enabled")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "debug repr must match byte for byte"
    );
}

#[test]
fn different_seeds_can_change_the_fault_trail() {
    // Not a hard guarantee for any fixed pair, so scan: some seed must
    // differ from seed 0's trail under a rate that faults regularly.
    let run = |seed: u64| {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.005));
        let (data, labels) = problem(305);
        let cfg = SessionConfig::native(EngineKind::Fused, 5);
        let policy = RecoveryPolicy {
            max_retries: 20,
            ..Default::default()
        };
        run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy).expect("recovers")
    };
    let base = run(0);
    assert!(
        (1..10).any(|s| run(s).events != base.events),
        "ten seeds with identical fault trails"
    );
}

#[test]
fn degradation_disabled_surfaces_the_error() {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
        .with_fault_profile(FaultProfile::seeded(9).with_kernel_fault_rate(1.0));
    let (data, labels) = problem(306);
    let cfg = SessionConfig::native(EngineKind::Fused, 4);
    let policy = RecoveryPolicy {
        allow_degradation: false,
        max_retries: 1,
        ..Default::default()
    };
    let err = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
        .expect_err("must abort without degradation");
    assert!(err.is_transient(), "kernel faults are transient: {err}");
}
