//! End-to-end fault-tolerance tests: deterministic injection, bounded
//! retry, and the Fused -> Baseline -> Cpu degradation ladder.

use fusedml_gpu_sim::{DeviceSpec, FaultProfile, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_ml::{lr_cg, CpuBackend, LrCgOptions};
use fusedml_runtime::{
    run_device_fault_tolerant, BackendTier, DataSet, EngineKind, RecoveryAction, RecoveryPolicy,
    SessionConfig,
};

fn problem(seed: u64) -> (DataSet, Vec<f64>) {
    let x = uniform_sparse(400, 64, 0.05, seed);
    let w = random_vector(64, seed + 1);
    let labels = fusedml_matrix::reference::csr_mv(&x, &w);
    (DataSet::Sparse(x), labels)
}

fn cpu_reference(data: &DataSet, labels: &[f64], iterations: usize) -> Vec<f64> {
    let DataSet::Sparse(x) = data else {
        panic!("sparse problem expected")
    };
    let mut b = CpuBackend::new_sparse(x.clone());
    lr_cg(
        &mut b,
        labels,
        LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: iterations,
        },
    )
    .weights
}

#[test]
fn clean_run_stays_on_fused_tier() {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let (data, labels) = problem(301);
    let cfg = SessionConfig::native(EngineKind::Fused, 8);
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect("clean run succeeds");
    assert_eq!(r.tier, BackendTier::Fused);
    assert_eq!(r.attempts, 1);
    assert!(r.events.is_empty());
    assert_eq!(r.retry_backoff_ms, 0.0);
    assert_eq!(r.faults, Default::default());
    let reference = cpu_reference(&data, &labels, 8);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "clean fused run off by {err}");
}

#[test]
fn transient_faults_are_retried_on_the_same_tier() {
    // A low kernel-fault rate: some attempt fails, a retry completes.
    // Scan a few seeds for a profile that faults at least once but
    // recovers within the retry budget on the fused tier.
    let mut exercised = false;
    for seed in 0..20u64 {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.002));
        let (data, labels) = problem(302);
        let cfg = SessionConfig::native(EngineKind::Fused, 6);
        let policy = RecoveryPolicy {
            max_retries: 10,
            ..Default::default()
        };
        let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
            .expect("retries must recover");
        if r.events.is_empty() {
            continue;
        }
        exercised = true;
        assert_eq!(r.tier, BackendTier::Fused, "seed {seed} should not degrade");
        assert!(r.attempts > 1);
        assert!(r.retry_backoff_ms > 0.0);
        assert!(r
            .events
            .iter()
            .all(|e| e.action == RecoveryAction::Retry && e.error_kind == "transient-fault"));
        let reference = cpu_reference(&data, &labels, 6);
        let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
        assert!(err < 1e-6, "seed {seed}: retried run off by {err}");
        break;
    }
    assert!(exercised, "no seed produced a recoverable transient fault");
}

#[test]
fn saturated_faults_degrade_to_cpu_and_match_reference() {
    // Alloc failure + certain kernel faults: both device tiers are
    // unusable, the ladder must land on the CPU and still produce the
    // right answer — the acceptance scenario of the fault model.
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(
        FaultProfile::seeded(7)
            .with_kernel_fault_rate(1.0)
            .with_alloc_fault_rate(1.0),
    );
    let (data, labels) = problem(303);
    let cfg = SessionConfig::native(EngineKind::Fused, 10);
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect("cpu tier cannot fault");
    assert_eq!(r.tier, BackendTier::Cpu);
    assert!(
        r.events
            .iter()
            .filter(|e| e.action == RecoveryAction::Degrade)
            .count()
            == 2,
        "expected Fused->Baseline and Baseline->Cpu degradations, got {:?}",
        r.events
    );
    assert!(r.faults.kernel_faults + r.faults.alloc_faults > 0);
    let reference = cpu_reference(&data, &labels, 10);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "degraded run off by {err}");
    // CPU tier pays no device readback/dispatch, but the up-front
    // transfer was already charged.
    assert_eq!(r.report.readback_ms, 0.0);
    assert!(r.report.transfer_ms > 0.0);
}

#[test]
fn cpu_tier_can_run_the_fused_kernels() {
    // Same saturated-fault scenario, but the policy opts the Cpu rung
    // into the fused single-pass SIMD/multithreaded kernels. The ladder
    // must land on Cpu and still match the unfused reference.
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(
        FaultProfile::seeded(7)
            .with_kernel_fault_rate(1.0)
            .with_alloc_fault_rate(1.0),
    );
    let (data, labels) = problem(303);
    let cfg = SessionConfig::native(EngineKind::Fused, 10);
    let policy = RecoveryPolicy {
        cpu_fused_threads: 2,
        ..Default::default()
    };
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
        .expect("fused cpu tier cannot fault");
    assert_eq!(r.tier, BackendTier::Cpu);
    let reference = cpu_reference(&data, &labels, 10);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "fused cpu tier off by {err}");
}

#[test]
fn same_seed_yields_identical_reports() {
    // The injector is a pure function of (seed, class, draw index), so
    // two sessions over the same data with the same profile must agree
    // byte for byte — the reproducibility contract of the fault harness.
    let run = || {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(
            FaultProfile::seeded(42)
                .with_kernel_fault_rate(0.01)
                .with_alloc_fault_rate(0.05),
        );
        let (data, labels) = problem(304);
        let cfg = SessionConfig::native(EngineKind::Fused, 5);
        run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
            .expect("degradation enabled")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "debug repr must match byte for byte"
    );
}

#[test]
fn different_seeds_can_change_the_fault_trail() {
    // Not a hard guarantee for any fixed pair, so scan: some seed must
    // differ from seed 0's trail under a rate that faults regularly.
    let run = |seed: u64| {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.005));
        let (data, labels) = problem(305);
        let cfg = SessionConfig::native(EngineKind::Fused, 5);
        let policy = RecoveryPolicy {
            max_retries: 20,
            ..Default::default()
        };
        run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy).expect("recovers")
    };
    let base = run(0);
    assert!(
        (1..10).any(|s| run(s).events != base.events),
        "ten seeds with identical fault trails"
    );
}

#[test]
fn transient_fault_resumes_from_checkpoint_not_iteration_zero() {
    // With checkpointing on, a mid-run transient fault must restart the
    // solver from the last snapshot rather than iteration 0, and the
    // report must say so. Scan seeds for a run that faults *after* the
    // first snapshot was taken.
    let mut exercised = false;
    for seed in 0..60u64 {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.002));
        let (data, labels) = problem(307);
        let cfg = SessionConfig::native(EngineKind::Fused, 12);
        let policy = RecoveryPolicy {
            max_retries: 10,
            checkpoint_every: 2,
            ..Default::default()
        };
        let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
            .expect("retries must recover");
        let Some(resumed_at) = r.resumed_at else {
            continue; // no fault, or it hit before the first snapshot
        };
        exercised = true;
        assert!(resumed_at > 0, "resume point must be a real iteration");
        assert_eq!(resumed_at % 2, 0, "snapshots are taken every 2 iterations");
        assert!(!r.events.is_empty(), "a resume implies a failed attempt");
        let reference = cpu_reference(&data, &labels, 12);
        let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
        assert!(err < 1e-6, "seed {seed}: resumed run off by {err}");
        break;
    }
    assert!(exercised, "no seed faulted after the first checkpoint");
}

#[test]
fn checkpoint_survives_degradation_to_a_lower_tier() {
    // Snapshots live on the host, so a Fused-tier fault after the first
    // save must let the *Baseline or Cpu* attempt pick the run up
    // mid-flight. max_retries: 0 forces every fault to degrade.
    let mut exercised = false;
    for seed in 0..80u64 {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.003));
        let (data, labels) = problem(308);
        let cfg = SessionConfig::native(EngineKind::Fused, 12);
        let policy = RecoveryPolicy {
            max_retries: 0,
            checkpoint_every: 2,
            ..Default::default()
        };
        let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
            .expect("degradation enabled");
        let Some(resumed_at) = r.resumed_at else {
            continue;
        };
        if r.tier == BackendTier::Fused {
            continue; // resumed, but not across a tier boundary
        }
        exercised = true;
        assert!(resumed_at > 0);
        assert!(r.events.iter().any(|e| e.action == RecoveryAction::Degrade));
        let reference = cpu_reference(&data, &labels, 12);
        let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
        assert!(err < 1e-6, "seed {seed}: cross-tier resume off by {err}");
        break;
    }
    assert!(exercised, "no seed degraded after the first checkpoint");
}

#[test]
fn injected_bit_flip_is_detected_not_silently_converged_through() {
    // Corruption + integrity checks on: every fired bit flip must surface
    // as a typed data-corruption event that the ladder recovers from —
    // never a silently wrong answer.
    let mut exercised = false;
    for seed in 0..40u64 {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(seed).with_corruption_rate(0.02))
            .with_integrity_checks(true);
        let (data, labels) = problem(309);
        let cfg = SessionConfig::native(EngineKind::Fused, 8);
        let policy = RecoveryPolicy {
            max_retries: 10,
            ..Default::default()
        };
        let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
            .expect("corruption is transient; retries or the ladder recover");
        if r.faults.corruptions == 0 {
            continue;
        }
        exercised = true;
        assert!(
            r.events.iter().any(|e| e.error_kind == "data-corruption"),
            "seed {seed}: {} corruption(s) fired but none was reported: {:?}",
            r.faults.corruptions,
            r.events
        );
        let reference = cpu_reference(&data, &labels, 8);
        let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
        assert!(
            err < 1e-6,
            "seed {seed}: post-corruption answer off by {err}"
        );
        break;
    }
    assert!(exercised, "no seed fired a corruption draw");
}

#[test]
fn memory_pressure_degrades_to_cpu_with_typed_accounting() {
    // reserve_fraction 1.0: after the first few allocations every later
    // request is rejected, on both device tiers — the ladder must land on
    // the CPU and the report must count the rejections as pressure, not
    // as injected alloc faults.
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
        .with_fault_profile(FaultProfile::seeded(11).with_memory_pressure(6, 1.0));
    let (data, labels) = problem(310);
    let cfg = SessionConfig::native(EngineKind::Fused, 8);
    let r = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect("cpu tier is immune to device memory pressure");
    assert_eq!(r.tier, BackendTier::Cpu);
    assert!(r.faults.pressure_rejections > 0);
    assert_eq!(r.faults.alloc_faults, 0, "no alloc faults were injected");
    let reference = cpu_reference(&data, &labels, 8);
    let err = fusedml_matrix::reference::rel_l2_error(&r.weights, &reference);
    assert!(err < 1e-6, "pressure-degraded run off by {err}");
}

#[test]
fn exhausted_ladder_reports_the_last_error_per_tier() {
    // NaN labels break the solver on *every* tier — the one failure mode
    // even the CPU cannot absorb. The ladder must walk
    // Fused -> Baseline -> Cpu and hand back the per-tier error trail.
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let (data, mut labels) = problem(311);
    for i in [3usize, 17, 40] {
        labels[i] = f64::NAN;
    }
    let cfg = SessionConfig::native(EngineKind::Fused, 6);
    let err = run_device_fault_tolerant(&g, &data, &labels, &cfg, &RecoveryPolicy::default())
        .expect_err("NaN labels must not converge on any tier");
    assert_eq!(err.kind(), "numerical-breakdown");
    assert!(!err.is_transient(), "a breakdown is not retryable");
    let tiers: Vec<BackendTier> = err.tier_errors.iter().map(|(t, _)| *t).collect();
    assert_eq!(
        tiers,
        [BackendTier::Fused, BackendTier::Baseline, BackendTier::Cpu],
        "one last-error per tier, in ladder order"
    );
    assert!(err
        .tier_errors
        .iter()
        .all(|(_, e)| e.kind() == "numerical-breakdown"));
    // Event trail: Fused degrade, Baseline degrade, Cpu abort — no
    // retries, since a breakdown is permanent.
    let actions: Vec<RecoveryAction> = err.events.iter().map(|e| e.action).collect();
    assert_eq!(
        actions,
        [
            RecoveryAction::Degrade,
            RecoveryAction::Degrade,
            RecoveryAction::Abort
        ]
    );
    assert_eq!(err.attempts, 3);
    let msg = err.to_string();
    for tier in ["fused", "baseline", "cpu"] {
        assert!(msg.contains(tier), "{msg:?} must name the {tier} tier");
    }
}

#[test]
fn degradation_disabled_surfaces_the_error() {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
        .with_fault_profile(FaultProfile::seeded(9).with_kernel_fault_rate(1.0));
    let (data, labels) = problem(306);
    let cfg = SessionConfig::native(EngineKind::Fused, 4);
    let policy = RecoveryPolicy {
        allow_degradation: false,
        max_retries: 1,
        ..Default::default()
    };
    let err = run_device_fault_tolerant(&g, &data, &labels, &cfg, &policy)
        .expect_err("must abort without degradation");
    assert!(err.is_transient(), "kernel faults are transient: {err}");
}
