//! Seeded property tests on the CPU `KernelExecutor` backends, written as
//! plain `#[test]`s over a hand-rolled SplitMix64 generator so they run in
//! offline builds where `proptest` is a compile-surface stub (same idiom
//! as `dag_fusion_properties.rs`).
//!
//! The equivalence contract the executor layer must uphold:
//!
//! 1. **Scalar fused == unfused reference, bit for bit**: the fused
//!    one-pass pattern kernel only changes *where* the per-row
//!    intermediate lives (a register instead of a vector), never the
//!    arithmetic order.
//! 2. **AVX2 tracks scalar**: element-wise kernels are bit-identical
//!    (one rounding per element, same order); reductions re-associate
//!    into four lanes and must stay within a documented relative-L2
//!    tolerance.
//! 3. **Multithreaded fused is schedule-free**: for a fixed block count,
//!    the result is bit-identical across thread counts 1/2/4 and across
//!    partitions that do not divide the row count — the reduction tree is
//!    a function of matrix shape and block count only.
//! 4. **`_into` variants == allocating forms, bit for bit**, even into
//!    NaN-poisoned output buffers.

use fusedml_blas::{
    available_executors, avx2_executor, fused_pattern_csr, fused_pattern_dense, scalar_executor,
    KernelExecutor, MtFused, MtWorkspace,
};
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
use fusedml_matrix::reference;

/// SIMD reductions re-associate; everything else must be exact.
const REDUCTION_REL_L2_TOL: f64 = 1e-13;

/// SplitMix64: tiny, seedable, and good enough to sweep shape space.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One random pattern instantiation: shape, sparsity, and which of the
/// optional `v`/`z` operands (and non-trivial `alpha`/`beta`) are present.
struct Case {
    x: fusedml_matrix::CsrMatrix,
    alpha: f64,
    v: Option<Vec<f64>>,
    y: Vec<f64>,
    beta: f64,
    z: Option<Vec<f64>>,
}

fn random_case(rng: &mut Rng) -> Case {
    let rows = 1 + rng.below(160);
    let cols = 1 + rng.below(96);
    let density = 0.02 + rng.f64() * 0.2;
    let seed = rng.next();
    let x = uniform_sparse(rows, cols, density, seed);
    let alpha = if rng.below(2) == 0 {
        1.0
    } else {
        0.25 + rng.f64()
    };
    let v = (rng.below(2) == 0).then(|| random_vector(rows, seed ^ 0x11));
    let y = random_vector(cols, seed ^ 0x22);
    let z = (rng.below(2) == 0).then(|| random_vector(cols, seed ^ 0x33));
    let beta = if z.is_some() { -0.5 + rng.f64() } else { 0.0 };
    Case {
        x,
        alpha,
        v,
        y,
        beta,
        z,
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn run_fused(exec: &dyn KernelExecutor, c: &Case) -> Vec<f64> {
    let mut w = vec![f64::NAN; c.x.cols()];
    fused_pattern_csr(
        exec,
        c.alpha,
        &c.x,
        c.v.as_deref(),
        &c.y,
        c.beta,
        c.z.as_deref(),
        &mut w,
    );
    w
}

#[test]
fn scalar_fused_pattern_is_bit_identical_to_unfused_reference() {
    let mut rng = Rng::new(0xa11ce);
    for case_no in 0..32 {
        let c = random_case(&mut rng);
        let unfused =
            reference::pattern_csr(c.alpha, &c.x, c.v.as_deref(), &c.y, c.beta, c.z.as_deref());
        let fused = run_fused(scalar_executor(), &c);
        assert!(
            bits_eq(&fused, &unfused),
            "case {case_no} ({}x{}, v={}, z={}): scalar fused diverged from unfused reference",
            c.x.rows(),
            c.x.cols(),
            c.v.is_some(),
            c.z.is_some()
        );
    }
}

#[test]
fn scalar_fused_dense_pattern_is_bit_identical_to_unfused_reference() {
    let mut rng = Rng::new(0xd15c0);
    for case_no in 0..16 {
        let rows = 1 + rng.below(96);
        let cols = 1 + rng.below(64);
        let seed = rng.next();
        let x = dense_random(rows, cols, seed);
        let y = random_vector(cols, seed ^ 0x22);
        let v = (rng.below(2) == 0).then(|| random_vector(rows, seed ^ 0x11));
        let z = (rng.below(2) == 0).then(|| random_vector(cols, seed ^ 0x33));
        let (alpha, beta) = (0.5 + rng.f64(), -0.25 + rng.f64());
        let unfused = reference::pattern_dense(alpha, &x, v.as_deref(), &y, beta, z.as_deref());
        let mut fused = vec![f64::NAN; cols];
        fused_pattern_dense(
            scalar_executor(),
            alpha,
            &x,
            v.as_deref(),
            &y,
            beta,
            z.as_deref(),
            &mut fused,
        );
        assert!(
            bits_eq(&fused, &unfused),
            "case {case_no} ({rows}x{cols}): scalar dense fused diverged"
        );
    }
}

#[test]
fn avx2_elementwise_kernels_are_bit_identical_to_scalar() {
    let Some(avx2) = avx2_executor() else {
        eprintln!("host has no AVX2; skipping");
        return;
    };
    let scalar = scalar_executor();
    let mut rng = Rng::new(0xe1e);
    // Lengths straddle the 4-lane width so remainders get exercised.
    for _ in 0..24 {
        let n = 1 + rng.below(203);
        let seed = rng.next();
        let x = random_vector(n, seed);
        let a = -1.0 + 2.0 * rng.f64();

        let mut ys = random_vector(n, seed ^ 0x44);
        let mut yv = ys.clone();
        scalar.axpy(a, &x, &mut ys);
        avx2.axpy(a, &x, &mut yv);
        assert!(bits_eq(&ys, &yv), "axpy(len {n}) diverged");

        let mut ss = x.clone();
        let mut sv = x.clone();
        scalar.scal(a, &mut ss);
        avx2.scal(a, &mut sv);
        assert!(bits_eq(&ss, &sv), "scal(len {n}) diverged");

        let m = random_vector(n, seed ^ 0x55);
        let mut es = vec![f64::NAN; n];
        let mut ev = vec![f64::NAN; n];
        scalar.ewmul(&x, &m, &mut es);
        avx2.ewmul(&x, &m, &mut ev);
        assert!(bits_eq(&es, &ev), "ewmul(len {n}) diverged");
    }
}

#[test]
fn avx2_fused_pattern_tracks_scalar_within_reduction_tolerance() {
    let Some(avx2) = avx2_executor() else {
        eprintln!("host has no AVX2; skipping");
        return;
    };
    let mut rng = Rng::new(0xf00d);
    for case_no in 0..32 {
        let c = random_case(&mut rng);
        let scalar = run_fused(scalar_executor(), &c);
        let simd = run_fused(avx2, &c);
        let err = reference::rel_l2_error(&simd, &scalar);
        assert!(
            err <= REDUCTION_REL_L2_TOL,
            "case {case_no} ({}x{}): avx2 rel_l2 {err:e} exceeds {REDUCTION_REL_L2_TOL:e}",
            c.x.rows(),
            c.x.cols()
        );
    }
}

#[test]
fn mt_fused_is_bit_identical_across_thread_counts() {
    let mut rng = Rng::new(0x7ead);
    for case_no in 0..12 {
        let c = random_case(&mut rng);
        for exec in available_executors() {
            let baseline = {
                let mt = MtFused::new(exec, 1);
                let mut w = vec![f64::NAN; c.x.cols()];
                mt.pattern_csr(
                    c.alpha,
                    &c.x,
                    c.v.as_deref(),
                    &c.y,
                    c.beta,
                    c.z.as_deref(),
                    &mut w,
                );
                w
            };
            for threads in [2, 4] {
                let mt = MtFused::new(exec, threads);
                let mut w = vec![f64::NAN; c.x.cols()];
                mt.pattern_csr(
                    c.alpha,
                    &c.x,
                    c.v.as_deref(),
                    &c.y,
                    c.beta,
                    c.z.as_deref(),
                    &mut w,
                );
                assert!(
                    bits_eq(&w, &baseline),
                    "case {case_no} ('{}', {threads} threads, {} rows): result depends on \
                     thread count",
                    exec.name(),
                    c.x.rows()
                );
            }
        }
    }
}

#[test]
fn mt_fused_is_bit_identical_across_non_dividing_partitions() {
    let mut rng = Rng::new(0xb10c);
    let exec = scalar_executor();
    for case_no in 0..8 {
        let c = random_case(&mut rng);
        // Block counts that do not divide the row count (and exceed it):
        // for a FIXED block count the result must not depend on how many
        // threads claim the blocks. Different block counts may legally
        // differ (the reduction tree changes) — that is why the baseline
        // is re-derived per block count.
        for blocks in [1, 3, 7, 50, 64] {
            let baseline = {
                let mt = MtFused::new(exec, 1).with_blocks(blocks);
                let mut w = vec![f64::NAN; c.x.cols()];
                mt.xtxp(&c.x, &c.y, &mut w);
                w
            };
            for threads in [2, 3, 16] {
                let mt = MtFused::new(exec, threads).with_blocks(blocks);
                let mut ws = MtWorkspace::new(c.x.cols(), mt.blocks());
                let mut w = vec![f64::NAN; c.x.cols()];
                mt.xtxp_with(&mut ws, &c.x, &c.y, &mut w);
                assert!(
                    bits_eq(&w, &baseline),
                    "case {case_no} ({} rows, {blocks} blocks, {threads} threads): \
                     partition-dependent result",
                    c.x.rows()
                );
            }
        }
    }
}

#[test]
fn mt_fused_full_pattern_stays_within_tolerance_of_reference() {
    let mut rng = Rng::new(0x5eed5);
    for case_no in 0..12 {
        let c = random_case(&mut rng);
        let unfused =
            reference::pattern_csr(c.alpha, &c.x, c.v.as_deref(), &c.y, c.beta, c.z.as_deref());
        for exec in available_executors() {
            let mt = MtFused::new(exec, 4);
            let mut w = vec![f64::NAN; c.x.cols()];
            mt.pattern_csr(
                c.alpha,
                &c.x,
                c.v.as_deref(),
                &c.y,
                c.beta,
                c.z.as_deref(),
                &mut w,
            );
            let err = reference::rel_l2_error(&w, &unfused);
            assert!(
                err <= REDUCTION_REL_L2_TOL,
                "case {case_no} ('{}'): mt fused rel_l2 {err:e} vs unfused reference",
                exec.name()
            );
        }
    }
}

#[test]
fn into_variants_match_allocating_forms_bit_for_bit() {
    let mut rng = Rng::new(0x1a70);
    for _ in 0..12 {
        let rows = 1 + rng.below(120);
        let cols = 1 + rng.below(80);
        let seed = rng.next();
        let x = uniform_sparse(rows, cols, 0.05 + rng.f64() * 0.15, seed);
        let d = dense_random(rows, cols, seed ^ 0x9);
        let y = random_vector(cols, seed ^ 0x22);
        let p = random_vector(rows, seed ^ 0x44);

        // NaN poison proves every output element is written, not merely
        // accumulated into.
        let mut out_r = vec![f64::NAN; rows];
        let mut out_c = vec![f64::NAN; cols];

        reference::csr_mv_into(&x, &y, &mut out_r);
        assert!(bits_eq(&out_r, &reference::csr_mv(&x, &y)));
        reference::csr_tmv_into(&x, &p, &mut out_c);
        assert!(bits_eq(&out_c, &reference::csr_tmv(&x, &p)));

        out_r.fill(f64::NAN);
        out_c.fill(f64::NAN);
        reference::dense_mv_into(&d, &y, &mut out_r);
        assert!(bits_eq(&out_r, &reference::dense_mv(&d, &y)));
        reference::dense_tmv_into(&d, &p, &mut out_c);
        assert!(bits_eq(&out_c, &reference::dense_tmv(&d, &p)));
    }
}
