//! Replay of historical proptest failure cases as plain tests.
//!
//! `simulator_invariants.proptest-regressions` records the shrunk inputs
//! of property failures found (and since fixed) by proptest. The corpus
//! is only replayed when the `proptest` dependency is present and the
//! generation strategy still covers the recorded values — neither is
//! guaranteed (offline builds stub proptest out, and the
//! `more_data_never_simulates_faster` range has since moved past the
//! shrunk values). This file pins each recorded case as an ordinary
//! `#[test]`, so the exact historical inputs run in every build,
//! dependency-free; a meta-test keeps the two files in sync. See
//! DESIGN.md ("Proptest regression corpus").

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};

/// Body of `more_data_never_simulates_faster` from
/// `simulator_invariants.rs`, at an explicit (m, seed) — with the
/// *non-strict* comparison.
///
/// Below ~40k rows at n = 128, the fused kernel's modeled time sits on a
/// row-count-independent floor: the planned grid is fixed by the device's
/// resident-block capacity, so the per-block global-atomic flush (and its
/// serialization estimate on the hottest address) doesn't grow with `m`,
/// and it dominates until DRAM traffic overtakes it. The historical
/// failures recorded in the corpus are exactly this regime — 4x the data,
/// *equal* modeled time — which is why the property's generation range
/// was moved to 40k..60k where the strict inequality holds. What must
/// hold at every size is the property's name: more data never simulates
/// strictly FASTER.
fn more_data_never_simulates_faster_at(m: usize, seed: u64) {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let n = 128;
    let small = uniform_sparse(m, n, 0.05, seed);
    let big = uniform_sparse(m * 4, n, 0.05, seed);
    let run = |x: &fusedml_matrix::CsrMatrix| {
        let xd = GpuCsr::upload(&g, "x", x);
        let yd = g.upload_f64("y", &random_vector(n, seed));
        let wd = g.alloc_f64("w", n);
        g.flush_caches();
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        ex.total_sim_ms()
    };
    let (big_ms, small_ms) = (run(&big), run(&small));
    assert!(
        big_ms >= small_ms,
        "4x data simulated faster: {big_ms} ms vs {small_ms} ms (m = {m}, seed = {seed})"
    );
}

/// Corpus line `shrinks to m = 200, seed = 0`.
#[test]
fn corpus_more_data_never_simulates_faster_m200() {
    more_data_never_simulates_faster_at(200, 0);
}

/// Corpus line `shrinks to m = 10000, seed = 0`.
#[test]
fn corpus_more_data_never_simulates_faster_m10000() {
    more_data_never_simulates_faster_at(10_000, 0);
}

/// Every shrunk case recorded in the proptest corpus must have a mirror
/// test above. If proptest finds (and you fix) a new failure, add the
/// shrunk input here before committing the corpus line.
#[test]
fn corpus_entries_are_mirrored() {
    let corpus = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/simulator_invariants.proptest-regressions"
    ))
    .expect("read proptest corpus");
    let mirrored = ["m = 200, seed = 0", "m = 10000, seed = 0"];
    for line in corpus.lines() {
        let Some((_, shrunk)) = line.split_once("# shrinks to ") else {
            continue;
        };
        assert!(
            mirrored.contains(&shrunk.trim()),
            "corpus case '{}' has no mirror test in simulator_regressions.rs",
            shrunk.trim()
        );
    }
}
