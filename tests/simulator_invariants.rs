//! Cross-crate invariants of the GPU simulator itself: counter sanity,
//! determinism, and the relationships the timing model depends on.

// Needs the real `proptest` crate: gated off in offline builds, where
// `proptest` resolves to a macro-less stub (see the workspace Cargo.toml).
#![cfg(feature = "proptest-tests")]

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use proptest::prelude::*;

fn run_pattern(host_threads: usize, m: usize, n: usize, seed: u64) -> (Vec<f64>, u64, u64, f64) {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), host_threads);
    let x = uniform_sparse(m, n, 0.05, seed);
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &random_vector(n, seed + 1));
    let wd = g.alloc_f64("w", n);
    let mut ex = FusedExecutor::new(&g);
    ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
    let c = &ex.launches.last().unwrap().counters;
    (
        wd.to_vec_f64(),
        c.gld_transactions,
        c.global_atomics,
        ex.total_sim_ms(),
    )
}

#[test]
fn host_parallelism_does_not_change_counters() {
    let (w1, t1, a1, ms1) = run_pattern(1, 3000, 256, 9);
    let (w2, t2, a2, ms2) = run_pattern(2, 3000, 256, 9);
    assert_eq!(t1, t2, "transactions must be deterministic");
    assert_eq!(a1, a2, "atomics must be deterministic");
    assert!((ms1 - ms2).abs() < 1e-9, "sim time must be deterministic");
    // Atomic float adds may reorder: tolerance-based comparison.
    assert!(fusedml_matrix::reference::rel_l2_error(&w1, &w2) < 1e-12);
}

#[test]
fn repeated_sequential_runs_are_bitwise_identical() {
    let a = run_pattern(1, 1500, 128, 4);
    let b = run_pattern(1, 1500, 128, 4);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.3, b.3);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn counter_sanity_on_random_patterns(
        m in 64usize..1500,
        n in 16usize..400,
        seed in 0u64..500,
    ) {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = uniform_sparse(m, n, 0.05, seed);
        let nnz = x.nnz() as u64;
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &random_vector(n, seed));
        let wd = g.alloc_f64("w", n);
        g.flush_caches();
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let c = &ex.launches.last().unwrap().counters;

        // Each non-zero is loaded twice (value) plus column indices: the
        // sector count is bounded by per-element worst case.
        prop_assert!(c.gld_transactions >= nnz / 32, "too few sectors");
        prop_assert!(
            c.gld_transactions <= 6 * nnz + 4 * (m as u64) + 1000,
            "sector count {} implausible for nnz {}",
            c.gld_transactions,
            nnz
        );
        // DRAM read traffic cannot exceed sectors * 128B (line fills) and
        // must at least cover one compulsory scan of the values.
        prop_assert!(c.dram_read_bytes <= (c.gld_transactions + c.global_atomics) * 128);
        prop_assert!(c.dram_read_bytes >= nnz * 8 / 2);
        // FLOPs: ~4 per nnz (two passes) plus reductions.
        prop_assert!(c.flops >= 4 * nnz);
        // Shared variant: per-nnz shared atomics, per-column global flush.
        prop_assert!(c.shared_atomics >= nnz);
        prop_assert!(c.global_atomics >= n as u64 / 32);
        // Time is positive and composed of its parts.
        let t = &ex.launches.last().unwrap().time;
        prop_assert!(t.total_ms > 0.0);
        prop_assert!(t.total_ms >= t.launch_ms);
    }

    #[test]
    fn more_data_never_simulates_faster(
        m in 40_000usize..60_000,
        seed in 0u64..100,
    ) {
        // Sizes where DRAM traffic dominates launch overhead and the
        // sampled-histogram noise in the atomic-serialization estimate.
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let n = 128;
        let small = uniform_sparse(m, n, 0.05, seed);
        let big = uniform_sparse(m * 4, n, 0.05, seed);
        let run = |x: &fusedml_matrix::CsrMatrix| {
            let xd = GpuCsr::upload(&g, "x", x);
            let yd = g.upload_f64("y", &random_vector(n, seed));
            let wd = g.alloc_f64("w", n);
            g.flush_caches();
            let mut ex = FusedExecutor::new(&g);
            ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
            ex.total_sim_ms()
        };
        prop_assert!(run(&big) > run(&small));
    }
}

#[test]
fn memory_accounting_tracks_allocations() {
    let g = Gpu::new(DeviceSpec::gtx_titan());
    let before = g.allocated_bytes();
    let a = g.alloc_f64("a", 1000);
    let b = g.alloc_u32("b", 1000);
    assert_eq!(g.allocated_bytes() - before, 8000 + 4000);
    g.free(&a);
    g.free(&b);
    assert_eq!(g.allocated_bytes(), before);
}

#[test]
fn lower_bandwidth_device_is_slower_when_bandwidth_bound() {
    // Big enough that DRAM bandwidth (288 vs 208 GB/s) is the bottleneck;
    // at tiny sizes a K20's *fewer SMs* can actually win by issuing fewer
    // per-block flush atomics — a real effect the model reproduces.
    let run = |spec: DeviceSpec| {
        let g = Gpu::with_host_threads(spec, 1);
        let x = uniform_sparse(50_000, 512, 0.02, 3);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &random_vector(512, 4));
        let wd = g.alloc_f64("w", 512);
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        ex.total_sim_ms()
    };
    let titan = run(DeviceSpec::gtx_titan());
    let k20 = run(DeviceSpec::tesla_k20());
    assert!(
        k20 > titan,
        "K20 ({k20} ms) should trail Titan ({titan} ms)"
    );
}
