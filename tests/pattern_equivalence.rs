//! Property tests: every execution path of the generic pattern — fused
//! shared-memory, fused global-memory, dense monomorphized, and the
//! operator-by-operator baselines — computes the same `w` as the CPU
//! reference, across random shapes, densities, scalars and operand
//! combinations.

// Needs the real `proptest` crate: gated off in offline builds, where
// `proptest` resolves to a macro-less stub (see the workspace Cargo.toml).
#![cfg(feature = "proptest-tests")]

use fusedml::prelude::*;
use fusedml_core::tuner::manual_sparse_plan;
use fusedml_core::{plan_dense, sparse_fused, sparse_large};
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
use fusedml_matrix::reference;
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
}

fn spec_strategy() -> impl Strategy<Value = PatternSpec> {
    (-2.0f64..2.0, any::<bool>(), -2.0f64..2.0, any::<bool>()).prop_map(
        |(alpha, with_v, beta, with_z)| PatternSpec {
            alpha,
            with_v,
            beta,
            with_z,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fused_sparse_matches_reference(
        m in 16usize..300,
        n in 8usize..200,
        density in 0.02f64..0.3,
        seed in 0u64..1000,
        spec in spec_strategy(),
    ) {
        let g = gpu();
        let x = uniform_sparse(m, n, density, seed);
        let y = random_vector(n, seed + 1);
        let v = random_vector(m, seed + 2);
        let z = random_vector(n, seed + 3);

        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", n);

        let mut ex = FusedExecutor::new(&g);
        ex.pattern_sparse(
            spec,
            &xd,
            spec.with_v.then_some(&vd),
            &yd,
            spec.with_z.then_some(&zd),
            &wd,
        );

        let expect = reference::pattern_csr(
            spec.alpha,
            &x,
            spec.with_v.then_some(v.as_slice()),
            &y,
            spec.beta,
            spec.with_z.then_some(z.as_slice()),
        );
        prop_assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-10);
    }

    #[test]
    fn both_sparse_variants_agree(
        m in 32usize..200,
        n in 16usize..150,
        vs_pow in 0u32..5,
        seed in 0u64..1000,
    ) {
        let g = gpu();
        let vs = 1usize << vs_pow;
        let x = uniform_sparse(m, n, 0.1, seed);
        let y = random_vector(n, seed + 1);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let spec = PatternSpec::xtxy();

        // Shared-memory variant with a manual plan.
        let shared_plan = manual_sparse_plan(g.spec(), m, n, vs, (vs * 8).min(256), 4)
            .expect("small matrix always fits shared memory");
        let w1 = g.alloc_f64("w1", n);
        sparse_fused::fused_pattern_shared(&g, &shared_plan, spec, &xd, None, &yd, None, &w1);

        // Global-memory variant with the same geometry.
        let mut global_plan = shared_plan;
        global_plan.use_shared_w = false;
        global_plan.shared_bytes = (global_plan.bs / global_plan.vs) * 8;
        let w2 = g.alloc_f64("w2", n);
        sparse_large::fused_pattern_global(&g, &global_plan, spec, &xd, None, &yd, None, &w2);

        prop_assert!(
            reference::rel_l2_error(&w1.to_vec_f64(), &w2.to_vec_f64()) < 1e-10
        );
    }

    #[test]
    fn fused_dense_matches_reference(
        m in 16usize..250,
        n in 4usize..300,
        seed in 0u64..1000,
        spec in spec_strategy(),
    ) {
        let g = gpu();
        let x = dense_random(m, n, seed);
        let y = random_vector(n, seed + 1);
        let v = random_vector(m, seed + 2);
        let z = random_vector(n, seed + 3);

        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let vd = g.upload_f64("v", &v);
        let zd = g.upload_f64("z", &z);
        let wd = g.alloc_f64("w", n);

        let plan = plan_dense(g.spec(), m, n);
        let mut ex = FusedExecutor::new(&g);
        ex.pattern_dense_with_plan(
            &plan,
            spec,
            &xd,
            spec.with_v.then_some(&vd),
            &yd,
            spec.with_z.then_some(&zd),
            &wd,
        );

        let expect = reference::pattern_dense(
            spec.alpha,
            &x,
            spec.with_v.then_some(v.as_slice()),
            &y,
            spec.beta,
            spec.with_z.then_some(z.as_slice()),
        );
        prop_assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-10);
    }

    #[test]
    fn baselines_match_reference(
        m in 16usize..200,
        n in 8usize..150,
        seed in 0u64..1000,
    ) {
        let g = gpu();
        let x = uniform_sparse(m, n, 0.1, seed);
        let y = random_vector(n, seed + 1);
        let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", m);
        for flavor in [Flavor::CuLibs, Flavor::BidmatGpu] {
            let wd = g.alloc_f64("w", n);
            let mut e = BaselineEngine::new(&g, flavor);
            e.pattern_sparse(1.0, &xd, None, &yd, 0.0, None, &wd, &pd);
            prop_assert!(
                reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-10,
                "flavor {:?}", flavor
            );
        }
    }
}
