//! Every monomorphized dense-kernel instance — the 40 "generated kernels"
//! of the code-generation layer — computes the correct result, across the
//! vector-size cases (intra-warp and block-wide vectors).

use fusedml::prelude::*;
use fusedml_blas::level1::fill;
use fusedml_core::codegen::launch_dense_fused;
use fusedml_core::tuner::{dense_kernel_regs, DensePlan, MAX_TL};
use fusedml_gpu_sim::occupancy;
use fusedml_matrix::gen::{dense_random, random_vector};
use fusedml_matrix::reference;

fn manual_dense_plan(gpu: &Gpu, m: usize, n: usize, vs: usize, tl: usize) -> DensePlan {
    assert!(vs * tl >= n, "vector must cover the row");
    let bs = if vs > 32 { vs } else { 128 };
    let regs = dense_kernel_regs(tl);
    let occ = occupancy(gpu.spec(), bs, regs, 512).expect("plan fits");
    let grid = (occ.blocks_per_sm * gpu.spec().num_sms).max(1);
    let total_vectors = grid * bs / vs;
    DensePlan {
        vs,
        bs,
        tl,
        grid,
        c: m.div_ceil(total_vectors).max(1),
        regs,
        occupancy: occ,
    }
}

#[test]
fn all_forty_thread_loads_compute_correctly() {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let m = 160;
    let vs = 8;
    for tl in 1..=MAX_TL {
        // n exactly fills the vector's slots (no waste, no gap).
        let n = vs * tl;
        let x = dense_random(m, n, tl as u64);
        let y = random_vector(n, 100 + tl as u64);
        let xd = GpuDense::upload(&gpu, "x", &x);
        let yd = gpu.upload_f64("y", &y);
        let wd = gpu.alloc_f64("w", n);
        fill(&gpu, &wd, 0.0);
        let plan = manual_dense_plan(&gpu, m, n, vs, tl);
        launch_dense_fused(&gpu, &plan, PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
        let expect = reference::pattern_dense(1.0, &x, None, &y, 0.0, None);
        let err = reference::rel_l2_error(&wd.to_vec_f64(), &expect);
        assert!(err < 1e-10, "TL={tl}: rel error {err}");
    }
}

#[test]
fn block_wide_vectors_across_thread_loads() {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let m = 64;
    for tl in [1usize, 2, 3, 5, 8] {
        let vs = 128; // VS == BS: the inter-warp reduction path
        let n = vs * tl - 3; // deliberately not a multiple: masked slots
        let x = dense_random(m, n, 200 + tl as u64);
        let y = random_vector(n, 300 + tl as u64);
        let xd = GpuDense::upload(&gpu, "x", &x);
        let yd = gpu.upload_f64("y", &y);
        let wd = gpu.alloc_f64("w", n);
        fill(&gpu, &wd, 0.0);
        let plan = manual_dense_plan(&gpu, m, n, vs, tl);
        launch_dense_fused(
            &gpu,
            &plan,
            PatternSpec {
                alpha: 1.5,
                with_v: false,
                beta: 0.0,
                with_z: false,
            },
            &xd,
            None,
            &yd,
            None,
            &wd,
        );
        let expect = reference::pattern_dense(1.5, &x, None, &y, 0.0, None);
        let err = reference::rel_l2_error(&wd.to_vec_f64(), &expect);
        assert!(err < 1e-10, "VS=BS TL={tl}: rel error {err}");
    }
}

#[test]
fn higher_thread_load_means_more_ilp_and_fewer_resident_warps() {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let low = manual_dense_plan(&gpu, 1000, 8, 8, 1);
    let high = manual_dense_plan(&gpu, 1000, 8 * 40, 8, 40);
    assert!(dense_kernel_regs(40) > dense_kernel_regs(1));
    assert!(high.occupancy.warps_per_sm <= low.occupancy.warps_per_sm);
}
