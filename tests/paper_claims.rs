//! The paper's headline claims, asserted at reduced scale. These are the
//! *shape* guarantees the reproduction commits to: who wins, by roughly
//! what class of factor, and where behaviour switches.

use fusedml::prelude::*;
use fusedml_matrix::gen::{powerlaw_sparse, random_vector, uniform_sparse};
use fusedml_matrix::reference;

fn gpu() -> Gpu {
    Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
}

/// Abstract: "speedups ranging from 2x to 67x for different instances of
/// the generic pattern compared to launching multiple operator-level
/// kernels".
#[test]
fn abstract_speedup_range() {
    let g = gpu();
    let (m, n) = (20_000, 512);
    let x = uniform_sparse(m, n, 0.01, 1);
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &random_vector(n, 2));
    let vd = g.upload_f64("v", &random_vector(m, 3));
    let zd = g.upload_f64("z", &random_vector(n, 4));
    let wd = g.alloc_f64("w", n);
    let pd = g.alloc_f64("p", m);

    for spec in [
        PatternSpec::xtxy(),
        PatternSpec::xtvxy(),
        PatternSpec::xtxy_plus_bz(0.5),
        PatternSpec::full(1.5, -0.5),
    ] {
        g.flush_caches();
        let mut fused = FusedExecutor::new(&g);
        fused.pattern_sparse(
            spec,
            &xd,
            spec.with_v.then_some(&vd),
            &yd,
            spec.with_z.then_some(&zd),
            &wd,
        );
        g.flush_caches();
        let mut base = BaselineEngine::new(&g, Flavor::CuLibs);
        base.pattern_sparse(
            spec.alpha,
            &xd,
            spec.with_v.then_some(&vd),
            &yd,
            spec.beta,
            spec.with_z.then_some(&zd),
            &wd,
            &pd,
        );
        let speedup = base.total_sim_ms() / fused.total_sim_ms();
        assert!(
            (2.0..=120.0).contains(&speedup),
            "{:?}: speedup {speedup} outside the paper's class",
            spec.instance()
        );
    }
}

/// §3: the fused kernel's entire point — X is loaded from DRAM once, not
/// twice, because the second scan hits cache.
#[test]
fn temporal_locality_halves_matrix_traffic() {
    let g = gpu();
    let (m, n) = (30_000, 512);
    let x = uniform_sparse(m, n, 0.01, 5);
    let one_scan = (x.nnz() * 12) as u64;
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &random_vector(n, 6));
    let wd = g.alloc_f64("w", n);
    let pd = g.alloc_f64("p", m);

    g.flush_caches();
    let mut fused = FusedExecutor::new(&g);
    fused.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
    let fused_dram: u64 = fused
        .launches
        .iter()
        .map(|l| l.counters.dram_read_bytes)
        .sum();

    g.flush_caches();
    let mut base = BaselineEngine::new(&g, Flavor::BidmatGpu);
    base.pattern_sparse(1.0, &xd, None, &yd, 0.0, None, &wd, &pd);
    let base_dram: u64 = base
        .launches
        .iter()
        .map(|l| l.counters.dram_read_bytes)
        .sum();

    assert!(
        fused_dram < one_scan + one_scan / 2,
        "fused reads {} vs one scan {}",
        fused_dram,
        one_scan
    );
    assert!(
        base_dram > fused_dram + one_scan / 3,
        "baseline {} should re-read X vs fused {}",
        base_dram,
        fused_dram
    );
}

/// §3.1: the hierarchical aggregation bound — global atomics are per
/// block-column, never per non-zero, in the shared-memory variant.
#[test]
fn hierarchical_aggregation_bounds_global_atomics() {
    let g = gpu();
    let (m, n) = (20_000, 256);
    let x = uniform_sparse(m, n, 0.05, 7); // ~256k nnz
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &random_vector(n, 8));
    let wd = g.alloc_f64("w", n);
    let mut ex = FusedExecutor::new(&g);
    ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
    let k = ex.launches.last().unwrap();
    let plan = ex.sparse_plan(&xd);
    assert!(plan.use_shared_w);
    assert_eq!(
        k.counters.global_atomics,
        (plan.grid * n) as u64,
        "global atomics must equal grid x columns"
    );
    assert!(k.counters.global_atomics < x.nnz() as u64 / 10);
}

/// §3.1 extension: very wide matrices switch to global aggregation and
/// still win because ultra-sparse columns rarely collide.
#[test]
fn wide_matrices_use_global_variant_and_win() {
    let g = gpu();
    let x = powerlaw_sparse(8_000, 50_000, 10.0, 0.8, 9);
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &random_vector(50_000, 10));
    let wd = g.alloc_f64("w", 50_000);
    let pd = g.alloc_f64("p", 8_000);

    g.flush_caches();
    let mut fused = FusedExecutor::new(&g);
    assert!(!fused.sparse_plan(&xd).use_shared_w);
    fused.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);

    g.flush_caches();
    let mut base = BaselineEngine::new(&g, Flavor::CuLibs);
    base.pattern_sparse(1.0, &xd, None, &yd, 0.0, None, &wd, &pd);
    assert!(fused.total_sim_ms() < base.total_sim_ms());

    // Contention stays negligible: the hottest w element sees well under
    // 1% of all atomics.
    let c = &fused.launches.last().unwrap().counters;
    assert!(c.hottest_atomic_address_count() < c.global_atomics / 50);
}

/// §4.2: dense gains are much smaller than sparse gains, "most of the
/// gain we achieve comes from loading X only once".
#[test]
fn dense_gains_smaller_than_sparse_gains() {
    let g = gpu();
    let (m, n) = (10_000, 512);

    let xs = uniform_sparse(m, n, 0.01, 11);
    let xsd = GpuCsr::upload(&g, "xs", &xs);
    let yd = g.upload_f64("y", &random_vector(n, 12));
    let wd = g.alloc_f64("w", n);
    let pd = g.alloc_f64("p", m);
    g.flush_caches();
    let mut f1 = FusedExecutor::new(&g);
    f1.pattern_sparse(PatternSpec::xtxy(), &xsd, None, &yd, None, &wd);
    g.flush_caches();
    let mut b1 = BaselineEngine::new(&g, Flavor::CuLibs);
    b1.pattern_sparse(1.0, &xsd, None, &yd, 0.0, None, &wd, &pd);
    let sparse_speedup = b1.total_sim_ms() / f1.total_sim_ms();

    let xdense = fusedml_matrix::gen::dense_random(m, n, 13);
    let xdd = GpuDense::upload(&g, "xd", &xdense);
    g.flush_caches();
    let mut f2 = FusedExecutor::new(&g);
    f2.pattern_dense(PatternSpec::xtxy(), &xdd, None, &yd, None, &wd);
    g.flush_caches();
    let mut b2 = BaselineEngine::new(&g, Flavor::CuLibs);
    b2.pattern_dense(1.0, &xdd, None, &yd, 0.0, None, &wd, &pd);
    let dense_speedup = b2.total_sim_ms() / f2.total_sim_ms();

    assert!(
        sparse_speedup > 2.0 * dense_speedup,
        "sparse {sparse_speedup}x should dwarf dense {dense_speedup}x"
    );
    assert!(dense_speedup > 1.3, "dense speedup {dense_speedup}");
}

/// Both fused results remain numerically equal to the baseline results —
/// speed never trades correctness.
#[test]
fn all_engines_agree_numerically_at_scale() {
    let g = gpu();
    let (m, n) = (5000, 300);
    let x = uniform_sparse(m, n, 0.02, 15);
    let y = random_vector(n, 16);
    let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
    let xd = GpuCsr::upload(&g, "x", &x);
    let yd = g.upload_f64("y", &y);
    let pd = g.alloc_f64("p", m);

    let wd = g.alloc_f64("w", n);
    let mut fused = FusedExecutor::new(&g);
    fused.pattern_sparse(PatternSpec::xtxy(), &xd, None, &yd, None, &wd);
    assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-10);

    for flavor in [Flavor::CuLibs, Flavor::BidmatGpu] {
        let wb = g.alloc_f64("wb", n);
        let mut e = BaselineEngine::new(&g, flavor);
        e.pattern_sparse(1.0, &xd, None, &yd, 0.0, None, &wb, &pd);
        assert!(reference::rel_l2_error(&wb.to_vec_f64(), &expect) < 1e-10);
    }
}
