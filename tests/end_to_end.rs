//! Cross-crate end-to-end tests: the five ML algorithms agree across all
//! three backends, and the runtime sessions preserve the paper's headline
//! relationships.

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_labels, random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_ml::{
    glm, hits, logreg, lr_cg, svm_primal, Backend, Family, GlmOptions, HitsOptions, LogRegOptions,
    LrCgOptions, SvmOptions,
};
use fusedml_runtime::session::{run_device, DataSet, EngineKind, SessionConfig};

fn gpu() -> Gpu {
    Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
}

#[test]
fn all_five_algorithms_agree_across_backends() {
    let g = gpu();
    let (m, n) = (250, 40);
    let x = uniform_sparse(m, n, 0.15, 1);
    let w_true = random_vector(n, 2);
    let regression = reference::csr_mv(&x, &w_true);
    let labels = random_labels(m, 3);
    let counts: Vec<f64> = regression
        .iter()
        .map(|e| e.clamp(-2.0, 2.0).exp())
        .collect();

    macro_rules! compare {
        ($name:literal, $run:expr) => {{
            let mut cpu = CpuBackend::new_sparse(x.clone());
            let mut fused = FusedBackend::new_sparse(&g, &x);
            let mut base = BaselineBackend::new_sparse(&g, &x);
            let wc: Vec<f64> = $run(&mut cpu);
            let wf: Vec<f64> = $run(&mut fused);
            let wb: Vec<f64> = $run(&mut base);
            assert!(
                reference::rel_l2_error(&wf, &wc) < 1e-7,
                "{}: fused vs cpu {}",
                $name,
                reference::rel_l2_error(&wf, &wc)
            );
            assert!(
                reference::rel_l2_error(&wb, &wc) < 1e-7,
                "{}: baseline vs cpu {}",
                $name,
                reference::rel_l2_error(&wb, &wc)
            );
            // And the fused run launches fewer kernels than the baseline.
            assert!(fused.stats().launches < base.stats().launches, $name);
        }};
    }

    compare!("lr_cg", |b: &mut _| lr_cg(
        b,
        &regression,
        LrCgOptions {
            max_iterations: 8,
            ..Default::default()
        }
    )
    .weights);
    compare!("logreg", |b: &mut _| logreg(
        b,
        &labels,
        LogRegOptions {
            max_outer: 3,
            ..Default::default()
        }
    )
    .weights);
    compare!("svm", |b: &mut _| svm_primal(
        b,
        &labels,
        SvmOptions {
            max_outer: 3,
            ..Default::default()
        }
    )
    .weights);
    compare!("glm", |b: &mut _| glm(
        b,
        &counts,
        GlmOptions {
            family: Family::Poisson,
            max_outer: 2,
            ..Default::default()
        }
    )
    .weights);
    compare!("hits", |b: &mut _| hits(
        b,
        HitsOptions {
            max_iterations: 5,
            ..Default::default()
        }
    )
    .authorities);
}

#[test]
fn fused_backend_is_faster_on_every_algorithm() {
    let g = gpu();
    let (m, n) = (2000, 300);
    let x = uniform_sparse(m, n, 0.03, 7);
    let labels = random_labels(m, 8);

    let mut fused = FusedBackend::new_sparse(&g, &x);
    let mut base = BaselineBackend::new_sparse(&g, &x);
    let opts = LogRegOptions {
        max_outer: 2,
        ..Default::default()
    };
    logreg(&mut fused, &labels, opts);
    logreg(&mut base, &labels, opts);
    let f = fused.stats();
    let b = base.stats();
    assert!(
        f.sim_ms < b.sim_ms,
        "fused {} ms vs baseline {} ms",
        f.sim_ms,
        b.sim_ms
    );
}

#[test]
fn runtime_session_cost_ordering() {
    let g = gpu();
    let x = uniform_sparse(3000, 400, 0.02, 11);
    let labels = random_vector(3000, 12);
    let data = DataSet::Sparse(x);

    // Native fused < native baseline.
    let nf = run_device(
        &g,
        &data,
        &labels,
        &SessionConfig::native(EngineKind::Fused, 8),
    );
    g.flush_caches();
    let nb = run_device(
        &g,
        &data,
        &labels,
        &SessionConfig::native(EngineKind::Baseline, 8),
    );
    assert!(nf.total_ms < nb.total_ms);

    // SystemML regime strictly costs more than native for the same engine.
    g.flush_caches();
    let sf = run_device(
        &g,
        &data,
        &labels,
        &SessionConfig::systemml(EngineKind::Fused, 8),
    );
    assert!(sf.total_ms > nf.total_ms);
    assert!(sf.dispatch_ms > 0.0 && sf.transfer_ms > nf.transfer_ms);
}

#[test]
fn pattern_instrumentation_is_consistent_across_backends() {
    let g = gpu();
    let x = uniform_sparse(300, 50, 0.1, 13);
    let labels = reference::csr_mv(&x, &random_vector(50, 14));
    let opts = LrCgOptions {
        max_iterations: 5,
        tolerance: 0.0,
        ..Default::default()
    };

    let mut fused = FusedBackend::new_sparse(&g, &x);
    lr_cg(&mut fused, &labels, opts);
    let mut cpu = CpuBackend::new_sparse(x);
    lr_cg(&mut cpu, &labels, opts);

    // Identical algorithm -> identical pattern invocation counts.
    assert_eq!(fused.stats().pattern_counts, cpu.stats().pattern_counts);
}
