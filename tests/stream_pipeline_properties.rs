//! Seeded property tests on the copy-engine streaming pipeline, written
//! as plain `#[test]`s over a hand-rolled SplitMix64 generator so they
//! run in offline builds where `proptest` is a compile-surface stub.
//!
//! The properties streaming must uphold:
//!
//! 1. **Bit-identity**: the streamed pattern — and every solver built on
//!    it — produces exactly the bits of the non-streamed fused path
//!    (single chunk, depth 1) for any chunk size, pipeline depth 1-4,
//!    queue count and residency budget, budget 0 included. Streaming is
//!    a cost/capacity decision, never a numerical one.
//! 2. **Schedule sanity**: the modeled pipeline wall is the serial model
//!    exactly at depth 1, never exceeds the serial model, and is
//!    non-increasing in pipeline depth.
//! 3. **Plan hoisting**: a streamed pass computes launch plans per
//!    distinct chunk *shape* (body + remainder, at most two), not per
//!    chunk, no matter how the row count decomposes.

use fusedml_core::PatternSpec;
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference::csr_mv;
use fusedml_matrix::{Coo, CsrMatrix};
use fusedml_ml::{
    try_glm, try_hits, try_logreg, try_lr_cg, try_svm, Backend, Family, GlmOptions, HitsOptions,
    LogRegOptions, LrCgOptions, SvmOptions,
};
use fusedml_runtime::{SparseStreamer, StreamConfig, StreamedBackend, TransferModel};

/// SplitMix64: tiny, seedable, and good enough to sweep configurations.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn gpu() -> Gpu {
    Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
}

fn bits(w: &[f64]) -> Vec<u64> {
    w.iter().map(|x| x.to_bits()).collect()
}

const DEPTHS: [usize; 4] = [1, 2, 3, 4];

/// Three residency regimes: re-stream everything, keep roughly half the
/// matrix resident, keep all of it resident.
fn budgets(x: &CsrMatrix) -> [u64; 3] {
    [0, x.size_bytes() / 2, u64::MAX]
}

/// Property 1 at the operator level: random matrices, random (mostly
/// non-dividing) chunk sizes, all depths, all residency regimes — the
/// streamed pattern's bits never move, warm residency passes included.
#[test]
fn streamed_pattern_bits_are_invariant_across_configs() {
    let mut rng = Rng::new(0x57_12EA);
    for seed in [11u64, 12, 13] {
        let m = 200 + rng.below(400);
        let n = 16 + rng.below(80);
        let x = uniform_sparse(m, n, 0.06, seed);
        let y = random_vector(n, seed + 1);
        let v = random_vector(m, seed + 2);
        let z = random_vector(n, seed + 3);
        let spec = PatternSpec::full(1.25, -0.5);
        let g = gpu();

        let run = |cfg: StreamConfig, passes: usize| {
            let mut s = SparseStreamer::try_new(&g, &x, TransferModel::native(), cfg)
                .unwrap_or_else(|e| panic!("{e}"));
            let mut w = vec![0.0; n];
            for _ in 0..passes {
                s.try_pattern_host(spec, Some(&v), &y, Some(&z), &mut w)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            w
        };
        // The non-streamed fused path: one chunk, no pipeline.
        let reference = run(StreamConfig::fixed(m, 1), 1);

        for depth in DEPTHS {
            for cap in budgets(&x) {
                let chunk = 1 + rng.below(m + 50); // non-dividing in general
                let queues = 1 + rng.below(3);
                let cfg = StreamConfig::fixed(chunk, depth)
                    .with_queues(queues)
                    .with_residency(cap);
                // Two passes so warm residency serves the second.
                let w = run(cfg, 2);
                assert_eq!(
                    bits(&reference),
                    bits(&w),
                    "seed={seed} chunk={chunk} depth={depth} queues={queues} cap={cap}"
                );
            }
        }
    }
}

/// Property 2: depth 1 is the serial model exactly; deeper pipelines only
/// help; nothing ever beats the serial model's own components or exceeds
/// their sum.
#[test]
fn overlap_model_is_monotone_in_depth_and_bounded_by_serial() {
    let mut rng = Rng::new(0xB0BB1E5);
    for seed in [21u64, 22, 23, 24] {
        let m = 400 + rng.below(3000);
        let n = 32 + rng.below(160);
        let x = uniform_sparse(m, n, 0.05, seed);
        let y = random_vector(n, seed + 1);
        let chunk = 1 + rng.below(m);
        let mut prev = f64::INFINITY;
        for depth in DEPTHS {
            // Fresh device per depth: the simulator keeps its L2 warm
            // across launches, so back-to-back runs on one device see
            // different kernel costs — the property under test is the
            // schedule, not cache weather.
            let g = gpu();
            let mut s = SparseStreamer::try_new(
                &g,
                &x,
                TransferModel::native(),
                StreamConfig::fixed(chunk, depth),
            )
            .unwrap_or_else(|e| panic!("{e}"));
            let mut w = vec![0.0; n];
            let r = s
                .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                r.overlapped_ms <= r.serial_ms + 1e-9,
                "seed={seed} depth={depth}: overlap {} > serial {}",
                r.overlapped_ms,
                r.serial_ms
            );
            if depth == 1 {
                assert!(
                    (r.overlapped_ms - r.serial_ms).abs() < 1e-9,
                    "seed={seed}: depth 1 must equal serial ({} vs {})",
                    r.overlapped_ms,
                    r.serial_ms
                );
            }
            assert!(
                r.overlapped_ms <= prev + 1e-9,
                "seed={seed}: wall grew from {prev} to {} at depth {depth}",
                r.overlapped_ms
            );
            prev = r.overlapped_ms;
        }
    }
}

/// Property 3: launch-plan work scales with distinct chunk shapes (one
/// when the chunking divides the rows, two otherwise), never with the
/// chunk count, and repeat passes plan nothing.
#[test]
fn chunk_plans_scale_with_shapes_not_chunks() {
    let mut rng = Rng::new(0x9_1A75);
    for seed in [31u64, 32, 33] {
        let m = 300 + rng.below(900);
        let n = 24 + rng.below(60);
        let x = uniform_sparse(m, n, 0.08, seed);
        let y = random_vector(n, seed + 1);
        let chunk = 1 + rng.below(m - 1);
        let g = gpu();
        let mut s = SparseStreamer::try_new(
            &g,
            &x,
            TransferModel::native(),
            StreamConfig::fixed(chunk, 2),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        s.set_plan_cache(true);
        let mut w = vec![0.0; n];
        for _ in 0..3 {
            s.try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap_or_else(|e| panic!("{e}"));
        }
        let distinct_shapes = if m % chunk == 0 { 1 } else { 2 };
        let stats = s.chunk_plan_stats();
        assert_eq!(
            stats.plans_computed(),
            distinct_shapes,
            "seed={seed} m={m} chunk={chunk}: {} chunks, stats {stats:?}",
            s.chunk_count()
        );
    }
}

// ---------------------------------------------------------------------
// Solver-level bit-identity: the five iterative solvers + PageRank.
// ---------------------------------------------------------------------

/// Run `solve` against a `StreamedBackend` at the given configuration.
fn with_backend<R>(
    x: &CsrMatrix,
    cfg: StreamConfig,
    solve: impl FnOnce(&mut StreamedBackend) -> R,
) -> R {
    let g = gpu();
    let mut b = StreamedBackend::new_sparse(&g, x, TransferModel::native(), cfg);
    solve(&mut b)
}

/// Sweep depths 1-4 x three residency budgets and assert the solver's
/// result bits equal the non-streamed (single-chunk, depth-1) run.
fn assert_solver_bit_identical(
    name: &str,
    x: &CsrMatrix,
    chunk: usize,
    solve: &dyn Fn(&mut StreamedBackend) -> Vec<f64>,
) {
    let reference = with_backend(x, StreamConfig::fixed(x.rows(), 1), solve);
    for depth in DEPTHS {
        for cap in budgets(x) {
            let cfg = StreamConfig::fixed(chunk, depth).with_residency(cap);
            let w = with_backend(x, cfg, solve);
            assert_eq!(
                bits(&reference),
                bits(&w),
                "{name}: chunk={chunk} depth={depth} cap={cap}"
            );
        }
    }
}

/// ±1 labels from a noiseless linear score (the solver crates' idiom).
fn sign_labels(x: &CsrMatrix, seed: u64) -> Vec<f64> {
    let w_true = random_vector(x.cols(), seed);
    csr_mv(x, &w_true)
        .iter()
        .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
        .collect()
}

#[test]
fn lr_cg_streams_bit_identically() {
    let x = uniform_sparse(240, 20, 0.15, 41);
    let labels = random_vector(240, 42);
    let opts = LrCgOptions {
        eps: 0.001,
        tolerance: 0.0,
        max_iterations: 6,
    };
    assert_solver_bit_identical("lr_cg", &x, 71, &|b| {
        try_lr_cg(b, &labels, opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .weights
    });
}

#[test]
fn logreg_streams_bit_identically() {
    let x = uniform_sparse(220, 18, 0.18, 43);
    let labels = sign_labels(&x, 44);
    let opts = LogRegOptions {
        lambda: 1e-3,
        max_outer: 3,
        max_inner_cg: 5,
        grad_tol: 0.0,
    };
    assert_solver_bit_identical("logreg", &x, 63, &|b| {
        try_logreg(b, &labels, opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .weights
    });
}

#[test]
fn svm_streams_bit_identically() {
    let x = uniform_sparse(200, 16, 0.2, 45);
    let labels = sign_labels(&x, 46);
    let opts = SvmOptions {
        lambda: 1e-2,
        max_outer: 3,
        max_inner_cg: 5,
        grad_tol: 0.0,
    };
    assert_solver_bit_identical("svm", &x, 59, &|b| {
        try_svm(b, &labels, opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .weights
    });
}

#[test]
fn glm_streams_bit_identically() {
    let x = uniform_sparse(200, 16, 0.2, 47);
    // Deterministic non-negative pseudo-counts around the linear score.
    let targets: Vec<f64> = {
        let w_true = random_vector(16, 48);
        csr_mv(&x, &w_true)
            .iter()
            .map(|&s| (2.0 * s.abs()).round())
            .collect()
    };
    let opts = GlmOptions {
        family: Family::Poisson,
        lambda: 1e-3,
        max_outer: 3,
        max_inner_cg: 5,
        grad_tol: 0.0,
    };
    assert_solver_bit_identical("glm", &x, 47, &|b| {
        try_glm(b, &targets, opts)
            .unwrap_or_else(|e| panic!("{e}"))
            .weights
    });
}

#[test]
fn hits_streams_bit_identically() {
    // Rectangular bipartite-style adjacency: hubs x authorities.
    let x = uniform_sparse(150, 90, 0.06, 49);
    let opts = HitsOptions {
        max_iterations: 8,
        tolerance: 0.0,
    };
    assert_solver_bit_identical("hits", &x, 44, &|b| {
        let r = try_hits(b, opts).unwrap_or_else(|e| panic!("{e}"));
        let mut out = r.authorities;
        out.extend_from_slice(&r.hubs);
        out
    });
}

/// PageRank's iteration through the backend surface (the DAG solver is
/// device-whole by construction): `r' = d * L^T (r (.) inv_deg) +
/// teleport * ones`, each product streamed.
fn pagerank_streamed(
    b: &mut StreamedBackend,
    inv_deg: &[f64],
    damping: f64,
    iters: usize,
) -> Vec<f64> {
    let n = b.cols();
    let teleport = (1.0 - damping) / n as f64;
    let invd = b.from_host("pr.invdeg", inv_deg);
    let ones = b.from_host("pr.ones", &vec![1.0; n]);
    let r = b.from_host("pr.r", &vec![1.0 / n as f64; n]);
    let mut scaled = b.zeros("pr.scaled", n);
    let mut next = b.zeros("pr.next", n);
    let mut cur = r;
    for _ in 0..iters {
        b.ewmul(&cur, &invd, &mut scaled);
        b.tmv(damping, &scaled, &mut next);
        b.axpy(teleport, &ones, &mut next);
        b.copy(&next, &mut cur);
    }
    b.to_host(&cur)
}

#[test]
fn pagerank_streams_bit_identically() {
    // i -> i+1 ring plus every page linking page 0.
    let n = 96;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, (i + 1) % n, 1.0);
        if i != 0 {
            coo.push(i, 0, 1.0);
        }
    }
    let links = CsrMatrix::from_coo(&coo);
    let inv_deg: Vec<f64> = (0..n)
        .map(|r| {
            let deg: f64 = links.row_entries(r).map(|(_, v)| v).sum();
            if deg > 0.0 {
                1.0 / deg
            } else {
                0.0
            }
        })
        .collect();
    assert_solver_bit_identical("pagerank", &links, 29, &|b| {
        pagerank_streamed(b, &inv_deg, 0.85, 10)
    });
}
