//! Seeded property tests on the DAG fusion compiler, written as plain
//! `#[test]`s over a hand-rolled SplitMix64 generator so they run in
//! offline builds where `proptest` is a compile-surface stub.
//!
//! The two properties the compiler must uphold:
//!
//! 1. **Bit-identity**: for random small operator DAGs, the cost-selected
//!    fused plan computes exactly the same output vector and dot scalars
//!    as the unfused one-kernel-per-operator reference plan — fusion only
//!    changes *where* intermediates live, never the arithmetic order.
//! 2. **Determinism**: plan selection for a fixed [`DeviceSpec`] and
//!    matrix shape is a pure function — repeated compilations agree on
//!    the winner, every group's modeled cost to the bit, and the full
//!    rejected-candidate ledger. This is what lets the CI plan-regression
//!    gate diff dumps byte-for-byte.

use fusedml_blas::{GpuCsr, GpuDense};
use fusedml_core::{
    select_plan, unfused_plan, Dag, DagBuilder, DagExecutor, DagInputs, DagMatrix, Dim,
    MatrixShape, ScalarRef,
};
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};

/// SplitMix64: tiny, seedable, and good enough to sweep DAG space.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Build a random well-formed DAG: two external inputs, one matrix
/// product as the anchor (so a computed vector output always exists),
/// then a handful of dimension-respecting random operators. Scalars are
/// literals most of the time and named parameters occasionally, so both
/// resolution paths get exercised.
fn random_dag(rng: &mut Rng) -> Dag {
    let mut b = DagBuilder::new();
    let y0 = b.input("y0", Dim::Cols);
    let u0 = b.input("u0", Dim::Rows);
    let mut vectors: Vec<(usize, Dim)> = vec![(y0, Dim::Cols), (u0, Dim::Rows)];
    let mut computed: Vec<(usize, Dim)> = Vec::new();

    let push =
        |vectors: &mut Vec<(usize, Dim)>, computed: &mut Vec<(usize, Dim)>, n: usize, d: Dim| {
            vectors.push((n, d));
            computed.push((n, d));
        };

    let anchor = if rng.below(2) == 0 {
        (b.mv(y0), Dim::Rows)
    } else {
        (b.tmv(u0), Dim::Cols)
    };
    push(&mut vectors, &mut computed, anchor.0, anchor.1);

    let extra_ops = 2 + rng.below(5);
    for _ in 0..extra_ops {
        let same_dim = |vectors: &[(usize, Dim)], d: Dim| -> Vec<usize> {
            vectors
                .iter()
                .filter(|&&(_, dd)| dd == d)
                .map(|&(n, _)| n)
                .collect()
        };
        match rng.below(6) {
            0 => {
                let cols = same_dim(&vectors, Dim::Cols);
                let a = cols[rng.below(cols.len())];
                let n = b.mv(a);
                push(&mut vectors, &mut computed, n, Dim::Rows);
            }
            1 => {
                let rows = same_dim(&vectors, Dim::Rows);
                let a = rows[rng.below(rows.len())];
                let n = b.tmv(a);
                push(&mut vectors, &mut computed, n, Dim::Cols);
            }
            2 => {
                let (a, d) = vectors[rng.below(vectors.len())];
                let peers = same_dim(&vectors, d);
                let c = peers[rng.below(peers.len())];
                let n = b.ewmul(a, c);
                push(&mut vectors, &mut computed, n, d);
            }
            3 => {
                let (a, d) = vectors[rng.below(vectors.len())];
                let alpha = if rng.below(4) == 0 {
                    ScalarRef::Param("alpha")
                } else {
                    ScalarRef::Lit(rng.f64() * 3.0 - 1.5)
                };
                let n = b.scale(a, alpha);
                push(&mut vectors, &mut computed, n, d);
            }
            4 => {
                let (a, d) = vectors[rng.below(vectors.len())];
                let peers = same_dim(&vectors, d);
                let c = peers[rng.below(peers.len())];
                let beta = if rng.below(4) == 0 {
                    ScalarRef::Param("beta")
                } else {
                    ScalarRef::Lit(rng.f64() * 2.0 - 1.0)
                };
                let n = b.axpy(a, beta, c);
                push(&mut vectors, &mut computed, n, d);
            }
            _ => {
                let (a, d) = vectors[rng.below(vectors.len())];
                let peers = same_dim(&vectors, d);
                let c = peers[rng.below(peers.len())];
                b.dot(a, c);
            }
        }
    }

    let out = computed[rng.below(computed.len())].0;
    b.finish(out)
}

/// Run one DAG under the cost-selected plan and under the unfused
/// reference plan on the same device, and demand bit-identical results.
fn assert_fused_matches_unfused(gpu: &Gpu, dag: &Dag, x: &DagMatrix<'_>, seed: u64) {
    let shape = x.shape();
    let (m, n) = (shape.rows, shape.cols);
    let y0 = gpu.upload_f64("y0", &random_vector(n, seed + 10));
    let u0 = gpu.upload_f64("u0", &random_vector(m, seed + 11));
    let inputs = DagInputs::new()
        .vector("y0", &y0)
        .vector("u0", &u0)
        .scalar("alpha", 0.75)
        .scalar("beta", -1.25);
    let out_dim = dag.dim(dag.output()).expect("output is a vector");
    let out_len = shape.dim_len(out_dim);

    let mut dexec = DagExecutor::new(gpu);
    let fused_out = gpu.alloc_f64("out.fused", out_len);
    let run = dexec
        .try_run(dag, x, &inputs, &fused_out)
        .expect("selected plan must execute");

    let reference = unfused_plan(gpu.spec(), dag, shape).expect("unfused plan must build");
    let unfused_out = gpu.alloc_f64("out.unfused", out_len);
    let ref_scalars = dexec
        .try_run_with_plan(&reference, dag, x, &inputs, &unfused_out)
        .expect("unfused plan must execute");

    // The unfused grouping is always in the candidate set, so the
    // cost-based winner can never model slower than it.
    assert!(
        run.plan.modeled_ms <= reference.modeled_ms,
        "seed {seed}: selected '{}' ({} ms) models slower than unfused ({} ms)",
        run.plan.desc,
        run.plan.modeled_ms,
        reference.modeled_ms
    );

    for i in 0..out_len {
        assert_eq!(
            fused_out.host_read_f64(i).to_bits(),
            unfused_out.host_read_f64(i).to_bits(),
            "seed {seed}: plan '{}' diverges from unfused at out[{i}] ({} vs {})",
            run.plan.desc,
            fused_out.host_read_f64(i),
            unfused_out.host_read_f64(i)
        );
    }
    assert_eq!(
        run.scalars.keys().collect::<Vec<_>>(),
        ref_scalars.keys().collect::<Vec<_>>(),
        "seed {seed}: the two plans computed different dot nodes"
    );
    for (node, v) in &run.scalars {
        assert_eq!(
            v.to_bits(),
            ref_scalars[node].to_bits(),
            "seed {seed}: dot node {node} diverges ({v} vs {})",
            ref_scalars[node]
        );
    }
}

#[test]
fn random_sparse_dags_match_the_unfused_reference_bit_for_bit() {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    for seed in 0..24u64 {
        let mut rng = Rng::new(0xda6f051 ^ seed.wrapping_mul(0x9e37));
        let m = 24 + rng.below(80);
        let n = 16 + rng.below(64);
        let dag = random_dag(&mut rng);
        let x = uniform_sparse(m, n, 0.05 + rng.f64() * 0.15, seed);
        let xd = GpuCsr::upload(&gpu, "x", &x);
        assert_fused_matches_unfused(&gpu, &dag, &DagMatrix::Sparse(&xd), seed);
    }
}

#[test]
fn random_dense_dags_match_the_unfused_reference_bit_for_bit() {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    for seed in 0..8u64 {
        let mut rng = Rng::new(0xde_57ed ^ seed.wrapping_mul(0x51f7));
        let m = 24 + rng.below(48);
        let n = 16 + rng.below(40);
        let dag = random_dag(&mut rng);
        let x = dense_random(m, n, seed);
        let xd = GpuDense::upload(&gpu, "X", &x);
        assert_fused_matches_unfused(&gpu, &dag, &DagMatrix::Dense(&xd), seed);
    }
}

#[test]
fn plan_selection_is_deterministic_for_a_fixed_device() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0x5e1ec7 ^ seed.wrapping_mul(0xabcd));
        let dag = random_dag(&mut rng);
        let shape = MatrixShape {
            rows: 500 + rng.below(4000),
            cols: 300 + rng.below(2000),
            nnz: 10_000 + rng.next() % 100_000,
            dense: false,
        };
        // Two independently constructed specs: determinism must come from
        // the spec's *values*, not from shared state.
        let a = select_plan(&DeviceSpec::gtx_titan(), &dag, shape).expect("plan");
        let b = select_plan(&DeviceSpec::gtx_titan(), &dag, shape).expect("plan");
        assert_eq!(a.dag_fingerprint, b.dag_fingerprint);
        assert_eq!(a.desc, b.desc, "seed {seed}: different winner");
        assert_eq!(
            a.modeled_ms.to_bits(),
            b.modeled_ms.to_bits(),
            "seed {seed}: modeled cost drifted between compilations"
        );
        assert_eq!(a.groups.len(), b.groups.len());
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.desc, gb.desc, "seed {seed}");
            assert_eq!(
                ga.modeled_ms.to_bits(),
                gb.modeled_ms.to_bits(),
                "seed {seed}"
            );
            assert_eq!(ga.dram_bytes, gb.dram_bytes, "seed {seed}");
            assert_eq!(ga.launches, gb.launches, "seed {seed}");
        }
        assert_eq!(a.materialized, b.materialized, "seed {seed}");
        assert_eq!(a.in_registers, b.in_registers, "seed {seed}");
        assert_eq!(a.rejected.len(), b.rejected.len(), "seed {seed}");
        for (ra, rb) in a.rejected.iter().zip(&b.rejected) {
            assert_eq!(ra.desc, rb.desc, "seed {seed}");
            assert_eq!(
                ra.modeled_ms.to_bits(),
                rb.modeled_ms.to_bits(),
                "seed {seed}"
            );
        }
        // The fingerprint is structural: rebuilding the same random DAG
        // from the same seed must reproduce it.
        let again = random_dag(&mut Rng::new(0x5e1ec7 ^ seed.wrapping_mul(0xabcd)));
        assert_eq!(dag.fingerprint(), again.fingerprint(), "seed {seed}");
    }
}
