//! Property tests on the §3.3 analytical launch-parameter model: every
//! plan it emits must be launchable on the device and must cover the
//! matrix, across the whole space of shapes and row statistics.

// Needs the real `proptest` crate: gated off in offline builds, where
// `proptest` resolves to a macro-less stub (see the workspace Cargo.toml).
#![cfg(feature = "proptest-tests")]

use fusedml_core::tuner::{
    dense_kernel_regs, fits_in_shared, manual_sparse_plan, plan_dense, plan_sparse, MAX_TL,
    SPARSE_KERNEL_REGS,
};
use fusedml_gpu_sim::{occupancy, DeviceSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn sparse_plans_are_launchable_and_cover(
        m in 1usize..2_000_000,
        n in 1usize..100_000,
        mu in 0.1f64..500.0,
    ) {
        let spec = DeviceSpec::gtx_titan();
        let p = plan_sparse(&spec, m, n, mu);

        // Geometry invariants.
        prop_assert!(p.vs.is_power_of_two() && p.vs <= 32);
        prop_assert!(p.bs % p.vs == 0);
        prop_assert!(p.bs <= spec.max_threads_per_block);
        prop_assert!(p.grid >= 1);
        // Coverage: one pass of C rows per vector spans the matrix.
        prop_assert!(p.total_vectors() * p.c >= m);
        // Launchable: the occupancy calculator accepts the footprint.
        let occ = occupancy(&spec, p.bs, p.regs, p.shared_bytes);
        prop_assert!(occ.is_some());
        prop_assert_eq!(occ.unwrap().blocks_per_sm, p.occupancy.blocks_per_sm);
        // Aggregation strategy consistent with the shared-memory limit.
        if p.use_shared_w {
            prop_assert!(fits_in_shared(&spec, n, p.bs, p.vs));
        }
        prop_assert_eq!(p.regs, SPARSE_KERNEL_REGS);
    }

    #[test]
    fn dense_plans_are_launchable_and_cover(
        m in 1usize..2_000_000,
        n in 1usize..5_120,
    ) {
        let spec = DeviceSpec::gtx_titan();
        let p = plan_dense(&spec, m, n);
        prop_assert!(p.tl >= 1 && p.tl <= MAX_TL);
        // The vector covers a full row.
        prop_assert!(p.vs * p.tl >= n, "vs={} tl={} n={}", p.vs, p.tl, n);
        // Register budget honoured (no spilling).
        prop_assert!(p.regs <= spec.max_regs_per_thread);
        prop_assert_eq!(p.regs, dense_kernel_regs(p.tl));
        // Coverage.
        prop_assert!(p.total_vectors() * p.c >= m);
        // Launchable.
        prop_assert!(occupancy(&spec, p.bs, p.regs, 0).is_some());
        // The n <= 32 special case (§3.3).
        if n <= 32 {
            prop_assert_eq!(p.bs, 1024);
            prop_assert_eq!(p.tl, 1);
        }
    }

    #[test]
    fn manual_plans_validated(
        m in 1usize..100_000,
        n in 1usize..4_000,
        vs_pow in 0u32..6,
        bs_mult in 1usize..33,
        c in 1usize..1_000,
    ) {
        let spec = DeviceSpec::gtx_titan();
        let vs = 1usize << vs_pow;
        let bs = 32 * bs_mult;
        if let Some(p) = manual_sparse_plan(&spec, m, n, vs, bs, c) {
            prop_assert!(p.total_vectors() * p.c >= m);
            prop_assert!(occupancy(&spec, p.bs, p.regs, p.shared_bytes).is_some());
            prop_assert!(fits_in_shared(&spec, n, bs, vs));
        } else {
            // Rejection must have a reason.
            let misaligned = bs % vs != 0 || bs > spec.max_threads_per_block;
            let no_shared = !fits_in_shared(&spec, n, bs, vs);
            let no_occ = occupancy(
                &spec,
                bs,
                SPARSE_KERNEL_REGS,
                (bs / vs.max(1) + n) * 8,
            )
            .is_none();
            prop_assert!(misaligned || no_shared || no_occ);
        }
    }

    #[test]
    fn dense_regs_monotone(tl in 1usize..=40) {
        prop_assert!(dense_kernel_regs(tl) >= dense_kernel_regs(1));
        if tl > 1 {
            prop_assert!(dense_kernel_regs(tl) >= dense_kernel_regs(tl - 1));
        }
        prop_assert!(dense_kernel_regs(tl) <= 255);
    }
}

#[test]
fn plans_scale_with_rows_not_columns() {
    // C grows linearly with m; the grid stays one resident wave.
    let spec = DeviceSpec::gtx_titan();
    let small = plan_sparse(&spec, 10_000, 1000, 10.0);
    let large = plan_sparse(&spec, 1_000_000, 1000, 10.0);
    assert_eq!(small.grid, large.grid);
    assert!(large.c > 50 * small.c.max(1) / 2);
}
